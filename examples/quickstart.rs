//! Quickstart: map a StreamIt benchmark onto a simulated 2-GPU platform.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sgmap::{compile, execute, FlowConfig};
use sgmap_apps::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain a stream graph. The `sgmap-apps` crate ships the eight
    //    benchmarks of the paper; `App::FmRadio` is the FM radio receiver
    //    with an 8-band equaliser.
    let graph = App::FmRadio.build(8)?;
    println!(
        "application: {} ({} filters, {} channels)",
        graph.name(),
        graph.filter_count(),
        graph.channel_count()
    );

    // 2. Configure the flow: the defaults are the paper's stack (proposed
    //    partitioner, communication-aware ILP mapping, peer-to-peer
    //    transfers on Tesla M2090 GPUs); we only pick the GPU count.
    let config = FlowConfig::default().with_gpu_count(2);

    // 3. Compile: profile, partition, map, generate kernels and the
    //    pipelined execution plan.
    let compiled = compile(&graph, &config)?;
    println!("partitions: {}", compiled.partition_count());
    println!("assignment: {:?}", compiled.mapping.assignment);
    println!(
        "predicted bottleneck: {:.3} us/iteration",
        compiled.mapping.predicted_tmax_us
    );

    // 4. Execute on the platform simulator and report the throughput.
    let report = execute(&compiled, &config);
    println!(
        "measured: {:.3} us/iteration over {} pipelined fragments",
        report.time_per_iteration_us, report.stats.n_fragments
    );
    Ok(())
}
