//! Multi-GPU scaling of a compute-bound application (the Figure 4.2
//! experiment for a single application, as a library-usage example).
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use sgmap::{compile_and_run, FlowConfig};
use sgmap_apps::App;
use sgmap_partition::PartitionerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = App::Des;
    let n = 20;
    let graph = app.build(n)?;
    println!("{} N={n}: {} filters", app.name(), graph.filter_count());
    println!(
        "{:<28} {:>10} {:>12} {:>9}",
        "configuration", "partitions", "us/iter", "speedup"
    );

    let mut baseline_time = None;
    for gpus in 1..=4 {
        let config = FlowConfig::default().with_gpu_count(gpus);
        let report = compile_and_run(&graph, &config)?;
        let time = report.time_per_iteration_us;
        let base = *baseline_time.get_or_insert(time);
        println!(
            "{:<28} {:>10} {:>12.3} {:>8.2}x",
            format!("proposed, {gpus} GPU(s)"),
            report.partition_count,
            time,
            base / time
        );
    }

    // Contrast with the single-partition mapping, the SOSP reference.
    let spsg = compile_and_run(
        &graph,
        &FlowConfig::default()
            .with_gpu_count(1)
            .with_partitioner(PartitionerKind::Single),
    )?;
    let base = baseline_time.unwrap_or(spsg.time_per_iteration_us);
    println!(
        "{:<28} {:>10} {:>12.3} {:>8.2}x",
        "single partition, 1 GPU",
        spsg.partition_count,
        spsg.time_per_iteration_us,
        base / spsg.time_per_iteration_us
    );
    Ok(())
}
