//! The Chapter V optimisation: eliminating splitters and joiners from the
//! generated kernels (the Table 5.1 experiment as a usage example).
//!
//! ```text
//! cargo run --release --example splitter_elimination
//! ```

use sgmap::{compile_and_run, FlowConfig};
use sgmap_apps::App;
use sgmap_graph::FilterKind;
use sgmap_partition::PartitionerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>9}",
        "app", "reorder", "original", "enhanced", "speedup"
    );
    for (app, n) in [(App::Bitonic, 32), (App::Fft, 256)] {
        let graph = app.build(n)?;
        let reorder_filters = graph
            .filters()
            .filter(|(_, f)| matches!(f.kind, FilterKind::Splitter(_) | FilterKind::Joiner(_)))
            .count();

        let mut times = Vec::new();
        for enhanced in [false, true] {
            let config = FlowConfig::default()
                .with_gpu_count(1)
                .with_partitioner(PartitionerKind::Single)
                .with_enhancement(enhanced);
            let report = compile_and_run(&graph, &config)?;
            times.push(report.time_per_iteration_us);
        }
        println!(
            "{:<14} {:>10} {:>12.3}us {:>12.3}us {:>8.2}x",
            format!("{} N={}", app.name(), n),
            reorder_filters,
            times[0],
            times[1],
            times[0] / times[1]
        );
    }
    println!();
    println!("Bitonic, with a splitter/joiner pair per comparator stage, gains far more");
    println!("than FFT, which contains a single splitter and joiner (cf. Table 5.1).");
    Ok(())
}
