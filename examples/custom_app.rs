//! Building and mapping your own stream graph.
//!
//! The StreamIt-style builder composes filters with pipelines and
//! split-joins; the flow then treats the custom application exactly like the
//! shipped benchmarks. The example also dumps the pseudo-CUDA of the first
//! generated kernel so the result of code generation can be inspected.
//!
//! ```text
//! cargo run --example custom_app
//! ```

use sgmap::{compile, execute, FlowConfig};
use sgmap_codegen::emit_pseudo_cuda;
use sgmap_graph::{Filter, GraphBuilder, JoinKind, SplitKind, StreamSpec};
use sgmap_pee::Estimator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An edge-detection-style pipeline: capture -> duplicate into a blur
    // branch and a sharpen branch -> combine -> threshold -> sink.
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter("capture", 0, 16, 8.0),
        StreamSpec::split_join(
            SplitKind::Duplicate,
            vec![
                StreamSpec::pipeline(vec![
                    StreamSpec::from_filter(Filter::new("blur_h", 16, 16, 96.0).with_peek(18)),
                    StreamSpec::from_filter(Filter::new("blur_v", 16, 16, 96.0).with_peek(18)),
                ]),
                StreamSpec::filter("sharpen", 16, 16, 64.0),
            ],
            JoinKind::RoundRobin(vec![16, 16]),
        ),
        StreamSpec::filter("combine", 32, 16, 48.0),
        StreamSpec::filter("threshold", 16, 16, 16.0),
        StreamSpec::filter("display", 16, 0, 4.0),
    ]);
    let graph = GraphBuilder::new("edge_detect").build(spec)?;
    println!(
        "built {} with {} filters",
        graph.name(),
        graph.filter_count()
    );

    let config = FlowConfig::default().with_gpu_count(2);
    let compiled = compile(&graph, &config)?;
    let report = execute(&compiled, &config);
    println!(
        "{} partitions on {} GPUs, {:.3} us/iteration",
        compiled.partition_count(),
        compiled.mapping.gpus_used(),
        report.time_per_iteration_us
    );

    // Show the generated pseudo-CUDA for the first partition.
    let estimator = Estimator::new(&graph, config.estimation_gpu().clone())?;
    let first = &compiled.partitioning.partitions()[0];
    println!("\n--- generated kernel for partition 0 ---");
    println!(
        "{}",
        emit_pseudo_cuda(&estimator, &graph, first, "edge_detect_p0")
    );
    Ok(())
}
