//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds offline, so this proc-macro crate stands in for the
//! real `serde_derive`. The derives accept the usual `#[serde(...)]` helper
//! attributes and expand to nothing: the workspace only uses the derives as
//! markers and never serializes through them.

use proc_macro::TokenStream;

/// Derives a (no-op) `Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives a (no-op) `Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
