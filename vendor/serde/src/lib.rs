//! Local stand-in for the `serde` facade.
//!
//! The container builds with no network access, so the workspace vendors the
//! tiny serde surface it actually uses: the `Serialize` / `Deserialize`
//! marker traits and their no-op derive macros. The real serde can be swapped
//! back in by repointing `[workspace.dependencies]` at crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
