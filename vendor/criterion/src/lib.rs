//! Local stand-in for the Criterion benchmarking harness.
//!
//! The container builds offline, so this crate implements the small part of
//! the Criterion API the workspace benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock measurement loop.
//! It reports the mean and best time per iteration for each benchmark.
//!
//! Like the real Criterion, when invoked by `cargo test` (which passes
//! `--test` to `harness = false` bench targets) each benchmark body runs only
//! once, as a smoke test.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
    test_mode: bool,
}

impl Criterion {
    /// Reads the command line to decide between measurement and smoke-test
    /// mode. Called by `criterion_main!`.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.settings, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of benchmarks with its own settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the total measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.settings, self.test_mode, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` times the supplied closure.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples for the final report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm up and size the inner batch so one sample is >= ~1% of the
        // measurement budget without being a single huge run.
        let warm_deadline = Instant::now() + self.settings.warm_up_time.min(Duration::from_secs(1));
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline || warm_iters == 0 {
            let t0 = Instant::now();
            black_box(f());
            one += t0.elapsed();
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = one.as_secs_f64() / warm_iters as f64;
        let budget = self.settings.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)) as u64;
        let samples = self.settings.sample_size.max(2) as u64;
        let batch = (total_iters / samples).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        settings,
        test_mode,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("{name}: ok (smoke)");
        return;
    }
    if b.samples_ns.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let n = b.samples_ns.len() as f64;
    let mean = b.samples_ns.iter().sum::<f64>() / n;
    let best = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name}: mean {} / best {}", fmt_ns(mean), fmt_ns(best));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
