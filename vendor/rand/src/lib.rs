//! Local stand-in for the `rand` 0.8 API surface the workspace uses.
//!
//! The container builds offline, so this crate provides `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range` backed
//! by the xoshiro256++ generator. The generator is deterministic for a given
//! seed, which is exactly what the kernel simulator needs for reproducible
//! contention modelling.

use std::ops::Range;

/// Types that can be seeded from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` used by the workspace.
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.4..0.9);
            assert!((0.4..0.9).contains(&x));
            let n: u32 = rng.gen_range(3u32..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
