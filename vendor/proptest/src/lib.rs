//! Local stand-in for `proptest`.
//!
//! The container builds offline, so this crate implements the slice of the
//! proptest API the workspace's property tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`boxed`, range / tuple / collection / weighted
//! union strategies, `any::<bool>()`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG; there is no
//! shrinking — a failing case reports the case number and message instead.

use std::fmt;
use std::ops::Range;

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so every test gets a distinct
    /// but reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }

    /// True for `Reject`.
    #[must_use]
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.next_u64() % total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize);

/// The canonical strategy for `T` (`any::<T>()`).
#[derive(Debug, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Namespace mirroring the `prop` module of the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with lengths drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Generates `Vec`s of values from `elem` with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.start + rng.below(self.len.end - self.len.start);
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted choice between strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discards the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            // Strategies are built once per test, as in real proptest; inside
            // the loop each argument name is shadowed by a generated value
            // (the initialiser still sees the outer strategy binding).
            $(let $arg = $strategy;)+
            while passed < config.cases {
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "too many rejected cases ({rejected}) in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::new_value(&$arg, &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => rejected += 1,
                    ::core::result::Result::Err(e) => panic!(
                        "property {} falsified at case {}: {}",
                        stringify!($name),
                        passed + 1,
                        e
                    ),
                }
            }
        }
    )*};
}
