//! Property-based tests of the core data structures and invariants, using
//! randomly generated stream programs and optimisation models.

use proptest::prelude::*;

use sgmap_gpusim::profile::profile_graph;
use sgmap_gpusim::{sm_layout, GpuSpec, Platform};
use sgmap_graph::{FilterId, GraphBuilder, JoinKind, NodeSet, SplitKind, StreamGraph, StreamSpec};
use sgmap_ilp::{Model, ObjectiveSense, Solver};
use sgmap_mapping::evaluate_assignment;
use sgmap_partition::{
    build_pdg, partition_stream_graph, partition_stream_graph_with, AdjacencyIndex,
    PartitionSearchOptions,
};
use sgmap_pee::{merge_characteristics, CharsIndex, Estimator, PartitionCharacteristics};

/// Asserts two characteristics are equal down to the bit patterns of their
/// `f64` components (the contract the incremental path must honour, since
/// cache keys are built from these bits).
fn assert_chars_bit_identical(
    a: &PartitionCharacteristics,
    b: &PartitionCharacteristics,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.filters.len(), b.filters.len());
    for ((ta, fa), (tb, fb)) in a.filters.iter().zip(&b.filters) {
        prop_assert_eq!(ta.to_bits(), tb.to_bits());
        prop_assert_eq!(fa, fb);
    }
    prop_assert_eq!(a.io_bytes_per_exec, b.io_bytes_per_exec);
    prop_assert_eq!(a.sm_bytes_per_exec, b.sm_bytes_per_exec);
    prop_assert_eq!(a.max_firing_rate, b.max_firing_rate);
    Ok(())
}

/// Scan-based adjacency reference for [`AdjacencyIndex`] comparisons.
fn channels_cross(graph: &StreamGraph, a: &NodeSet, b: &NodeSet) -> bool {
    graph.channels().any(|(_, ch)| {
        (a.contains(ch.src) && b.contains(ch.dst)) || (b.contains(ch.src) && a.contains(ch.dst))
    })
}

fn assert_index_matches_scan(
    graph: &StreamGraph,
    parts: &[NodeSet],
    index: &AdjacencyIndex,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(index.len(), parts.len());
    for i in 0..parts.len() {
        for j in 0..parts.len() {
            if i != j {
                prop_assert_eq!(
                    index.adjacent(i, j),
                    channels_cross(graph, &parts[i], &parts[j]),
                    "pair ({}, {})",
                    i,
                    j
                );
            }
        }
        let from_index: Vec<usize> = index.neighbors(i).collect();
        let from_scan: Vec<usize> = (0..parts.len())
            .filter(|&q| q != i && channels_cross(graph, &parts[i], &parts[q]))
            .collect();
        prop_assert_eq!(from_index, from_scan, "neighbour order of part {}", i);
    }
    Ok(())
}

/// Strategy producing random but well-formed StreamIt-style specifications.
///
/// Split-join branches must all have the same aggregate rate ratio for the
/// program's balance equations to be solvable (the same restriction StreamIt
/// imposes), so branches are drawn from the `balanced` sub-strategy whose
/// filters produce exactly as many tokens as they consume; rate-changing
/// filters appear freely outside split-joins.
fn spec_strategy(depth: u32, balanced: bool) -> BoxedStrategy<StreamSpec> {
    let filter = (1u32..4, 1u32..4, 1.0f64..200.0).prop_map(move |(pop, push, work)| {
        let push = if balanced { pop } else { push };
        StreamSpec::filter(format!("f_{pop}_{push}_{}", work as u64), pop, push, work)
    });
    if depth == 0 {
        return filter.boxed();
    }
    let pipeline = prop::collection::vec(spec_strategy(depth - 1, balanced), 1..4)
        .prop_map(StreamSpec::pipeline);
    let split_join = (
        prop::collection::vec(spec_strategy(depth - 1, true), 1..4),
        any::<bool>(),
    )
        .prop_map(move |(branches, duplicate)| {
            let n = branches.len();
            // A duplicate split multiplies the stream by the branch count, so
            // it may only appear where no sibling branch has to match its
            // rate (i.e. not inside an already-balanced sub-program).
            let split = if duplicate && !balanced {
                SplitKind::Duplicate
            } else {
                SplitKind::round_robin_uniform(n)
            };
            StreamSpec::split_join(split, branches, JoinKind::round_robin_uniform(n))
        });
    prop_oneof![3 => filter, 2 => pipeline, 1 => split_join].boxed()
}

/// Wraps a random spec into a closed program (source ... sink) and flattens
/// it.
fn random_graph(spec: StreamSpec) -> StreamGraph {
    // Determine the interface rates of the inner spec by flattening it alone
    // first; rather than doing that, simply wrap with rate-1 source/sink and
    // let the repetition vector absorb the difference: the source pushes one
    // token per firing into whatever the entry filter pops.
    let program = StreamSpec::pipeline(vec![
        StreamSpec::filter("source", 0, 1, 1.0),
        spec,
        StreamSpec::filter("sink", 1, 0, 1.0),
    ]);
    GraphBuilder::new("random")
        .build(program)
        .expect("builder accepts well-formed specs")
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Adds balance-consistent feedback channels to `graph` from the given seed
/// pairs (rates derived from the repetition vector, so the balance equations
/// stay solvable). Feedback channels are exactly where the hot-path caches
/// must be careful: partition adjacency counts them, while connectivity and
/// the internal-buffer firing scan deliberately ignore them.
fn add_random_feedback(mut graph: StreamGraph, seeds: &[(u8, u8)]) -> StreamGraph {
    let n = graph.filter_count();
    let reps = graph.repetition_vector().unwrap();
    for &(a, b) in seeds {
        let src = FilterId::from_index(usize::from(a) % n);
        let dst = FilterId::from_index(usize::from(b) % n);
        if src == dst {
            continue;
        }
        let (rs, rd) = (reps[src.index()], reps[dst.index()]);
        let g = gcd(rs, rd);
        if rs / g > 1_000 || rd / g > 1_000 {
            continue; // keep token volumes sane
        }
        let (push, pop) = ((rd / g) as u32, (rs / g) as u32);
        graph
            .add_feedback_channel(src, dst, push, pop, push.max(pop))
            .unwrap();
    }
    // The feedback rates were chosen to keep the balance equations solvable.
    graph.repetition_vector().unwrap();
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The repetition vector satisfies every balance equation of the graph.
    #[test]
    fn repetition_vector_balances_every_channel(spec in spec_strategy(2, false)) {
        let graph = random_graph(spec);
        let reps = graph.repetition_vector().unwrap();
        for (_, ch) in graph.channels() {
            prop_assert_eq!(
                reps[ch.src.index()] * u64::from(ch.push),
                reps[ch.dst.index()] * u64::from(ch.pop),
                "unbalanced channel {} -> {}", ch.src, ch.dst
            );
        }
        prop_assert!(reps.iter().all(|&r| r >= 1));
    }

    /// The proposed partitioner always produces a disjoint, complete cover of
    /// connected, convex partitions, and never predicts a total time worse
    /// than leaving every filter alone.
    #[test]
    fn partitioning_is_a_valid_cover(
        spec in spec_strategy(2, false),
        feedback in prop::collection::vec((any::<u8>(), any::<u8>()), 0..3),
    ) {
        let graph = add_random_feedback(random_graph(spec), &feedback);
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        // Skip the rare graphs whose single filters overflow shared memory.
        let singleton_total: Option<f64> = graph
            .filter_ids()
            .map(|id| est.estimate(&NodeSet::singleton(id)).map(|e| e.normalized_us))
            .sum();
        prop_assume!(singleton_total.is_some());
        let partitioning = partition_stream_graph(&est).unwrap();
        partitioning.validate_cover(&graph).unwrap();
        for p in partitioning.iter() {
            prop_assert!(p.nodes.is_connected(&graph));
            prop_assert!(p.nodes.is_convex(&graph));
            prop_assert!(p.estimate.sm_bytes <= u64::from(est.gpu().shared_mem_bytes));
        }
        prop_assert!(
            partitioning.total_estimated_time_us() <= singleton_total.unwrap() + 1e-6
        );
    }

    /// The batched parallel partition search is indistinguishable from the
    /// serial search on random graphs: same partitions in the same order
    /// with bit-equal estimates, a valid cover included — for any thread
    /// count and any speculative batch size.
    #[test]
    fn parallel_partition_search_matches_serial(
        spec in spec_strategy(2, false),
        threads in 1usize..5,
        batch in 1usize..48,
        feedback in prop::collection::vec((any::<u8>(), any::<u8>()), 0..3),
    ) {
        let graph = add_random_feedback(random_graph(spec), &feedback);
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        prop_assume!(graph
            .filter_ids()
            .all(|id| est.estimate(&NodeSet::singleton(id)).is_some()));
        let serial = partition_stream_graph(&est).unwrap();
        let options = PartitionSearchOptions::new()
            .with_threads(threads)
            .with_batch(batch);
        let parallel = partition_stream_graph_with(&est, &options).unwrap();
        parallel.validate_cover(&graph).unwrap();
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            prop_assert_eq!(&a.nodes, &b.nodes);
            prop_assert_eq!(a.estimate.params, b.estimate.params);
            prop_assert_eq!(
                a.estimate.normalized_us.to_bits(),
                b.estimate.normalized_us.to_bits()
            );
            prop_assert_eq!(
                a.estimate.t_exec_us.to_bits(),
                b.estimate.t_exec_us.to_bits()
            );
            prop_assert_eq!(a.estimate.sm_bytes, b.estimate.sm_bytes);
        }
        // The partition-adjacency index the search maintains answers exactly
        // like a full channel scan over the final partitioning — the
        // invariant that lets phases 3/4 replace their per-candidate scans.
        let final_sets: Vec<NodeSet> = parallel.iter().map(|p| p.nodes.clone()).collect();
        let index = AdjacencyIndex::build(&graph, &final_sets);
        assert_index_matches_scan(&graph, &final_sets, &index)?;
    }

    /// The incremental characteristics path is bit-identical to the
    /// reference `from_set` rescan: for arbitrary subsets, and for unions
    /// derived via `merge_characteristics` from a random disjoint split —
    /// in both enhancement modes.
    #[test]
    fn incremental_characteristics_match_from_set(
        spec in spec_strategy(2, false),
        mask in prop::collection::vec(any::<bool>(), 64..65),
        enhanced in any::<bool>(),
        feedback in prop::collection::vec((any::<u8>(), any::<u8>()), 0..3),
    ) {
        let graph = add_random_feedback(random_graph(spec), &feedback);
        let reps = graph.repetition_vector().unwrap();
        let profile = profile_graph(&graph, &GpuSpec::m2090());
        let index = CharsIndex::new(&graph, &reps, &profile);

        // Split the filters into two disjoint halves by the random mask.
        let a_ids: Vec<FilterId> = graph.filter_ids().filter(|id| mask[id.index() % mask.len()]).collect();
        let b_ids: Vec<FilterId> = graph.filter_ids().filter(|id| !mask[id.index() % mask.len()]).collect();
        prop_assume!(!a_ids.is_empty() && !b_ids.is_empty());
        let a_set = NodeSet::from_ids(a_ids);
        let b_set = NodeSet::from_ids(b_ids);
        let all = NodeSet::all(&graph);

        // Indexed single-set path vs the reference, on every piece.
        for set in [&a_set, &b_set, &all] {
            let reference =
                PartitionCharacteristics::from_set(&graph, set, &reps, &profile, enhanced);
            assert_chars_bit_identical(&index.for_set(&graph, set, enhanced).chars, &reference)?;
        }

        // The merged union vs the reference on the union.
        let merged = merge_characteristics(
            &index,
            &graph,
            enhanced,
            &index.for_set(&graph, &a_set, enhanced),
            &a_set,
            &index.for_set(&graph, &b_set, enhanced),
            &b_set,
            &all,
        );
        let reference = PartitionCharacteristics::from_set(&graph, &all, &reps, &profile, enhanced);
        assert_chars_bit_identical(&merged.chars, &reference)?;
    }

    /// The adjacency index stays exact through arbitrary merge sequences:
    /// random partitions of a random graph, merged pairwise with the
    /// partitioner's swap-remove bookkeeping, always answer like a full
    /// channel scan.
    #[test]
    fn adjacency_index_is_exact_across_merge_sequences(
        spec in spec_strategy(2, false),
        groups in prop::collection::vec(0usize..5, 64..65),
        merge_seed in prop::collection::vec(any::<u8>(), 8..9),
        feedback in prop::collection::vec((any::<u8>(), any::<u8>()), 0..3),
    ) {
        let graph = add_random_feedback(random_graph(spec), &feedback);
        // Partition the filters into up to 5 arbitrary groups.
        let mut sets: Vec<Vec<FilterId>> = vec![Vec::new(); 5];
        for id in graph.filter_ids() {
            sets[groups[id.index() % groups.len()]].push(id);
        }
        let mut parts: Vec<NodeSet> = sets
            .into_iter()
            .filter(|s| !s.is_empty())
            .map(NodeSet::from_ids)
            .collect();
        let mut index = AdjacencyIndex::build(&graph, &parts);
        assert_index_matches_scan(&graph, &parts, &index)?;

        // Merge pseudo-random pairs exactly the way phase 3 does.
        for &seed in &merge_seed {
            if parts.len() < 2 {
                break;
            }
            let lo = usize::from(seed) % (parts.len() - 1);
            let hi = lo + 1 + usize::from(seed / 16) % (parts.len() - 1 - lo);
            let union = parts[lo].union(&parts[hi]);
            index.merge_swap_remove(lo, hi);
            parts.swap_remove(hi);
            parts[lo] = union;
            assert_index_matches_scan(&graph, &parts, &index)?;
        }
    }

    /// The shared-memory footprint never shrinks when the enhancement is
    /// disabled, and the kernel footprint grows monotonically with W.
    #[test]
    fn footprint_monotonicity(spec in spec_strategy(2, false), w in 1u32..8) {
        let graph = random_graph(spec);
        let reps = graph.repetition_vector().unwrap();
        let all = NodeSet::all(&graph);
        let plain = sm_layout::footprint(&graph, &all, &reps, false);
        let enhanced = sm_layout::footprint(&graph, &all, &reps, true);
        prop_assert!(enhanced.internal_peak_bytes <= plain.internal_peak_bytes);
        prop_assert!(plain.kernel_bytes(w + 1) >= plain.kernel_bytes(w));
    }

    /// The PDG of any partitioning preserves the total inter-partition byte
    /// volume and admits a topological order; any assignment evaluated on a
    /// platform yields a bottleneck no smaller than the average load bound.
    #[test]
    fn pdg_and_mapping_cost_are_consistent(spec in spec_strategy(2, false), gpus in 1usize..5) {
        let graph = random_graph(spec);
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        prop_assume!(graph.filter_ids().all(|id| est.estimate(&NodeSet::singleton(id)).is_some()));
        let partitioning = partition_stream_graph(&est).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let pdg = build_pdg(&graph, &reps, &partitioning);
        prop_assert_eq!(pdg.topological_order().len(), pdg.len());
        let platform = Platform::homogeneous(GpuSpec::m2090(), gpus);
        // Round-robin assignment is always valid input for the evaluator.
        let assignment: Vec<usize> = (0..pdg.len()).map(|i| i % gpus).collect();
        let cost = evaluate_assignment(&pdg, &platform, &assignment);
        let avg = pdg.total_time_us() / gpus as f64;
        prop_assert!(cost.tmax_us + 1e-9 >= avg / gpus as f64);
        prop_assert_eq!(cost.per_gpu_time_us.len(), gpus);
    }

    /// The branch-and-bound ILP solver agrees with brute force on random
    /// small 0/1 knapsack-style models.
    #[test]
    fn ilp_matches_brute_force(
        values in prop::collection::vec(1.0f64..20.0, 2..7),
        weights_seed in prop::collection::vec(1u32..9, 2..7),
        cap in 4u32..20,
    ) {
        let n = values.len().min(weights_seed.len());
        let values = &values[..n];
        let weights: Vec<f64> = weights_seed[..n].iter().map(|&w| f64::from(w)).collect();
        let mut model = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| model.add_binary(format!("x{i}"), v))
            .collect();
        model.add_constraint_le(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            f64::from(cap),
        );
        let solution = Solver::new().solve(&model).unwrap();

        // Brute force over all subsets.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let weight: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
            if weight <= f64::from(cap) {
                let value: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                best = best.max(value);
            }
        }
        prop_assert!((solution.objective - best).abs() < 1e-6,
            "solver {} vs brute force {}", solution.objective, best);
    }
}
