//! Integration tests spanning the whole workspace: benchmark graphs flow
//! through profiling, partitioning, ILP mapping, code generation and the
//! platform simulator, and the headline qualitative results of the paper
//! hold on the simulated platform.

use sgmap::{compile, compile_and_run, execute, FlowConfig};
use sgmap_apps::App;
use sgmap_gpusim::TransferMode;
use sgmap_mapping::MappingMethod;
use sgmap_partition::PartitionerKind;

#[test]
fn every_app_compiles_and_runs_on_one_and_four_gpus() {
    for app in App::all() {
        let n = app.quick_n_values()[1];
        let graph = app.build(n).unwrap();
        for gpus in [1usize, 4] {
            let config = FlowConfig::default().with_gpu_count(gpus);
            let compiled =
                compile(&graph, &config).unwrap_or_else(|e| panic!("{app} N={n} G={gpus}: {e}"));
            compiled
                .partitioning
                .validate_cover(&graph)
                .unwrap_or_else(|e| panic!("{app} N={n}: bad cover: {e}"));
            assert!(
                compiled.mapping.assignment.iter().all(|&a| a < gpus),
                "{app}: invalid GPU index"
            );
            let report = execute(&compiled, &config);
            assert!(report.time_per_iteration_us > 0.0, "{app} G={gpus}");
        }
    }
}

#[test]
fn four_gpus_speed_up_large_compute_bound_apps() {
    // The core scalability claim (Figure 4.2): for large, compute-bound
    // graphs, the 4-GPU mapping clearly beats the 1-GPU multi-partition
    // mapping.
    for (app, n) in [(App::Des, 20), (App::Dct, 18)] {
        let graph = app.build(n).unwrap();
        let one = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(1)).unwrap();
        let four = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(4)).unwrap();
        let speedup = one.time_per_iteration_us / four.time_per_iteration_us;
        assert!(
            speedup > 1.5,
            "{app} N={n}: expected >1.5x speedup on 4 GPUs, got {speedup:.2}"
        );
    }
}

#[test]
fn small_workloads_do_not_benefit_from_many_gpus() {
    // The other half of Figure 4.2: when N is small the communication cost
    // eats the benefit, and the mapping gracefully stays close to the 1-GPU
    // throughput instead of collapsing.
    let graph = App::Bitonic.build(2).unwrap();
    let one = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(1)).unwrap();
    let four = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(4)).unwrap();
    let speedup = one.time_per_iteration_us / four.time_per_iteration_us;
    assert!(speedup < 2.0, "tiny bitonic should not scale: {speedup:.2}");
    assert!(
        four.time_per_iteration_us <= one.time_per_iteration_us * 1.6,
        "communication-aware mapping must not fall off a cliff"
    );
}

#[test]
fn sosp_of_our_stack_beats_the_previous_work_for_compute_bound_apps() {
    // Figure 4.3, qualitatively: measured as speedup over the same SPSG
    // reference, our partitioning + ILP mapping outperforms the prior-work
    // stack on compute-bound applications.
    let graph = App::Des.build(16).unwrap();
    let spsg = compile_and_run(&graph, &FlowConfig::spsg()).unwrap();
    let ours = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(4)).unwrap();
    let prev = compile_and_run(&graph, &FlowConfig::previous_work().with_gpu_count(4)).unwrap();
    let sosp_ours = spsg.time_per_iteration_us / ours.time_per_iteration_us;
    let sosp_prev = spsg.time_per_iteration_us / prev.time_per_iteration_us;
    assert!(
        sosp_ours > sosp_prev,
        "ours {sosp_ours:.2} should beat previous {sosp_prev:.2}"
    );
    assert!(
        sosp_ours > 1.5,
        "ours should clearly beat SPSG: {sosp_ours:.2}"
    );
}

#[test]
fn proposed_partitioner_produces_at_least_as_many_partitions_as_baseline() {
    // Section 4.0.3's "kernel count ratio" observation.
    for (app, n) in [(App::Des, 12), (App::FmRadio, 12), (App::Bitonic, 16)] {
        let graph = app.build(n).unwrap();
        let ours = compile(&graph, &FlowConfig::default()).unwrap();
        let base = compile(
            &graph,
            &FlowConfig::default().with_partitioner(PartitionerKind::Baseline),
        )
        .unwrap();
        assert!(
            ours.partition_count() >= base.partition_count(),
            "{app}: {} < {}",
            ours.partition_count(),
            base.partition_count()
        );
    }
}

#[test]
fn peer_to_peer_transfers_beat_host_staging_for_chatty_mappings() {
    // Section 3.2.3: peer-to-peer communication is more efficient than
    // routing every transfer through the CPU.
    let graph = App::Fft.build(256).unwrap();
    let p2p = compile_and_run(
        &graph,
        &FlowConfig::default()
            .with_gpu_count(4)
            .with_mapper(MappingMethod::RoundRobin),
    )
    .unwrap();
    let via_host = compile_and_run(
        &graph,
        &FlowConfig::default()
            .with_gpu_count(4)
            .with_mapper(MappingMethod::RoundRobin)
            .with_transfer_mode(TransferMode::ViaHost),
    )
    .unwrap();
    assert!(
        p2p.time_per_iteration_us <= via_host.time_per_iteration_us * 1.01,
        "p2p {} vs via-host {}",
        p2p.time_per_iteration_us,
        via_host.time_per_iteration_us
    );
}

#[test]
fn ilp_mapping_never_loses_to_the_heuristics_on_the_model() {
    for (app, n) in [(App::FmRadio, 12), (App::MatMul3, 4)] {
        let graph = app.build(n).unwrap();
        let ilp = compile(&graph, &FlowConfig::default().with_gpu_count(3)).unwrap();
        let greedy = compile(
            &graph,
            &FlowConfig::default()
                .with_gpu_count(3)
                .with_mapper(MappingMethod::Greedy),
        )
        .unwrap();
        assert!(
            ilp.mapping.predicted_tmax_us <= greedy.mapping.predicted_tmax_us + 1e-6,
            "{app}: ILP {} worse than greedy {}",
            ilp.mapping.predicted_tmax_us,
            greedy.mapping.predicted_tmax_us
        );
    }
}

#[test]
fn splitter_elimination_helps_split_heavy_apps_more_than_fft() {
    let bitonic = App::Bitonic.build(16).unwrap();
    let fft = App::Fft.build(128).unwrap();
    let speedup = |graph: &sgmap_graph::StreamGraph| {
        let base = compile_and_run(graph, &FlowConfig::spsg()).unwrap();
        let enhanced = compile_and_run(graph, &FlowConfig::spsg().with_enhancement(true)).unwrap();
        base.time_per_iteration_us / enhanced.time_per_iteration_us
    };
    let bitonic_gain = speedup(&bitonic);
    let fft_gain = speedup(&fft);
    assert!(
        bitonic_gain >= 1.0,
        "enhancement must not slow bitonic down"
    );
    assert!(fft_gain >= 0.95, "enhancement must not slow FFT down");
    assert!(
        bitonic_gain >= fft_gain * 0.9,
        "bitonic (many splitters) should gain at least as much as FFT: {bitonic_gain:.2} vs {fft_gain:.2}"
    );
}
