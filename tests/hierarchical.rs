//! End-to-end acceptance of hierarchical, heterogeneous platform specs: the
//! NVLink-island box, the two-node cluster and the mixed-model box all flow
//! through partitioning, mapping, code generation and the simulator via
//! `FlowConfig::with_platform`.

use sgmap::{compile, compile_and_run, FlowConfig};
use sgmap_apps::App;
use sgmap_gpusim::PlatformSpec;

#[test]
fn hierarchical_platforms_compile_and_run_end_to_end() {
    let graph = App::FmRadio.build(8).unwrap();
    for spec in [
        PlatformSpec::nvlink8_m2090(),
        PlatformSpec::cluster2x4_m2090(),
        PlatformSpec::mixed_m2090_c2070(),
    ] {
        let name = spec.name.clone();
        let gpus = spec.gpu_count();
        let config = FlowConfig::default().with_platform(spec);
        config.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let compiled = compile(&graph, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        compiled
            .partitioning
            .validate_cover(&graph)
            .unwrap_or_else(|e| panic!("{name}: bad cover: {e}"));
        assert!(
            compiled.mapping.assignment.iter().all(|&a| a < gpus),
            "{name}: invalid GPU index in {:?}",
            compiled.mapping.assignment
        );
        let report = compile_and_run(&graph, &config).unwrap();
        assert!(
            report.time_per_iteration_us > 0.0,
            "{name}: empty execution report"
        );
    }
}

#[test]
fn heterogeneous_box_slows_work_placed_on_the_older_device() {
    // The mixed box estimates on the M2090 and stretches times on the C2070
    // sides by the throughput-proxy factor, so a single-partition graph
    // mapped anywhere still runs — and the platform validates — while the
    // homogeneous reference at the same count stays at factor 1.0.
    let mixed = PlatformSpec::mixed_m2090_c2070().build().unwrap();
    assert_eq!(mixed.time_factor(0), 1.0);
    assert!(
        (1..mixed.gpu_count()).any(|g| mixed.time_factor(g) > 1.0),
        "mixed box should contain a slower device"
    );
}
