//! Workspace hygiene gate: every target in every crate — benches, figure
//! binaries and examples included — must at least type-check, so they can
//! never silently rot while the regular test targets stay green.

use std::process::Command;

#[test]
fn every_workspace_target_type_checks() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["check", "--all-targets", "--workspace", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo check");
    assert!(
        output.status.success(),
        "cargo check --all-targets --workspace failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
