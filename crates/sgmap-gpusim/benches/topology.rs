//! Micro-benchmarks of the topology hot paths driving ILP constraint
//! generation: building the per-link `D_l` terms needs `route()` for every
//! communicating GPU pair and `dtlist()` for every link. Both are O(1) table
//! lookups precomputed at build time; the `*_scan` baselines re-derive them
//! by walking the tree with linear `find_link` scans — the pre-memoization
//! algorithm — to show what the precomputation buys on an 8-GPU platform.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sgmap_gpusim::{Endpoint, PlatformSpec, Topology};

/// One constraint-generation pass: accumulate route lengths over every
/// ordered GPU pair (the III.6/III.7 crossing terms) plus the host routes.
fn constraint_pass_lookup(topo: &Topology) -> usize {
    let g = topo.gpu_count();
    let mut hops = 0;
    for i in 0..g {
        for j in 0..g {
            if i != j {
                hops += topo.route(Endpoint::Gpu(i), Endpoint::Gpu(j)).len();
            }
        }
        hops += topo.route(Endpoint::Host, Endpoint::Gpu(i)).len();
        hops += topo.route(Endpoint::Gpu(i), Endpoint::Host).len();
    }
    hops
}

fn constraint_pass_scan(topo: &Topology) -> usize {
    let g = topo.gpu_count();
    let mut hops = 0;
    for i in 0..g {
        for j in 0..g {
            if i != j {
                hops += topo.route_scan(Endpoint::Gpu(i), Endpoint::Gpu(j)).len();
            }
        }
        hops += topo.route_scan(Endpoint::Host, Endpoint::Gpu(i)).len();
        hops += topo.route_scan(Endpoint::Gpu(i), Endpoint::Host).len();
    }
    hops
}

fn dtlist_pass_lookup(topo: &Topology) -> usize {
    topo.link_ids().map(|l| topo.dtlist(l).len()).sum()
}

fn dtlist_pass_scan(topo: &Topology) -> usize {
    topo.link_ids().map(|l| topo.dtlist_scan(l).len()).sum()
}

fn bench_topology(c: &mut Criterion) {
    let topo = PlatformSpec::nvlink8_m2090()
        .build()
        .expect("preset builds")
        .topology;

    // The two implementations must agree before we time them.
    assert_eq!(constraint_pass_lookup(&topo), constraint_pass_scan(&topo));
    assert_eq!(dtlist_pass_lookup(&topo), dtlist_pass_scan(&topo));

    c.bench_function("topology/routes/nvlink8/precomputed", |b| {
        b.iter(|| constraint_pass_lookup(black_box(&topo)))
    });
    c.bench_function("topology/routes/nvlink8/scan", |b| {
        b.iter(|| constraint_pass_scan(black_box(&topo)))
    });
    c.bench_function("topology/dtlists/nvlink8/precomputed", |b| {
        b.iter(|| dtlist_pass_lookup(black_box(&topo)))
    });
    c.bench_function("topology/dtlists/nvlink8/scan", |b| {
        b.iter(|| dtlist_pass_scan(black_box(&topo)))
    });
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
