//! The interconnect of a multi-GPU platform.
//!
//! The topology is a tree with the host at the root, switches as inner nodes
//! and GPUs as leaves (Figure 3.3 of the paper is the reference instance).
//! Every tree edge is a full-duplex link and is therefore modelled as two
//! directed [`LinkId`]s, each carrying its own bandwidth, latency and
//! [`LinkClass`] — so one tree can mix NVLink islands, PCIe switch fabrics
//! and network links between nodes. Peer-to-peer traffic from GPU *i* to GPU
//! *j* climbs up-links to the lowest common ancestor and then descends
//! down-links to the destination; the set of GPU pairs whose traffic crosses
//! a given link — `dtlist(l)` in the ILP formulation — is derived from the
//! routing function.
//!
//! Routing and `dtlist` tables are precomputed once in
//! [`TopologyBuilder::finish`], so [`Topology::route`] and
//! [`Topology::dtlist`] are O(1) lookups returning slices. This matters
//! because both sit inside the ILP's constraint generation, which queries
//! them once per (link, partition-pair) combination.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default effective bandwidth of one PCIe link direction, in GB/s.
///
/// PCIe 2.0 x16 peaks at 8 GB/s; sustained DMA throughput on Fermi-class
/// systems is closer to 6 GB/s.
pub const DEFAULT_LINK_BANDWIDTH_GBS: f64 = 6.0;

/// Default one-hop latency of a PCIe transfer, in microseconds.
pub const DEFAULT_LINK_LATENCY_US: f64 = 8.0;

/// The technology class of a link, determining its default bandwidth and
/// latency. Individual links can still override both via
/// [`TopologyBuilder::override_uplink_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// An NVLink-style point-to-point GPU interconnect: high bandwidth, very
    /// low latency.
    NvLink,
    /// A PCI Express lane bundle (the paper's interconnect).
    Pcie,
    /// An inter-node network link (e.g. InfiniBand between cluster nodes):
    /// low bandwidth, high latency.
    Network,
}

impl LinkClass {
    /// Default per-direction bandwidth of this link class, in GB/s.
    pub fn default_bandwidth_gbs(self) -> f64 {
        match self {
            // First-generation NVLink sustains ~20 GB/s per direction.
            LinkClass::NvLink => 20.0,
            LinkClass::Pcie => DEFAULT_LINK_BANDWIDTH_GBS,
            // FDR InfiniBand-class fabric: ~10 Gb/s effective per flow.
            LinkClass::Network => 1.25,
        }
    }

    /// Default per-hop latency of this link class, in microseconds.
    pub fn default_latency_us(self) -> f64 {
        match self {
            LinkClass::NvLink => 1.0,
            LinkClass::Pcie => DEFAULT_LINK_LATENCY_US,
            LinkClass::Network => 25.0,
        }
    }

    /// A short lowercase name (for reports and platform-spec files).
    pub fn name(self) -> &'static str {
        match self {
            LinkClass::NvLink => "nvlink",
            LinkClass::Pcie => "pcie",
            LinkClass::Network => "network",
        }
    }

    /// The inverse of [`LinkClass::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "nvlink" => Some(LinkClass::NvLink),
            "pcie" => Some(LinkClass::Pcie),
            "network" => Some(LinkClass::Network),
            _ => None,
        }
    }
}

/// One endpoint of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The host CPU / system memory.
    Host,
    /// GPU with the given index (0-based).
    Gpu(usize),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host => write!(f, "host"),
            Endpoint::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(usize);

impl LinkId {
    /// Zero-based index of the link.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors produced when constructing a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The tree has no GPU leaves.
    NoGpus,
    /// A preset was asked for an unsupported GPU count or shape.
    UnsupportedShape(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoGpus => write!(f, "topology has no GPUs"),
            TopologyError::UnsupportedShape(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NodeKind {
    Host,
    Switch,
    Gpu(usize),
}

/// A directed link of the interconnect tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Link {
    from: usize,
    to: usize,
    /// `true` if the link points towards the root (an "up-link").
    up: bool,
    class: LinkClass,
    bandwidth_gbs: f64,
    latency_us: f64,
}

/// A tree-shaped, possibly heterogeneous interconnect with per-link
/// bandwidth, latency and class.
///
/// Construct one through a preset ([`Topology::switch_tree`],
/// [`Topology::flat`], [`Topology::nvlink_islands`],
/// [`Topology::two_node_cluster`]) or a custom [`TopologyBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    parent: Vec<Option<usize>>,
    links: Vec<Link>,
    /// `gpu_nodes[g]` is the tree node of GPU `g`.
    gpu_nodes: Vec<usize>,
    /// Precomputed routes for every ordered endpoint pair; indexed by
    /// `endpoint_index(from) * (gpu_count + 1) + endpoint_index(to)`.
    routes: Vec<Vec<LinkId>>,
    /// Precomputed `dtlist(l)` for every directed link, pairs in ascending
    /// `(i, j)` order.
    dtlists: Vec<Vec<(usize, usize)>>,
}

/// The PCIe-only name this type had before links grew classes; kept as an
/// alias so existing call sites keep compiling.
pub type PcieTopology = Topology;

impl Topology {
    /// Builds the reference switch tree of Figure 3.3, truncated to
    /// `gpu_count` GPUs: host — SW1 — {SW2 — {GPU0, GPU1}, SW3 — {GPU2,
    /// GPU3}}. All links are PCIe class.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnsupportedShape`] if `gpu_count` is zero or
    /// greater than four.
    pub fn switch_tree(gpu_count: usize) -> Result<Self, TopologyError> {
        if !(1..=4).contains(&gpu_count) {
            return Err(TopologyError::UnsupportedShape(format!(
                "the reference switch tree hosts 1 to 4 GPUs, got {gpu_count}"
            )));
        }
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let sw1 = t.switch(host);
        let sw2 = t.switch(sw1);
        let mut remaining = gpu_count;
        let first_half = remaining.min(2);
        for _ in 0..first_half {
            t.gpu(sw2);
        }
        remaining -= first_half;
        if remaining > 0 {
            let sw3 = t.switch(sw1);
            for _ in 0..remaining {
                t.gpu(sw3);
            }
        }
        t.finish()
    }

    /// Builds a flat topology where every GPU hangs directly off a single
    /// root switch (a symmetric interconnect, useful for ablations). All
    /// links are PCIe class.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnsupportedShape`] if `gpu_count` is zero.
    pub fn flat(gpu_count: usize) -> Result<Self, TopologyError> {
        if gpu_count == 0 {
            return Err(TopologyError::UnsupportedShape(
                "a flat topology needs at least one GPU".to_string(),
            ));
        }
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let sw = t.switch(host);
        for _ in 0..gpu_count {
            t.gpu(sw);
        }
        t.finish()
    }

    /// Builds an NVLink-island box: `islands` switches behind one PCIe root
    /// switch, each island holding `gpus_per_island` GPUs attached by NVLink.
    /// Traffic inside an island crosses two NVLink hops; traffic between
    /// islands additionally crosses the PCIe fabric.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnsupportedShape`] if either count is zero.
    pub fn nvlink_islands(islands: usize, gpus_per_island: usize) -> Result<Self, TopologyError> {
        if islands == 0 || gpus_per_island == 0 {
            return Err(TopologyError::UnsupportedShape(format!(
                "an NVLink-island box needs at least one island and one GPU per island, \
                 got {islands} x {gpus_per_island}"
            )));
        }
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let root = t.switch(host);
        for _ in 0..islands {
            let island = t.switch(root);
            for _ in 0..gpus_per_island {
                t.gpu_via(island, LinkClass::NvLink);
            }
        }
        t.finish()
    }

    /// Builds a two-node cluster: the host and `gpus_per_node` GPUs behind a
    /// PCIe switch on the head node, plus a second node whose switch hangs
    /// off the first over a network-class link. Intra-node traffic stays on
    /// PCIe; inter-node traffic crosses the (slow, high-latency) network
    /// link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnsupportedShape`] if `gpus_per_node` is
    /// zero.
    pub fn two_node_cluster(gpus_per_node: usize) -> Result<Self, TopologyError> {
        Topology::cluster(2, gpus_per_node)
    }

    /// Builds an `nodes`-node cluster: every node is a PCIe switch with
    /// `gpus_per_node` GPU leaves; node 0 holds the host, and every other
    /// node's switch attaches to node 0's switch over a network-class link.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnsupportedShape`] if either count is zero.
    pub fn cluster(nodes: usize, gpus_per_node: usize) -> Result<Self, TopologyError> {
        if nodes == 0 || gpus_per_node == 0 {
            return Err(TopologyError::UnsupportedShape(format!(
                "a cluster needs at least one node and one GPU per node, \
                 got {nodes} x {gpus_per_node}"
            )));
        }
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let head = t.switch(host);
        for _ in 0..gpus_per_node {
            t.gpu(head);
        }
        for _ in 1..nodes {
            let remote = t.switch_via(head, LinkClass::Network);
            for _ in 0..gpus_per_node {
                t.gpu(remote);
            }
        }
        t.finish()
    }

    /// Number of GPUs (leaves).
    pub fn gpu_count(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all directed link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// The technology class of a link.
    pub fn link_class(&self, link: LinkId) -> LinkClass {
        self.links[link.0].class
    }

    /// Per-direction bandwidth of a link, in GB/s.
    pub fn link_bandwidth_gbs(&self, link: LinkId) -> f64 {
        self.links[link.0].bandwidth_gbs
    }

    /// Per-direction bandwidth of a link, in bytes per microsecond (the unit
    /// the cost models divide by).
    pub fn link_bytes_per_us(&self, link: LinkId) -> f64 {
        self.links[link.0].bandwidth_gbs * 1000.0
    }

    /// Per-hop latency of a link, in microseconds.
    pub fn link_latency_us(&self, link: LinkId) -> f64 {
        self.links[link.0].latency_us
    }

    /// A copy of this topology with every link's bandwidth and latency
    /// multiplied by the given factors — the knob robustness sweeps turn to
    /// perturb the calibrated interconnect model. A factor of exactly `1.0`
    /// leaves that parameter bit-identical (no multiplication is applied),
    /// and routing is untouched either way.
    ///
    /// # Panics
    ///
    /// Panics if either factor is not positive.
    #[must_use]
    pub fn with_scaled_links(mut self, bandwidth_factor: f64, latency_factor: f64) -> Self {
        assert!(
            bandwidth_factor > 0.0 && latency_factor > 0.0,
            "link scale factors must be positive: bandwidth {bandwidth_factor}, \
             latency {latency_factor}"
        );
        for link in &mut self.links {
            if bandwidth_factor != 1.0 {
                link.bandwidth_gbs *= bandwidth_factor;
            }
            if latency_factor != 1.0 {
                link.latency_us *= latency_factor;
            }
        }
        self
    }

    /// `true` if the link points towards the root.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link.0].up
    }

    /// The `(from, to)` tree nodes of a directed link (for tests and
    /// diagnostics).
    pub fn link_nodes(&self, link: LinkId) -> (usize, usize) {
        let l = &self.links[link.0];
        (l.from, l.to)
    }

    /// A human-readable description of a link (for reports).
    pub fn link_description(&self, link: LinkId) -> String {
        let l = &self.links[link.0];
        format!(
            "{} -> {}",
            self.node_description(l.from),
            self.node_description(l.to)
        )
    }

    fn node_description(&self, node: usize) -> String {
        match self.kinds[node] {
            NodeKind::Host => "host".to_string(),
            NodeKind::Switch => format!("sw{node}"),
            NodeKind::Gpu(g) => format!("gpu{g}"),
        }
    }

    fn endpoint_node(&self, e: Endpoint) -> usize {
        match e {
            Endpoint::Host => 0,
            Endpoint::Gpu(g) => self.gpu_nodes[g],
        }
    }

    /// Index of an endpoint in the precomputed route table: host is 0, GPU
    /// `g` is `g + 1`.
    fn endpoint_index(&self, e: Endpoint) -> usize {
        match e {
            Endpoint::Host => 0,
            Endpoint::Gpu(g) => {
                assert!(g < self.gpu_count(), "GPU index {g} out of range");
                g + 1
            }
        }
    }

    fn path_to_root(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while let Some(p) = self.parent[node] {
            path.push(p);
            node = p;
        }
        path
    }

    /// Returns the directed links traversed by a transfer from `from` to
    /// `to`, in traversal order (up-links to the lowest common ancestor, then
    /// down-links). Returns an empty route if source and destination
    /// coincide. This is an O(1) lookup into a table precomputed at build
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if a GPU index is out of range.
    pub fn route(&self, from: Endpoint, to: Endpoint) -> &[LinkId] {
        let stride = self.gpu_count() + 1;
        &self.routes[self.endpoint_index(from) * stride + self.endpoint_index(to)]
    }

    /// Computes a route by walking the tree, without consulting the
    /// precomputed table. This is the pre-memoization algorithm (linear
    /// `find_link` scans included), kept as the oracle for property tests and
    /// the baseline for the constraint-generation micro-benchmark.
    #[doc(hidden)]
    pub fn route_scan(&self, from: Endpoint, to: Endpoint) -> Vec<LinkId> {
        let src = self.endpoint_node(from);
        let dst = self.endpoint_node(to);
        if src == dst {
            return Vec::new();
        }
        let up_path = self.path_to_root(src);
        let down_path = self.path_to_root(dst);
        // Find the lowest common ancestor.
        let lca = *up_path
            .iter()
            .find(|n| down_path.contains(n))
            .expect("tree has a common root");
        let mut route = Vec::new();
        // Up-links from src to the LCA.
        for w in up_path.iter().take_while(|&&n| n != lca) {
            let parent = self.parent[*w].expect("non-root node has a parent");
            route.push(self.find_link(*w, parent));
        }
        // Down-links from the LCA to dst (collect then reverse).
        let mut down = Vec::new();
        for w in down_path.iter().take_while(|&&n| n != lca) {
            let parent = self.parent[*w].expect("non-root node has a parent");
            down.push(self.find_link(parent, *w));
        }
        down.reverse();
        route.extend(down);
        route
    }

    fn find_link(&self, from: usize, to: usize) -> LinkId {
        LinkId(
            self.links
                .iter()
                .position(|l| l.from == from && l.to == to)
                .expect("adjacent nodes are linked"),
        )
    }

    /// The `dtlist(l)` of the ILP formulation: all ordered GPU pairs `(i, j)`
    /// whose peer-to-peer traffic crosses the given directed link, in
    /// ascending `(i, j)` order. This is an O(1) lookup into a table
    /// precomputed at build time.
    pub fn dtlist(&self, link: LinkId) -> &[(usize, usize)] {
        &self.dtlists[link.0]
    }

    /// Computes `dtlist(l)` from scratch by routing every ordered GPU pair —
    /// the pre-memoization algorithm, kept for property tests and the
    /// micro-benchmark baseline.
    #[doc(hidden)]
    pub fn dtlist_scan(&self, link: LinkId) -> Vec<(usize, usize)> {
        let g = self.gpu_count();
        let mut pairs = Vec::new();
        for i in 0..g {
            for j in 0..g {
                if i == j {
                    continue;
                }
                if self
                    .route_scan(Endpoint::Gpu(i), Endpoint::Gpu(j))
                    .contains(&link)
                {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Transfer time for `bytes` over one directed link, in microseconds:
    /// `latency + bytes / bandwidth` with that link's own parameters.
    pub fn link_transfer_us(&self, link: LinkId, bytes: f64) -> f64 {
        let l = &self.links[link.0];
        l.latency_us + bytes / (l.bandwidth_gbs * 1000.0)
    }

    /// Total time for `bytes` along a full route (store-and-forward over each
    /// hop), in microseconds.
    pub fn route_transfer_us(&self, from: Endpoint, to: Endpoint, bytes: f64) -> f64 {
        self.route(from, to)
            .iter()
            .map(|&l| self.link_transfer_us(l, bytes))
            .sum()
    }
}

/// Per-edge link parameters used while building a topology.
#[derive(Debug, Clone, Copy)]
struct EdgeProps {
    class: LinkClass,
    bandwidth_gbs: f64,
    latency_us: f64,
}

impl EdgeProps {
    fn of_class(class: LinkClass) -> Self {
        EdgeProps {
            class,
            bandwidth_gbs: class.default_bandwidth_gbs(),
            latency_us: class.default_latency_us(),
        }
    }
}

/// Incremental construction of a [`Topology`]: add the host first, then
/// switches and GPUs each attached to an existing parent node, then call
/// [`TopologyBuilder::finish`] to validate the tree and precompute the
/// routing tables.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    parent: Vec<Option<usize>>,
    gpu_nodes: Vec<usize>,
    /// `edges[n]` describes the link between node `n` and its parent.
    edges: Vec<Option<EdgeProps>>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds the host as the tree root and returns its node id (always 0).
    ///
    /// # Panics
    ///
    /// Panics if any node was added before the host.
    pub fn host(&mut self) -> usize {
        assert!(self.kinds.is_empty(), "host must be the first node");
        self.kinds.push(NodeKind::Host);
        self.parent.push(None);
        self.edges.push(None);
        0
    }

    /// Adds a switch under `parent`, connected by a PCIe-class link.
    pub fn switch(&mut self, parent: usize) -> usize {
        self.switch_via(parent, LinkClass::Pcie)
    }

    /// Adds a switch under `parent`, connected by a link of the given class
    /// (with the class's default bandwidth and latency).
    pub fn switch_via(&mut self, parent: usize, class: LinkClass) -> usize {
        self.add_node(NodeKind::Switch, parent, class)
    }

    /// Adds a GPU leaf under `parent`, connected by a PCIe-class link.
    pub fn gpu(&mut self, parent: usize) -> usize {
        self.gpu_via(parent, LinkClass::Pcie)
    }

    /// Adds a GPU leaf under `parent`, connected by a link of the given class
    /// (with the class's default bandwidth and latency).
    pub fn gpu_via(&mut self, parent: usize, class: LinkClass) -> usize {
        let gpu_index = self.gpu_nodes.len();
        let id = self.add_node(NodeKind::Gpu(gpu_index), parent, class);
        self.gpu_nodes.push(id);
        id
    }

    /// Overrides the bandwidth and latency of the edge connecting `node` to
    /// its parent (both directions).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the host (it has no parent edge).
    pub fn override_uplink_edge(&mut self, node: usize, bandwidth_gbs: f64, latency_us: f64) {
        let props = self.edges[node]
            .as_mut()
            .expect("the host has no parent edge");
        props.bandwidth_gbs = bandwidth_gbs;
        props.latency_us = latency_us;
    }

    fn add_node(&mut self, kind: NodeKind, parent: usize, class: LinkClass) -> usize {
        assert!(parent < self.kinds.len(), "parent node does not exist");
        assert!(
            !matches!(self.kinds[parent], NodeKind::Gpu(_)),
            "GPUs are leaves"
        );
        let id = self.kinds.len();
        self.kinds.push(kind);
        self.parent.push(Some(parent));
        self.edges.push(Some(EdgeProps::of_class(class)));
        id
    }

    /// Validates the tree and precomputes the routing and `dtlist` tables.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoGpus`] if the tree has no GPU leaves.
    pub fn finish(self) -> Result<Topology, TopologyError> {
        if self.gpu_nodes.is_empty() {
            return Err(TopologyError::NoGpus);
        }
        let mut links = Vec::new();
        for (node, parent) in self.parent.iter().enumerate() {
            if let Some(p) = parent {
                let props = self.edges[node].expect("non-root node has an edge");
                links.push(Link {
                    from: node,
                    to: *p,
                    up: true,
                    class: props.class,
                    bandwidth_gbs: props.bandwidth_gbs,
                    latency_us: props.latency_us,
                });
                links.push(Link {
                    from: *p,
                    to: node,
                    up: false,
                    class: props.class,
                    bandwidth_gbs: props.bandwidth_gbs,
                    latency_us: props.latency_us,
                });
            }
        }
        let mut topo = Topology {
            kinds: self.kinds,
            parent: self.parent,
            links,
            gpu_nodes: self.gpu_nodes,
            routes: Vec::new(),
            dtlists: Vec::new(),
        };
        // Precompute the route table for every ordered endpoint pair (host is
        // endpoint index 0, GPU g is g + 1) ...
        let g = topo.gpu_count();
        let endpoint = |idx: usize| -> Endpoint {
            if idx == 0 {
                Endpoint::Host
            } else {
                Endpoint::Gpu(idx - 1)
            }
        };
        let mut routes = Vec::with_capacity((g + 1) * (g + 1));
        for from in 0..=g {
            for to in 0..=g {
                routes.push(topo.route_scan(endpoint(from), endpoint(to)));
            }
        }
        // ... and invert the GPU-to-GPU routes into per-link dtlists. Pairs
        // land in ascending (i, j) order because the loops ascend.
        let mut dtlists = vec![Vec::new(); topo.links.len()];
        for i in 0..g {
            for j in 0..g {
                if i == j {
                    continue;
                }
                for link in &routes[(i + 1) * (g + 1) + (j + 1)] {
                    dtlists[link.index()].push((i, j));
                }
            }
        }
        topo.routes = routes;
        topo.dtlists = dtlists;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gpu_tree_matches_figure_3_3() {
        let t = Topology::switch_tree(4).unwrap();
        assert_eq!(t.gpu_count(), 4);
        // Nodes: host, sw1, sw2, gpu0, gpu1, sw3, gpu2, gpu3 -> 7 edges, 14
        // directed links.
        assert_eq!(t.link_count(), 14);
        // GPU0 -> GPU1 shares SW2: 2 links. GPU1 -> GPU2 crosses SW1: 4 links.
        assert_eq!(t.route(Endpoint::Gpu(0), Endpoint::Gpu(1)).len(), 2);
        assert_eq!(t.route(Endpoint::Gpu(1), Endpoint::Gpu(2)).len(), 4);
        // Host -> GPU0 goes host->sw1->sw2->gpu0: 3 links.
        assert_eq!(t.route(Endpoint::Host, Endpoint::Gpu(0)).len(), 3);
        assert!(t.route(Endpoint::Gpu(2), Endpoint::Gpu(2)).is_empty());
        // All reference links are PCIe class with the default parameters.
        for l in t.link_ids() {
            assert_eq!(t.link_class(l), LinkClass::Pcie);
            assert_eq!(t.link_bandwidth_gbs(l), DEFAULT_LINK_BANDWIDTH_GBS);
            assert_eq!(t.link_latency_us(l), DEFAULT_LINK_LATENCY_US);
        }
    }

    #[test]
    fn dtlist_matches_the_paper_example() {
        // "the link SW2 -> SW1 will be used only by the communication between
        //  these GPUs: (1,3), (1,4), (2,3), (2,4)" — with 1-based GPU ids.
        let t = Topology::switch_tree(4).unwrap();
        // Find the up-link whose dtlist is {(0,2),(0,3),(1,2),(1,3)} 0-based.
        let expected = vec![(0, 2), (0, 3), (1, 2), (1, 3)];
        let found = t.link_ids().any(|l| t.dtlist(l) == expected);
        assert!(found, "no link carries exactly the SW2->SW1 traffic");
    }

    #[test]
    fn dtlist_is_empty_for_leaf_links_of_other_gpus() {
        let t = Topology::switch_tree(2).unwrap();
        // Total pair-link incidences: each of the 2 ordered pairs uses 2
        // links.
        let total: usize = t.link_ids().map(|l| t.dtlist(l).len()).sum();
        assert_eq!(total, 2 * 2);
    }

    #[test]
    fn memoized_tables_match_the_scan_algorithms() {
        for t in [
            Topology::switch_tree(4).unwrap(),
            Topology::flat(3).unwrap(),
            Topology::nvlink_islands(2, 4).unwrap(),
            Topology::two_node_cluster(4).unwrap(),
        ] {
            let g = t.gpu_count();
            for i in 0..g {
                for j in 0..g {
                    assert_eq!(
                        t.route(Endpoint::Gpu(i), Endpoint::Gpu(j)),
                        t.route_scan(Endpoint::Gpu(i), Endpoint::Gpu(j)).as_slice()
                    );
                }
                assert_eq!(
                    t.route(Endpoint::Host, Endpoint::Gpu(i)),
                    t.route_scan(Endpoint::Host, Endpoint::Gpu(i)).as_slice()
                );
                assert_eq!(
                    t.route(Endpoint::Gpu(i), Endpoint::Host),
                    t.route_scan(Endpoint::Gpu(i), Endpoint::Host).as_slice()
                );
            }
            for l in t.link_ids() {
                assert_eq!(t.dtlist(l), t.dtlist_scan(l).as_slice());
            }
        }
    }

    #[test]
    fn transfer_times_scale_with_bytes_and_hops() {
        let t = Topology::switch_tree(4).unwrap();
        let link = t.link_ids().next().unwrap();
        let one_hop = t.link_transfer_us(link, 6_000_000.0);
        assert!((one_hop - (DEFAULT_LINK_LATENCY_US + 1000.0)).abs() < 1e-9);
        let p2p_far = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(3), 6_000_000.0);
        let p2p_near = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(1), 6_000_000.0);
        assert!(p2p_far > p2p_near);
        assert!((p2p_far / p2p_near - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flat_topology_is_symmetric() {
        let t = Topology::flat(3).unwrap();
        assert_eq!(t.gpu_count(), 3);
        let a = t.route(Endpoint::Gpu(0), Endpoint::Gpu(1)).len();
        let b = t.route(Endpoint::Gpu(0), Endpoint::Gpu(2)).len();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_switch_tree_is_an_error_not_a_panic() {
        let err = Topology::switch_tree(9).unwrap_err();
        assert!(err.to_string().contains("1 to 4 GPUs"), "{err}");
        assert!(Topology::switch_tree(0).is_err());
        assert!(Topology::flat(0).is_err());
        assert!(Topology::nvlink_islands(0, 2).is_err());
        assert!(Topology::cluster(2, 0).is_err());
    }

    #[test]
    fn nvlink_islands_mix_link_classes() {
        let t = Topology::nvlink_islands(2, 4).unwrap();
        assert_eq!(t.gpu_count(), 8);
        // Intra-island: two NVLink hops.
        let near = t.route(Endpoint::Gpu(0), Endpoint::Gpu(1));
        assert_eq!(near.len(), 2);
        assert!(near.iter().all(|&l| t.link_class(l) == LinkClass::NvLink));
        // Cross-island: NVLink up, PCIe across, NVLink down.
        let far: Vec<LinkClass> = t
            .route(Endpoint::Gpu(0), Endpoint::Gpu(4))
            .iter()
            .map(|&l| t.link_class(l))
            .collect();
        assert_eq!(
            far,
            vec![
                LinkClass::NvLink,
                LinkClass::Pcie,
                LinkClass::Pcie,
                LinkClass::NvLink
            ]
        );
        // NVLink hops are faster than PCIe hops for the same payload.
        let nv = t.link_transfer_us(near[0], 1_000_000.0);
        let pcie_link = t
            .link_ids()
            .find(|&l| t.link_class(l) == LinkClass::Pcie)
            .unwrap();
        let pcie = t.link_transfer_us(pcie_link, 1_000_000.0);
        assert!(nv < pcie);
    }

    #[test]
    fn cluster_crosses_a_network_link_between_nodes() {
        let t = Topology::two_node_cluster(4).unwrap();
        assert_eq!(t.gpu_count(), 8);
        // Intra-node traffic never touches the network.
        let near = t.route(Endpoint::Gpu(0), Endpoint::Gpu(3));
        assert!(near.iter().all(|&l| t.link_class(l) == LinkClass::Pcie));
        // Inter-node traffic crosses exactly one network hop.
        let far = t.route(Endpoint::Gpu(0), Endpoint::Gpu(4));
        let network_hops = far
            .iter()
            .filter(|&&l| t.link_class(l) == LinkClass::Network)
            .count();
        assert_eq!(network_hops, 1);
        // The network hop dominates the transfer time.
        let inter = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(4), 1_000_000.0);
        let intra = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(3), 1_000_000.0);
        assert!(inter > 3.0 * intra);
    }

    #[test]
    fn edge_overrides_apply_to_both_directions() {
        let mut b = TopologyBuilder::new();
        let host = b.host();
        let sw = b.switch(host);
        let g0 = b.gpu(sw);
        b.gpu(sw);
        b.override_uplink_edge(g0, 12.0, 2.0);
        let t = b.finish().unwrap();
        let touched: Vec<LinkId> = t
            .link_ids()
            .filter(|&l| t.link_bandwidth_gbs(l) == 12.0)
            .collect();
        assert_eq!(touched.len(), 2);
        assert!(touched.iter().all(|&l| t.link_latency_us(l) == 2.0));
    }

    #[test]
    fn empty_tree_is_an_error() {
        let mut b = TopologyBuilder::new();
        b.host();
        assert_eq!(b.finish().unwrap_err(), TopologyError::NoGpus);
    }
}
