//! The PCI Express interconnect of a multi-GPU machine.
//!
//! The topology is a tree with the host at the root, PCIe switches as inner
//! nodes and GPUs as leaves (Figure 3.3 of the paper). Every tree edge is a
//! full-duplex link and is therefore modelled as two directed [`LinkId`]s.
//! Peer-to-peer traffic from GPU *i* to GPU *j* climbs up-links to the lowest
//! common ancestor and then descends down-links to the destination; the set
//! of GPU pairs whose traffic crosses a given link — `dtlist(l)` in the ILP
//! formulation — is derived from the routing function.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default effective bandwidth of one PCIe link direction, in GB/s.
///
/// PCIe 2.0 x16 peaks at 8 GB/s; sustained DMA throughput on Fermi-class
/// systems is closer to 6 GB/s.
pub const DEFAULT_LINK_BANDWIDTH_GBS: f64 = 6.0;

/// Default one-hop latency of a PCIe transfer, in microseconds.
pub const DEFAULT_LINK_LATENCY_US: f64 = 8.0;

/// One endpoint of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The host CPU / system memory.
    Host,
    /// GPU with the given index (0-based).
    Gpu(usize),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host => write!(f, "host"),
            Endpoint::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// Identifier of a directed PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(usize);

impl LinkId {
    /// Zero-based index of the link.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NodeKind {
    Host,
    Switch,
    Gpu(usize),
}

/// A directed link of the PCIe tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Link {
    from: usize,
    to: usize,
    /// `true` if the link points towards the root (an "up-link").
    up: bool,
}

/// A tree-shaped PCIe interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcieTopology {
    kinds: Vec<NodeKind>,
    parent: Vec<Option<usize>>,
    links: Vec<Link>,
    /// `gpu_nodes[g]` is the tree node of GPU `g`.
    gpu_nodes: Vec<usize>,
    /// Effective per-direction bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-hop latency in microseconds.
    pub latency_us: f64,
}

impl PcieTopology {
    /// Builds the reference switch tree of Figure 3.3, truncated to
    /// `gpu_count` GPUs: host — SW1 — {SW2 — {GPU0, GPU1}, SW3 — {GPU2,
    /// GPU3}}.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or greater than four.
    pub fn switch_tree(gpu_count: usize) -> Self {
        assert!(
            (1..=4).contains(&gpu_count),
            "switch tree hosts 1 to 4 GPUs"
        );
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let sw1 = t.switch(host);
        let sw2 = t.switch(sw1);
        let mut remaining = gpu_count;
        let first_half = remaining.min(2);
        for _ in 0..first_half {
            t.gpu(sw2);
        }
        remaining -= first_half;
        if remaining > 0 {
            let sw3 = t.switch(sw1);
            for _ in 0..remaining {
                t.gpu(sw3);
            }
        }
        t.finish()
    }

    /// Builds a flat topology where every GPU hangs directly off a single
    /// root switch (a symmetric interconnect, useful for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn flat(gpu_count: usize) -> Self {
        assert!(gpu_count > 0, "at least one GPU required");
        let mut t = TopologyBuilder::new();
        let host = t.host();
        let sw = t.switch(host);
        for _ in 0..gpu_count {
            t.gpu(sw);
        }
        t.finish()
    }

    /// Number of GPUs (leaves).
    pub fn gpu_count(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all directed link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// A human-readable description of a link (for reports).
    pub fn link_description(&self, link: LinkId) -> String {
        let l = &self.links[link.0];
        format!(
            "{} -> {}",
            self.node_description(l.from),
            self.node_description(l.to)
        )
    }

    fn node_description(&self, node: usize) -> String {
        match self.kinds[node] {
            NodeKind::Host => "host".to_string(),
            NodeKind::Switch => format!("sw{node}"),
            NodeKind::Gpu(g) => format!("gpu{g}"),
        }
    }

    fn endpoint_node(&self, e: Endpoint) -> usize {
        match e {
            Endpoint::Host => 0,
            Endpoint::Gpu(g) => self.gpu_nodes[g],
        }
    }

    fn path_to_root(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while let Some(p) = self.parent[node] {
            path.push(p);
            node = p;
        }
        path
    }

    /// Returns the directed links traversed by a transfer from `from` to
    /// `to`, in traversal order (up-links to the lowest common ancestor, then
    /// down-links). Returns an empty route if source and destination
    /// coincide.
    ///
    /// # Panics
    ///
    /// Panics if a GPU index is out of range.
    pub fn route(&self, from: Endpoint, to: Endpoint) -> Vec<LinkId> {
        let src = self.endpoint_node(from);
        let dst = self.endpoint_node(to);
        if src == dst {
            return Vec::new();
        }
        let up_path = self.path_to_root(src);
        let down_path = self.path_to_root(dst);
        // Find the lowest common ancestor.
        let lca = *up_path
            .iter()
            .find(|n| down_path.contains(n))
            .expect("tree has a common root");
        let mut route = Vec::new();
        // Up-links from src to the LCA.
        for w in up_path.iter().take_while(|&&n| n != lca) {
            let parent = self.parent[*w].expect("non-root node has a parent");
            route.push(self.find_link(*w, parent));
        }
        // Down-links from the LCA to dst (collect then reverse).
        let mut down = Vec::new();
        for w in down_path.iter().take_while(|&&n| n != lca) {
            let parent = self.parent[*w].expect("non-root node has a parent");
            down.push(self.find_link(parent, *w));
        }
        down.reverse();
        route.extend(down);
        route
    }

    fn find_link(&self, from: usize, to: usize) -> LinkId {
        LinkId(
            self.links
                .iter()
                .position(|l| l.from == from && l.to == to)
                .expect("adjacent nodes are linked"),
        )
    }

    /// The `dtlist(l)` of the ILP formulation: all ordered GPU pairs `(i, j)`
    /// whose peer-to-peer traffic crosses the given directed link.
    pub fn dtlist(&self, link: LinkId) -> Vec<(usize, usize)> {
        let g = self.gpu_count();
        let mut pairs = Vec::new();
        for i in 0..g {
            for j in 0..g {
                if i == j {
                    continue;
                }
                if self
                    .route(Endpoint::Gpu(i), Endpoint::Gpu(j))
                    .contains(&link)
                {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Transfer time for `bytes` over a single link direction, in
    /// microseconds: `latency + bytes / bandwidth`.
    pub fn link_transfer_us(&self, bytes: f64) -> f64 {
        self.latency_us + bytes / (self.bandwidth_gbs * 1000.0)
    }

    /// Total time for `bytes` along a full route (store-and-forward over each
    /// hop), in microseconds.
    pub fn route_transfer_us(&self, from: Endpoint, to: Endpoint, bytes: f64) -> f64 {
        let hops = self.route(from, to).len();
        hops as f64 * self.link_transfer_us(bytes)
    }
}

struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    parent: Vec<Option<usize>>,
    gpu_nodes: Vec<usize>,
}

impl TopologyBuilder {
    fn new() -> Self {
        TopologyBuilder {
            kinds: Vec::new(),
            parent: Vec::new(),
            gpu_nodes: Vec::new(),
        }
    }

    fn host(&mut self) -> usize {
        assert!(self.kinds.is_empty(), "host must be the first node");
        self.kinds.push(NodeKind::Host);
        self.parent.push(None);
        0
    }

    fn switch(&mut self, parent: usize) -> usize {
        let id = self.kinds.len();
        self.kinds.push(NodeKind::Switch);
        self.parent.push(Some(parent));
        id
    }

    fn gpu(&mut self, parent: usize) -> usize {
        let id = self.kinds.len();
        let gpu_index = self.gpu_nodes.len();
        self.kinds.push(NodeKind::Gpu(gpu_index));
        self.parent.push(Some(parent));
        self.gpu_nodes.push(id);
        id
    }

    fn finish(self) -> PcieTopology {
        let mut links = Vec::new();
        for (node, parent) in self.parent.iter().enumerate() {
            if let Some(p) = parent {
                links.push(Link {
                    from: node,
                    to: *p,
                    up: true,
                });
                links.push(Link {
                    from: *p,
                    to: node,
                    up: false,
                });
            }
        }
        PcieTopology {
            kinds: self.kinds,
            parent: self.parent,
            links,
            gpu_nodes: self.gpu_nodes,
            bandwidth_gbs: DEFAULT_LINK_BANDWIDTH_GBS,
            latency_us: DEFAULT_LINK_LATENCY_US,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gpu_tree_matches_figure_3_3() {
        let t = PcieTopology::switch_tree(4);
        assert_eq!(t.gpu_count(), 4);
        // Nodes: host, sw1, sw2, gpu0, gpu1, sw3, gpu2, gpu3 -> 7 edges, 14
        // directed links.
        assert_eq!(t.link_count(), 14);
        // GPU0 -> GPU1 shares SW2: 2 links. GPU1 -> GPU2 crosses SW1: 4 links.
        assert_eq!(t.route(Endpoint::Gpu(0), Endpoint::Gpu(1)).len(), 2);
        assert_eq!(t.route(Endpoint::Gpu(1), Endpoint::Gpu(2)).len(), 4);
        // Host -> GPU0 goes host->sw1->sw2->gpu0: 3 links.
        assert_eq!(t.route(Endpoint::Host, Endpoint::Gpu(0)).len(), 3);
        assert!(t.route(Endpoint::Gpu(2), Endpoint::Gpu(2)).is_empty());
    }

    #[test]
    fn dtlist_matches_the_paper_example() {
        // "the link SW2 -> SW1 will be used only by the communication between
        //  these GPUs: (1,3), (1,4), (2,3), (2,4)" — with 1-based GPU ids.
        let t = PcieTopology::switch_tree(4);
        // Find the up-link whose dtlist is {(0,2),(0,3),(1,2),(1,3)} 0-based.
        let expected = vec![(0, 2), (0, 3), (1, 2), (1, 3)];
        let found = t.link_ids().any(|l| {
            let mut d = t.dtlist(l);
            d.sort_unstable();
            d == expected
        });
        assert!(found, "no link carries exactly the SW2->SW1 traffic");
    }

    #[test]
    fn dtlist_is_empty_for_leaf_links_of_other_gpus() {
        let t = PcieTopology::switch_tree(2);
        // Total pair-link incidences: each of the 2 ordered pairs uses 2
        // links.
        let total: usize = t.link_ids().map(|l| t.dtlist(l).len()).sum();
        assert_eq!(total, 2 * 2);
    }

    #[test]
    fn transfer_times_scale_with_bytes_and_hops() {
        let t = PcieTopology::switch_tree(4);
        let one_hop = t.link_transfer_us(6_000_000.0);
        assert!((one_hop - (t.latency_us + 1000.0)).abs() < 1e-9);
        let p2p_far = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(3), 6_000_000.0);
        let p2p_near = t.route_transfer_us(Endpoint::Gpu(0), Endpoint::Gpu(1), 6_000_000.0);
        assert!(p2p_far > p2p_near);
        assert!((p2p_far / p2p_near - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flat_topology_is_symmetric() {
        let t = PcieTopology::flat(3);
        assert_eq!(t.gpu_count(), 3);
        let a = t.route(Endpoint::Gpu(0), Endpoint::Gpu(1)).len();
        let b = t.route(Endpoint::Gpu(0), Endpoint::Gpu(2)).len();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "1 to 4 GPUs")]
    fn oversized_switch_tree_panics() {
        let _ = PcieTopology::switch_tree(9);
    }
}
