//! Pipelined multi-GPU execution (Figure 3.5).
//!
//! The input stream is divided into `N` fragments. For every fragment each
//! partition's kernel runs on its assigned GPU, and every partition-to-
//! partition channel that crosses GPUs becomes a DMA transfer over the PCIe
//! tree. Kernels on the same GPU execute serially in plan order; transfers
//! occupy every link on their route one hop at a time (store-and-forward);
//! different fragments overlap freely, forming the pipeline that hides
//! communication latency.
//!
//! The simulation is a deterministic discrete-event model driven by resource
//! availability times (one serial resource per GPU and per directed link).

use serde::{Deserialize, Serialize};

use crate::fault::{FaultEvent, FaultPlan};
use crate::platform::Platform;
use crate::topology::Endpoint;

/// How inter-GPU transfers are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMode {
    /// Direct peer-to-peer DMA over the PCIe tree (the paper's approach).
    PeerToPeer,
    /// Staging every inter-GPU transfer through host memory (the prior
    /// work's approach): device-to-host followed by host-to-device.
    ViaHost,
}

/// One kernel instance of the plan (one partition on one GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedKernel {
    /// Name for reports (usually the partition name).
    pub name: String,
    /// GPU executing this kernel.
    pub gpu: usize,
    /// Kernel execution time for one fragment, in microseconds.
    pub time_per_fragment_us: f64,
}

/// One data movement of the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedTransfer {
    /// Source endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Bytes moved per fragment.
    pub bytes_per_fragment: u64,
    /// Index (into [`ExecutionPlan::kernels`]) of the kernel that produces
    /// this data for a fragment; `None` for primary input available from the
    /// host immediately.
    pub after_kernel: Option<usize>,
    /// Index of the kernel that consumes this data; `None` for primary
    /// output.
    pub before_kernel: Option<usize>,
}

/// A complete pipelined execution plan.
///
/// `kernels` must be listed in an order that is topological with respect to
/// the transfers: for every transfer, `after_kernel` (when present) must come
/// before `before_kernel` (when present) in the list. Kernels assigned to the
/// same GPU execute serially in list order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// The kernels, in issue order.
    pub kernels: Vec<PlannedKernel>,
    /// The data movements.
    pub transfers: Vec<PlannedTransfer>,
    /// Number of input fragments pipelined through the plan.
    pub n_fragments: u32,
    /// Transfer routing policy.
    pub transfer_mode: TransferMode,
}

/// Aggregate results of simulating an [`ExecutionPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Completion time of the last kernel or transfer, in microseconds.
    pub makespan_us: f64,
    /// Busy time of every GPU.
    pub per_gpu_busy_us: Vec<f64>,
    /// Busy time of every directed PCIe link.
    pub per_link_busy_us: Vec<f64>,
    /// Bytes carried by every directed PCIe link.
    pub per_link_bytes: Vec<u64>,
    /// Sum of all kernel execution times.
    pub kernel_total_us: f64,
    /// Sum of all transfer hop times.
    pub transfer_total_us: f64,
    /// Number of fragments executed.
    pub n_fragments: u32,
}

/// The result of simulating a plan under a [`FaultPlan`]: the stats of
/// whatever did execute, plus what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedExec {
    /// Stats of the (possibly partial) execution. When the run was cut short
    /// the makespan and busy times cover only the work that completed.
    pub stats: ExecStats,
    /// Faults that affected the run, in injection/occurrence order.
    pub events: Vec<FaultEvent>,
    /// Fragments whose every kernel instance finished.
    pub completed_fragments: u32,
    /// The GPU whose loss stopped the run, if any (set for both device
    /// dropouts and link failures that cut a device off).
    pub lost_device: Option<usize>,
}

impl FaultedExec {
    /// `true` if every kernel instance of every fragment ran to completion.
    pub fn completed(&self) -> bool {
        self.completed_fragments == self.stats.n_fragments
    }
}

impl ExecStats {
    /// Average time per fragment (the throughput figure of merit).
    pub fn time_per_fragment_us(&self) -> f64 {
        self.makespan_us / f64::from(self.n_fragments.max(1))
    }

    /// Index of the busiest GPU.
    pub fn bottleneck_gpu(&self) -> usize {
        self.per_gpu_busy_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Simulates `plan` on `platform`.
///
/// Each input fragment is issued into its own logical stream, exactly as the
/// paper's runtime does: a kernel instance `(fragment, kernel)` becomes ready
/// as soon as all of its incoming transfers for that fragment have arrived,
/// and each GPU picks, among its ready instances, the one that can start
/// earliest. Transfers are dispatched the moment their producer finishes and
/// occupy every link of their route in store-and-forward fashion.
///
/// # Panics
///
/// Panics if a kernel references a GPU outside the platform or if a transfer
/// references a kernel outside the plan.
pub fn simulate_plan(plan: &ExecutionPlan, platform: &Platform) -> ExecStats {
    simulate_plan_traced(plan, platform, None)
}

/// [`simulate_plan`] with an optional trace collector: wraps the simulation
/// in an `execute` span and records kernel-launch / transfer counters. The
/// collector is write-only, so traced and untraced runs produce identical
/// [`ExecStats`].
pub fn simulate_plan_traced(
    plan: &ExecutionPlan,
    platform: &Platform,
    trace: Option<&std::sync::Arc<sgmap_trace::Collector>>,
) -> ExecStats {
    simulate_plan_with_faults_traced(plan, platform, &FaultPlan::none(), trace).stats
}

/// Simulates `plan` on `platform` under the given [`FaultPlan`].
///
/// With an empty plan this is exactly [`simulate_plan`]. Link degradations
/// slow the affected hops for the whole run; a device dropout or a transfer
/// over a failed link stops the simulation at the first point where no
/// healthy work remains, returning partial stats and the triggering
/// [`FaultEvent`].
pub fn simulate_plan_with_faults(
    plan: &ExecutionPlan,
    platform: &Platform,
    faults: &FaultPlan,
) -> FaultedExec {
    simulate_plan_with_faults_traced(plan, platform, faults, None)
}

/// [`simulate_plan_with_faults`] with an optional trace collector: records
/// `gpusim.fault_*` counters for injected and triggered faults on top of the
/// usual execution counters.
pub fn simulate_plan_with_faults_traced(
    plan: &ExecutionPlan,
    platform: &Platform,
    faults: &FaultPlan,
    trace: Option<&std::sync::Arc<sgmap_trace::Collector>>,
) -> FaultedExec {
    let mut span = sgmap_trace::span(trace, "execute");
    span.arg("kernels", plan.kernels.len());
    span.arg("fragments", plan.n_fragments as u64);
    sgmap_trace::add(
        trace,
        "gpusim.kernel_launches",
        plan.kernels.len() as u64 * plan.n_fragments as u64,
    );
    sgmap_trace::add(trace, "gpusim.transfers", plan.transfers.len() as u64);
    let topo = &platform.topology;
    let g = platform.gpu_count();
    let k_count = plan.kernels.len();
    for k in &plan.kernels {
        assert!(
            k.gpu < g,
            "kernel {} mapped to GPU {} of {}",
            k.name,
            k.gpu,
            g
        );
    }
    for t in &plan.transfers {
        if let Some(k) = t.after_kernel {
            assert!(k < k_count, "transfer after unknown kernel {k}");
        }
        if let Some(k) = t.before_kernel {
            assert!(k < k_count, "transfer before unknown kernel {k}");
        }
    }

    let mut events: Vec<FaultEvent> = Vec::new();
    for f in &faults.link_faults {
        assert!(
            f.link < topo.link_count(),
            "fault on unknown link {}",
            f.link
        );
        if f.bandwidth_factor > 0.0 {
            events.push(FaultEvent::LinkDegraded {
                link: f.link,
                bandwidth_factor: f.bandwidth_factor,
            });
            sgmap_trace::add(trace, "gpusim.fault_link_degraded", 1);
        }
    }
    for d in &faults.device_dropouts {
        assert!(d.gpu < g, "dropout of unknown GPU {}", d.gpu);
    }

    let fragments = plan.n_fragments as usize;
    let mut gpu_free = vec![0.0f64; g];
    let mut link_free = vec![0.0f64; topo.link_count()];
    let mut per_gpu_busy = vec![0.0f64; g];
    let mut per_link_busy = vec![0.0f64; topo.link_count()];
    let mut per_link_bytes = vec![0u64; topo.link_count()];
    let mut kernel_total = 0.0;
    let mut transfer_total = 0.0;
    let mut makespan: f64 = 0.0;

    // Incoming-transfer counts per kernel (identical for every fragment).
    let mut deps_per_kernel = vec![0usize; k_count];
    for t in &plan.transfers {
        if let Some(k) = t.before_kernel {
            deps_per_kernel[k] += 1;
        }
    }

    // Per (fragment, kernel) instance state.
    let idx = |frag: usize, k: usize| frag * k_count + k;
    let mut remaining_deps: Vec<usize> = (0..fragments * k_count)
        .map(|i| deps_per_kernel[i % k_count])
        .collect();
    let mut ready_time = vec![0.0f64; fragments * k_count];
    let mut done = vec![false; fragments * k_count];
    let mut finish_time = vec![0.0f64; fragments * k_count];

    // Dispatch a transfer whose payload becomes available at `available`.
    // Returns the arrival time, or the index of the dead link that makes the
    // transfer impossible (the topology is a tree, so there is no detour).
    let dispatch = |t: &PlannedTransfer,
                    available: f64,
                    link_free: &mut [f64],
                    per_link_busy: &mut [f64],
                    per_link_bytes: &mut [u64],
                    transfer_total: &mut f64|
     -> Result<f64, usize> {
        if t.bytes_per_fragment == 0 || t.from == t.to {
            return Ok(available);
        }
        let route: Vec<_> = match (plan.transfer_mode, t.from, t.to) {
            (TransferMode::ViaHost, Endpoint::Gpu(_), Endpoint::Gpu(_)) => {
                let mut r = topo.route(t.from, Endpoint::Host).to_vec();
                r.extend_from_slice(topo.route(Endpoint::Host, t.to));
                r
            }
            _ => topo.route(t.from, t.to).to_vec(),
        };
        let mut head = available;
        for link in route {
            let i = link.index();
            let factor = faults.link_factor(i);
            if factor <= 0.0 {
                return Err(i);
            }
            // Each hop runs at its own link's bandwidth and latency; a
            // degradation fault stretches only the bandwidth term. The
            // healthy path goes through the exact same expression as the
            // fault-free simulator so its floats are bit-identical.
            let hop_time = if factor == 1.0 {
                topo.link_transfer_us(link, t.bytes_per_fragment as f64)
            } else {
                topo.link_latency_us(link)
                    + t.bytes_per_fragment as f64 / (topo.link_bytes_per_us(link) * factor)
            };
            let start = head.max(link_free[i]);
            let end = start + hop_time;
            link_free[i] = end;
            per_link_busy[i] += hop_time;
            per_link_bytes[i] += t.bytes_per_fragment;
            *transfer_total += hop_time;
            head = end;
        }
        Ok(head)
    };

    // The GPU a transfer over a dead link cuts off (for the report).
    let cut_device = |t: &PlannedTransfer| match (t.to, t.from) {
        (Endpoint::Gpu(g), _) => Some(g),
        (_, Endpoint::Gpu(g)) => Some(g),
        _ => None,
    };

    // A transfer over a dead link, once hit, stops the simulation.
    let mut dead_link: Option<(usize, Option<usize>)> = None;

    // Primary inputs (no producer kernel) are available from the host at time
    // zero for every fragment and pipeline over the host links.
    'primary: for frag in 0..fragments {
        for t in plan.transfers.iter().filter(|t| t.after_kernel.is_none()) {
            let arrival = match dispatch(
                t,
                0.0,
                &mut link_free,
                &mut per_link_busy,
                &mut per_link_bytes,
                &mut transfer_total,
            ) {
                Ok(arrival) => arrival,
                Err(link) => {
                    dead_link = Some((link, cut_device(t)));
                    break 'primary;
                }
            };
            if let Some(k) = t.before_kernel {
                let i = idx(frag, k);
                ready_time[i] = ready_time[i].max(arrival);
                remaining_deps[i] -= 1;
            } else {
                makespan = makespan.max(arrival);
            }
        }
    }

    // List scheduling: repeatedly start the ready instance that can begin
    // earliest on its GPU. A device dropout rejects launches that would start
    // at or after the dropout time; when only such launches remain, the
    // execution is stuck and stops with a DeviceLost event.
    let total_instances = fragments * k_count;
    let mut scheduled = 0usize;
    let mut lost_device: Option<usize> = None;
    'schedule: while dead_link.is_none() && scheduled < total_instances {
        let mut best: Option<(usize, f64)> = None;
        let mut blocked_by_dropout = false;
        for i in 0..total_instances {
            if done[i] || remaining_deps[i] > 0 {
                continue;
            }
            let k = i % k_count;
            let gpu = plan.kernels[k].gpu;
            let start = ready_time[i].max(gpu_free[gpu]);
            if let Some(at) = faults.dropout_at(gpu) {
                if start >= at {
                    blocked_by_dropout = true;
                    continue;
                }
            }
            match best {
                None => best = Some((i, start)),
                Some((_, s)) if start < s - 1e-12 => best = Some((i, start)),
                _ => {}
            }
        }
        let Some((i, start)) = best else {
            // Nothing healthy can run. For a DAG plan this only happens when
            // a dropout blocks every remaining chain.
            assert!(
                blocked_by_dropout,
                "a ready kernel instance always exists for a DAG plan"
            );
            let d = faults
                .device_dropouts
                .iter()
                .min_by(|a, b| a.at_us.total_cmp(&b.at_us))
                .expect("a dropout blocked the schedule");
            events.push(FaultEvent::DeviceLost {
                gpu: d.gpu,
                at_us: d.at_us,
            });
            sgmap_trace::add(trace, "gpusim.fault_device_lost", 1);
            lost_device = Some(d.gpu);
            break 'schedule;
        };
        let frag = i / k_count;
        let k = i % k_count;
        let kernel = &plan.kernels[k];
        let end = start + kernel.time_per_fragment_us;
        done[i] = true;
        finish_time[i] = end;
        gpu_free[kernel.gpu] = end;
        per_gpu_busy[kernel.gpu] += kernel.time_per_fragment_us;
        kernel_total += kernel.time_per_fragment_us;
        makespan = makespan.max(end);
        scheduled += 1;

        // Dispatch the outgoing transfers of this instance.
        for t in plan.transfers.iter().filter(|t| t.after_kernel == Some(k)) {
            let arrival = match dispatch(
                t,
                end,
                &mut link_free,
                &mut per_link_busy,
                &mut per_link_bytes,
                &mut transfer_total,
            ) {
                Ok(arrival) => arrival,
                Err(link) => {
                    dead_link = Some((link, cut_device(t)));
                    break 'schedule;
                }
            };
            match t.before_kernel {
                Some(consumer) => {
                    let ci = idx(frag, consumer);
                    ready_time[ci] = ready_time[ci].max(arrival);
                    remaining_deps[ci] -= 1;
                }
                None => makespan = makespan.max(arrival),
            }
        }
    }

    if let Some((link, cut)) = dead_link {
        events.push(FaultEvent::LinkFailed { link });
        sgmap_trace::add(trace, "gpusim.fault_link_failed", 1);
        lost_device = lost_device.or(cut);
    }

    let completed_fragments = if k_count == 0 {
        plan.n_fragments
    } else {
        (0..fragments)
            .filter(|&frag| (0..k_count).all(|k| done[idx(frag, k)]))
            .count() as u32
    };

    FaultedExec {
        stats: ExecStats {
            makespan_us: makespan,
            per_gpu_busy_us: per_gpu_busy,
            per_link_busy_us: per_link_busy,
            per_link_bytes,
            kernel_total_us: kernel_total,
            transfer_total_us: transfer_total,
            n_fragments: plan.n_fragments,
        },
        events,
        completed_fragments,
        lost_device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn kernel(name: &str, gpu: usize, time: f64) -> PlannedKernel {
        PlannedKernel {
            name: name.to_string(),
            gpu,
            time_per_fragment_us: time,
        }
    }

    #[test]
    fn single_gpu_serial_execution_sums_kernel_times() {
        let plan = ExecutionPlan {
            kernels: vec![kernel("a", 0, 10.0), kernel("b", 0, 5.0)],
            transfers: vec![],
            n_fragments: 4,
            transfer_mode: TransferMode::PeerToPeer,
        };
        let stats = simulate_plan(&plan, &Platform::single_m2090());
        assert!((stats.makespan_us - 4.0 * 15.0).abs() < 1e-9);
        assert!((stats.per_gpu_busy_us[0] - 60.0).abs() < 1e-9);
        assert_eq!(stats.bottleneck_gpu(), 0);
        assert!((stats.time_per_fragment_us() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn two_gpus_pipeline_overlaps_fragments() {
        // Two equal kernels on two GPUs connected by a transfer: after the
        // pipeline fills, throughput is one fragment per kernel time, not per
        // two kernel times.
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let n = 32;
        let plan = ExecutionPlan {
            kernels: vec![kernel("p1", 0, 100.0), kernel("p2", 1, 100.0)],
            transfers: vec![PlannedTransfer {
                from: Endpoint::Gpu(0),
                to: Endpoint::Gpu(1),
                bytes_per_fragment: 1024,
                after_kernel: Some(0),
                before_kernel: Some(1),
            }],
            n_fragments: n,
            transfer_mode: TransferMode::PeerToPeer,
        };
        let stats = simulate_plan(&plan, &platform);
        let serial_estimate = f64::from(n) * 200.0;
        assert!(
            stats.makespan_us < serial_estimate * 0.65,
            "pipelining should hide most of the second stage: {} vs {}",
            stats.makespan_us,
            serial_estimate
        );
        // Each GPU did N kernels worth of work.
        assert!((stats.per_gpu_busy_us[0] - f64::from(n) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn via_host_transfers_use_more_links_than_p2p() {
        let platform = Platform::quad_m2090();
        let mk_plan = |mode| ExecutionPlan {
            kernels: vec![kernel("p1", 0, 10.0), kernel("p2", 1, 10.0)],
            transfers: vec![PlannedTransfer {
                from: Endpoint::Gpu(0),
                to: Endpoint::Gpu(1),
                bytes_per_fragment: 1 << 20,
                after_kernel: Some(0),
                before_kernel: Some(1),
            }],
            n_fragments: 4,
            transfer_mode: mode,
        };
        let p2p = simulate_plan(&mk_plan(TransferMode::PeerToPeer), &platform);
        let host = simulate_plan(&mk_plan(TransferMode::ViaHost), &platform);
        assert!(host.transfer_total_us > p2p.transfer_total_us);
        assert!(host.makespan_us > p2p.makespan_us);
    }

    #[test]
    fn communication_bound_plans_are_limited_by_the_link() {
        // A tiny kernel feeding a huge transfer: the link, not the GPU, paces
        // the pipeline.
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let plan = ExecutionPlan {
            kernels: vec![kernel("p1", 0, 1.0), kernel("p2", 1, 1.0)],
            transfers: vec![PlannedTransfer {
                from: Endpoint::Gpu(0),
                to: Endpoint::Gpu(1),
                bytes_per_fragment: 12_000_000, // 2 ms per hop at 6 GB/s
                after_kernel: Some(0),
                before_kernel: Some(1),
            }],
            n_fragments: 8,
            transfer_mode: TransferMode::PeerToPeer,
        };
        let stats = simulate_plan(&plan, &platform);
        // Per fragment the bottleneck hop costs ~2000 us; 8 fragments must
        // serialise on that link.
        assert!(stats.time_per_fragment_us() > 1500.0);
        let busiest_link = stats
            .per_link_busy_us
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(busiest_link > stats.per_gpu_busy_us[0]);
    }

    #[test]
    fn primary_output_transfers_extend_the_makespan() {
        let platform = Platform::single_m2090();
        let plan = ExecutionPlan {
            kernels: vec![kernel("only", 0, 10.0)],
            transfers: vec![PlannedTransfer {
                from: Endpoint::Gpu(0),
                to: Endpoint::Host,
                bytes_per_fragment: 6_000_000, // 1 ms + latency per hop
                after_kernel: Some(0),
                before_kernel: None,
            }],
            n_fragments: 1,
            transfer_mode: TransferMode::PeerToPeer,
        };
        let stats = simulate_plan(&plan, &platform);
        assert!(stats.makespan_us > 10.0 + 1000.0);
    }

    #[test]
    #[should_panic(expected = "mapped to GPU")]
    fn kernels_on_missing_gpus_panic() {
        let plan = ExecutionPlan {
            kernels: vec![kernel("bad", 3, 1.0)],
            transfers: vec![],
            n_fragments: 1,
            transfer_mode: TransferMode::PeerToPeer,
        };
        let _ = simulate_plan(&plan, &Platform::single_m2090());
    }

    /// Two kernels on two GPUs joined by one transfer — the shared fixture
    /// for the fault tests.
    fn two_stage_plan(n: u32) -> (ExecutionPlan, Platform) {
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let plan = ExecutionPlan {
            kernels: vec![kernel("p1", 0, 100.0), kernel("p2", 1, 100.0)],
            transfers: vec![PlannedTransfer {
                from: Endpoint::Gpu(0),
                to: Endpoint::Gpu(1),
                bytes_per_fragment: 1 << 20,
                after_kernel: Some(0),
                before_kernel: Some(1),
            }],
            n_fragments: n,
            transfer_mode: TransferMode::PeerToPeer,
        };
        (plan, platform)
    }

    #[test]
    fn empty_fault_plan_reproduces_the_healthy_simulation_exactly() {
        let (plan, platform) = two_stage_plan(16);
        let healthy = simulate_plan(&plan, &platform);
        let faulted = simulate_plan_with_faults(&plan, &platform, &FaultPlan::none());
        assert_eq!(faulted.stats, healthy);
        assert!(faulted.completed());
        assert!(faulted.events.is_empty());
        assert_eq!(faulted.lost_device, None);
        assert_eq!(faulted.completed_fragments, 16);
    }

    #[test]
    fn device_dropout_stops_the_run_with_a_device_lost_event() {
        let (plan, platform) = two_stage_plan(16);
        let healthy = simulate_plan(&plan, &platform);
        let faults = FaultPlan::none().with_device_dropout(1, healthy.makespan_us * 0.4);
        let faulted = simulate_plan_with_faults(&plan, &platform, &faults);
        assert!(!faulted.completed());
        assert_eq!(faulted.lost_device, Some(1));
        assert!(faulted.completed_fragments < 16);
        assert!(matches!(
            faulted.events.as_slice(),
            [FaultEvent::DeviceLost { gpu: 1, .. }]
        ));
        // Whatever did run finished before the healthy makespan... plus the
        // producer side, which keeps running until its own chain stalls.
        assert!(faulted.stats.per_gpu_busy_us[1] < healthy.per_gpu_busy_us[1]);
    }

    #[test]
    fn dropout_after_the_makespan_changes_nothing() {
        let (plan, platform) = two_stage_plan(8);
        let healthy = simulate_plan(&plan, &platform);
        let faults = FaultPlan::none().with_device_dropout(1, healthy.makespan_us + 1.0);
        let faulted = simulate_plan_with_faults(&plan, &platform, &faults);
        assert!(faulted.completed());
        assert_eq!(faulted.stats, healthy);
    }

    #[test]
    fn link_degradation_slows_the_run_but_completes_it() {
        let (plan, platform) = two_stage_plan(16);
        let healthy = simulate_plan(&plan, &platform);
        // Degrade every link so the transfer route is hit no matter which
        // direction it uses.
        let mut faults = FaultPlan::none();
        for l in platform.topology.link_ids() {
            faults = faults.with_link_degradation(l.index(), 0.25);
        }
        let faulted = simulate_plan_with_faults(&plan, &platform, &faults);
        assert!(faulted.completed());
        assert_eq!(faulted.lost_device, None);
        assert!(
            faulted.stats.transfer_total_us > healthy.transfer_total_us * 2.0,
            "quartered bandwidth should much more than double transfer time"
        );
        assert!(faulted.stats.makespan_us > healthy.makespan_us);
        assert!(faulted
            .events
            .iter()
            .all(|e| matches!(e, FaultEvent::LinkDegraded { .. })));
        assert_eq!(faulted.events.len(), platform.topology.link_count());
    }

    #[test]
    fn link_failure_on_the_route_stops_the_run() {
        let (plan, platform) = two_stage_plan(8);
        let route = platform.topology.route(Endpoint::Gpu(0), Endpoint::Gpu(1));
        let dead = route[0].index();
        let faults = FaultPlan::none().with_link_failure(dead);
        let faulted = simulate_plan_with_faults(&plan, &platform, &faults);
        assert!(!faulted.completed());
        assert!(faulted
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::LinkFailed { link } if *link == dead)));
        assert!(faulted.lost_device.is_some());
    }

    #[test]
    fn failure_off_the_route_is_harmless() {
        let (plan, platform) = two_stage_plan(8);
        let healthy = simulate_plan(&plan, &platform);
        let used: Vec<usize> = platform
            .topology
            .route(Endpoint::Gpu(0), Endpoint::Gpu(1))
            .iter()
            .map(|l| l.index())
            .collect();
        let unused = platform
            .topology
            .link_ids()
            .map(|l| l.index())
            .find(|i| !used.contains(i))
            .expect("the quad tree has links off this route");
        let faults = FaultPlan::none().with_link_failure(unused);
        let faulted = simulate_plan_with_faults(&plan, &platform, &faults);
        assert!(faulted.completed());
        assert_eq!(faulted.stats, healthy);
    }
}
