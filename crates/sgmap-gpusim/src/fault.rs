//! Deterministic fault injection for the pipeline simulator.
//!
//! A [`FaultPlan`] describes what goes wrong during a simulated execution:
//! a device dropping out at a simulated time, a link running at a fraction of
//! its calibrated bandwidth, or a link failing outright. The plan is plain
//! data — building one (by hand or from a seed via [`FaultPlan::seeded`]) has
//! no side effects, and injecting the same plan into the same
//! [`ExecutionPlan`](crate::ExecutionPlan) always produces the same
//! [`FaultedExec`](crate::FaultedExec), so faulted runs are as reproducible
//! as healthy ones.
//!
//! Semantics, chosen to be simple and deterministic:
//!
//! * **Device dropout at `t`** — kernel launches that would *start* at or
//!   after `t` on the lost device are rejected; in-flight work started
//!   before `t` completes. Once nothing else can make progress the
//!   simulation stops with a [`FaultEvent::DeviceLost`] and partial stats.
//! * **Link degradation** — the link's bandwidth is scaled by the factor for
//!   the whole run; the execution completes with degraded throughput and a
//!   [`FaultEvent::LinkDegraded`] on record.
//! * **Link failure** — the topology is a tree, so a transfer whose route
//!   crosses the dead link has no detour (the via-host route reuses the same
//!   edges); the first such transfer stops the simulation with a
//!   [`FaultEvent::LinkFailed`].

use serde::{Deserialize, Serialize};

use crate::platform::Platform;

/// A device dropping out of the platform at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceDropout {
    /// Index of the lost GPU.
    pub gpu: usize,
    /// Simulated time (microseconds) from which launches are rejected.
    pub at_us: f64,
}

/// A directed link running below its calibrated bandwidth, or not at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Index of the directed link (see [`crate::Topology::link_ids`]).
    pub link: usize,
    /// Multiplier on the link's bandwidth: `0 < factor < 1` degrades it,
    /// `0.0` means the link is dead.
    pub bandwidth_factor: f64,
}

/// A deterministic, seedable description of what goes wrong during one
/// simulated execution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Devices that drop out, at most one entry per GPU.
    pub device_dropouts: Vec<DeviceDropout>,
    /// Degraded or failed links, at most one entry per link.
    pub link_faults: Vec<LinkFault>,
}

impl FaultPlan {
    /// A plan with no faults (simulating with it is identical to the healthy
    /// simulator).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.device_dropouts.is_empty() && self.link_faults.is_empty()
    }

    /// Adds a device dropout at the given simulated time.
    pub fn with_device_dropout(mut self, gpu: usize, at_us: f64) -> Self {
        self.device_dropouts.retain(|d| d.gpu != gpu);
        self.device_dropouts.push(DeviceDropout { gpu, at_us });
        self
    }

    /// Adds a bandwidth degradation on one directed link.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not in `(0, 1]`.
    pub fn with_link_degradation(mut self, link: usize, bandwidth_factor: f64) -> Self {
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "degradation factor must be in (0, 1], got {bandwidth_factor}"
        );
        self.link_faults.retain(|f| f.link != link);
        self.link_faults.push(LinkFault {
            link,
            bandwidth_factor,
        });
        self
    }

    /// Marks one directed link as failed.
    pub fn with_link_failure(mut self, link: usize) -> Self {
        self.link_faults.retain(|f| f.link != link);
        self.link_faults.push(LinkFault {
            link,
            bandwidth_factor: 0.0,
        });
        self
    }

    /// Generates a single-fault plan from a seed: a device dropout somewhere
    /// in `(0, horizon_us)`, a link degradation to 50–95% bandwidth, or a
    /// link failure, each chosen deterministically from the seed and the
    /// platform shape. The same `(seed, platform, horizon)` always yields the
    /// same plan.
    pub fn seeded(seed: u64, platform: &Platform, horizon_us: f64) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            // xorshift64* — small, deterministic, good enough for picking
            // fault sites.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let links = platform.topology.link_count();
        match next() % 3 {
            0 => {
                let gpu = (next() as usize) % platform.gpu_count();
                // Between 10% and 90% of the horizon.
                let frac = 0.1 + 0.8 * ((next() % 1000) as f64 / 1000.0);
                FaultPlan::none().with_device_dropout(gpu, horizon_us * frac)
            }
            1 if links > 0 => {
                let link = (next() as usize) % links;
                let factor = 0.5 + 0.45 * ((next() % 1000) as f64 / 1000.0);
                FaultPlan::none().with_link_degradation(link, factor)
            }
            _ if links > 0 => {
                let link = (next() as usize) % links;
                FaultPlan::none().with_link_failure(link)
            }
            _ => FaultPlan::none(),
        }
    }

    /// The dropout time of a GPU, if it drops out.
    pub fn dropout_at(&self, gpu: usize) -> Option<f64> {
        self.device_dropouts
            .iter()
            .find(|d| d.gpu == gpu)
            .map(|d| d.at_us)
    }

    /// The bandwidth factor of a link: `1.0` when healthy, `0.0` when dead.
    pub fn link_factor(&self, link: usize) -> f64 {
        self.link_faults
            .iter()
            .find(|f| f.link == link)
            .map_or(1.0, |f| f.bandwidth_factor)
    }
}

/// Something that went wrong during a faulted simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A device stopped accepting launches; the execution could not finish.
    DeviceLost {
        /// Index of the lost GPU.
        gpu: usize,
        /// Simulated time the device dropped out.
        at_us: f64,
    },
    /// A link ran at reduced bandwidth for the whole execution.
    LinkDegraded {
        /// Index of the degraded directed link.
        link: usize,
        /// The bandwidth multiplier that was applied.
        bandwidth_factor: f64,
    },
    /// A transfer needed a dead link and the tree offers no detour.
    LinkFailed {
        /// Index of the failed directed link.
        link: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_single_fault() {
        let platform = Platform::quad_m2090();
        for seed in 0..32 {
            let a = FaultPlan::seeded(seed, &platform, 10_000.0);
            let b = FaultPlan::seeded(seed, &platform, 10_000.0);
            assert_eq!(a, b);
            assert_eq!(a.device_dropouts.len() + a.link_faults.len(), 1);
            for d in &a.device_dropouts {
                assert!(d.gpu < platform.gpu_count());
                assert!(d.at_us > 0.0 && d.at_us < 10_000.0);
            }
            for f in &a.link_faults {
                assert!(f.link < platform.topology.link_count());
                assert!((0.0..=1.0).contains(&f.bandwidth_factor));
            }
        }
        // Different seeds eventually pick different fault kinds.
        let kinds: std::collections::HashSet<bool> = (0..32)
            .map(|s| {
                FaultPlan::seeded(s, &platform, 10_000.0)
                    .device_dropouts
                    .is_empty()
            })
            .collect();
        assert_eq!(kinds.len(), 2, "seeds should cover both fault kinds");
    }

    #[test]
    fn builders_replace_existing_entries() {
        let plan = FaultPlan::none()
            .with_link_degradation(3, 0.5)
            .with_link_failure(3)
            .with_device_dropout(1, 100.0)
            .with_device_dropout(1, 200.0);
        assert_eq!(plan.link_faults.len(), 1);
        assert_eq!(plan.link_factor(3), 0.0);
        assert_eq!(plan.link_factor(0), 1.0);
        assert_eq!(plan.dropout_at(1), Some(200.0));
        assert_eq!(plan.dropout_at(0), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
