//! Kernel descriptions: what the code generator hands to the GPU (simulator).
//!
//! A kernel implements one partition of the stream graph in the
//! one-kernel-for-graph style of Figure 2.1(c): `W` executions of the
//! partition's steady state run concurrently, each using `S` compute threads,
//! while `F` dedicated data-transfer threads stream the primary IO between
//! global memory and the double-buffered shared-memory staging area.

use serde::{Deserialize, Serialize};

/// The tunable launch parameters of a kernel (Section 3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelParams {
    /// `W`: number of executions (steady-state iterations) per kernel launch
    /// that run concurrently in the SM.
    pub w: u32,
    /// `S`: compute threads per execution.
    pub s: u32,
    /// `F`: data-transfer threads.
    pub f: u32,
}

impl KernelParams {
    /// Total number of threads the kernel occupies (`W·S + F`).
    pub fn total_threads(&self) -> u32 {
        self.w * self.s + self.f
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams { w: 1, s: 1, f: 32 }
    }
}

/// One filter of a kernel, reduced to what the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelFilter {
    /// Single-thread time of one firing, in microseconds (from profiling).
    pub firing_time_us: f64,
    /// Firings per execution of the partition (the filter's repetition count
    /// within the partition's steady state).
    pub firings: u64,
}

impl KernelFilter {
    /// Total single-thread compute time of this filter per execution
    /// (`t_i` in the paper's model).
    pub fn iteration_time_us(&self) -> f64 {
        self.firing_time_us * self.firings as f64
    }
}

/// A complete kernel description for the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Name (usually derived from the partition id).
    pub name: String,
    /// The filters executed by the compute threads.
    pub filters: Vec<KernelFilter>,
    /// Primary IO bytes moved between global and shared memory per execution
    /// (`D / W` in the paper's notation).
    pub io_bytes_per_exec: u64,
    /// Shared-memory bytes needed by one execution (working set + IO
    /// staging).
    pub sm_bytes_per_exec: u64,
    /// Launch parameters.
    pub params: KernelParams,
}

impl KernelSpec {
    /// Sum of the filters' single-thread times per execution, in
    /// microseconds.
    pub fn serial_compute_time_us(&self) -> f64 {
        self.filters
            .iter()
            .map(KernelFilter::iteration_time_us)
            .sum()
    }

    /// Total IO bytes per kernel launch (`D = W * io_bytes_per_exec`).
    pub fn total_io_bytes(&self) -> u64 {
        u64::from(self.params.w) * self.io_bytes_per_exec
    }

    /// Shared-memory bytes consumed by the whole kernel (all executions plus
    /// the double buffer).
    pub fn total_shared_mem_bytes(&self) -> u64 {
        u64::from(self.params.w) * self.sm_bytes_per_exec + self.io_bytes_per_exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelSpec {
        KernelSpec {
            name: "p0".to_string(),
            filters: vec![
                KernelFilter {
                    firing_time_us: 2.0,
                    firings: 4,
                },
                KernelFilter {
                    firing_time_us: 1.0,
                    firings: 1,
                },
            ],
            io_bytes_per_exec: 256,
            sm_bytes_per_exec: 1024,
            params: KernelParams { w: 3, s: 2, f: 64 },
        }
    }

    #[test]
    fn aggregate_quantities() {
        let k = sample();
        assert_eq!(k.serial_compute_time_us(), 9.0);
        assert_eq!(k.total_io_bytes(), 768);
        assert_eq!(k.total_shared_mem_bytes(), 3 * 1024 + 256);
        assert_eq!(k.params.total_threads(), 3 * 2 + 64);
    }

    #[test]
    fn default_params_are_minimal() {
        let p = KernelParams::default();
        assert_eq!((p.w, p.s, p.f), (1, 1, 32));
    }
}
