//! GPU device specifications.

use serde::{Deserialize, Serialize};

/// Specification of a single GPU device.
///
/// The presets correspond to the two Fermi-class devices discussed in the
/// paper: the Tesla C2070 used by the prior work [7] and the Tesla M2090 used
/// by the paper's own evaluation. The M2090 is "a scaled-up version of the
/// C2070 with the exactly same architecture" — more streaming multiprocessors
/// and higher core/memory clocks — which Section 4.0.5 quantifies as a
/// 23–29 % performance difference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core (shader) clock in GHz.
    pub core_clock_ghz: f64,
    /// Memory clock in GHz (only used for reporting; bandwidth is modelled
    /// directly).
    pub mem_clock_ghz: f64,
    /// Global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Shared memory (on-chip scratchpad) per SM in bytes.
    pub shared_mem_bytes: u32,
    /// Maximum resident threads per block.
    pub max_threads_per_block: u32,
    /// Warp size.
    pub warp_size: u32,
    /// Average cycles to access global memory from a thread (amortised over
    /// the memory pipeline).
    pub global_access_cycles: f64,
    /// Average cycles to move one 4-byte word between shared memory and a
    /// register.
    pub shared_access_cycles: f64,
}

impl GpuSpec {
    /// The Nvidia Tesla C2070 (Fermi, 14 SMs, 1.15 GHz) used by the prior
    /// work.
    pub fn c2070() -> Self {
        GpuSpec {
            name: "Tesla C2070".to_string(),
            sm_count: 14,
            core_clock_ghz: 1.15,
            mem_clock_ghz: 1.494,
            mem_bandwidth_gbs: 144.0,
            shared_mem_bytes: 48 * 1024,
            max_threads_per_block: 1024,
            warp_size: 32,
            global_access_cycles: 400.0,
            shared_access_cycles: 2.0,
        }
    }

    /// The Nvidia Tesla M2090 (Fermi, 16 SMs, 1.3 GHz) used by the paper's
    /// evaluation.
    pub fn m2090() -> Self {
        GpuSpec {
            name: "Tesla M2090".to_string(),
            sm_count: 16,
            core_clock_ghz: 1.3,
            mem_clock_ghz: 1.848,
            mem_bandwidth_gbs: 177.0,
            shared_mem_bytes: 48 * 1024,
            max_threads_per_block: 1024,
            warp_size: 32,
            global_access_cycles: 400.0,
            shared_access_cycles: 2.0,
        }
    }

    /// Converts a cycle count on this device into microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_ghz * 1000.0)
    }

    /// Microseconds needed to stream `bytes` through global memory at the
    /// device's peak bandwidth.
    pub fn global_stream_us(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bandwidth_gbs * 1000.0)
    }

    /// Peak single-precision throughput proxy: SM count × clock. Used to
    /// compare scaled devices (e.g. the 23–29 % C2070 → M2090 step).
    pub fn compute_throughput_proxy(&self) -> f64 {
        f64::from(self.sm_count) * self.core_clock_ghz
    }

    /// A copy of this device with its compute clock scaled by `factor` and
    /// `suffix` appended to the name. Robustness sweeps turn this knob to
    /// model calibration drift in the throughput estimate; the new name keeps
    /// perturbed devices distinct in compile-dedup keys (estimates produced
    /// for the perturbed device are not interchangeable with the original's).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn with_throughput_factor(&self, factor: f64, suffix: &str) -> GpuSpec {
        assert!(factor > 0.0, "throughput factor must be positive: {factor}");
        let mut spec = self.clone();
        spec.core_clock_ghz *= factor;
        spec.name = format!("{} {}", self.name, suffix);
        spec
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::m2090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_scaling() {
        let c = GpuSpec::c2070();
        let m = GpuSpec::m2090();
        assert_eq!(c.shared_mem_bytes, m.shared_mem_bytes);
        let compute_ratio = m.compute_throughput_proxy() / c.compute_throughput_proxy();
        let mem_ratio = m.mem_bandwidth_gbs / c.mem_bandwidth_gbs;
        // The paper quotes 29 % compute and 23 % memory-bandwidth differences.
        assert!((compute_ratio - 1.29).abs() < 0.03, "{compute_ratio}");
        assert!((mem_ratio - 1.23).abs() < 0.03, "{mem_ratio}");
    }

    #[test]
    fn unit_conversions() {
        let m = GpuSpec::m2090();
        // 1300 cycles at 1.3 GHz is one microsecond.
        assert!((m.cycles_to_us(1300.0) - 1.0).abs() < 1e-9);
        // 177 KB at 177 GB/s is one microsecond.
        assert!((m.global_stream_us(177_000.0) - 1.0).abs() < 1e-9);
    }
}
