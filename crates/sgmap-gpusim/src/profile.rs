//! Per-filter profiling (Section 3.3.1).
//!
//! The paper annotates every node of the stream graph with its GPU execution
//! time `t_i`, obtained by converting the filter into a kernel with data
//! prefetching suppressed and running it with a *single* GPU thread, so that
//! the number measures the filter's computation alone. This module performs
//! the equivalent measurement against the simulated device model: the
//! filter's abstract work estimate and its token traffic are converted into
//! cycles on the target [`GpuSpec`].

use sgmap_graph::{FilterId, RepetitionVector, StreamGraph};

use crate::device::GpuSpec;

/// Cycles charged per abstract work unit (arithmetic op) of a filter when it
/// runs on a single thread: issue, operand fetch and the op itself.
pub const CYCLES_PER_WORK_UNIT: f64 = 4.0;

/// Fixed per-firing overhead cycles (index arithmetic, loop control).
pub const FIRING_OVERHEAD_CYCLES: f64 = 12.0;

/// Per-filter profiling result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterProfile {
    /// Single-thread execution time of one firing, in microseconds.
    pub time_per_firing_us: f64,
}

/// Profiled execution times for every filter of a stream graph on a given
/// device.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTable {
    device: String,
    times_us: Vec<f64>,
}

impl ProfileTable {
    /// Single-thread time of one firing of `id`, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the profiled graph.
    pub fn time_per_firing_us(&self, id: FilterId) -> f64 {
        self.times_us[id.index()]
    }

    /// Time for all firings of `id` in one steady-state iteration (the `t_i`
    /// of the paper's performance model), in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the profiled graph.
    pub fn iteration_time_us(&self, id: FilterId, reps: &RepetitionVector) -> f64 {
        self.times_us[id.index()] * reps[id.index()] as f64
    }

    /// Name of the device the profile was taken on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Number of profiled filters.
    pub fn len(&self) -> usize {
        self.times_us.len()
    }

    /// Returns `true` if no filter was profiled.
    pub fn is_empty(&self) -> bool {
        self.times_us.is_empty()
    }
}

/// Profiles every filter of `graph` on `gpu` by simulating a single-thread
/// execution of one firing.
pub fn profile_graph(graph: &StreamGraph, gpu: &GpuSpec) -> ProfileTable {
    let times_us = graph
        .filters()
        .map(|(_, f)| {
            let compute_cycles = f.work * CYCLES_PER_WORK_UNIT;
            // Tokens touched in shared memory per firing: inputs read
            // (including the peek window) and outputs written.
            let tokens = f64::from(f.peek.max(f.pop)) + f64::from(f.push);
            let sm_cycles = tokens * gpu.shared_access_cycles;
            gpu.cycles_to_us(compute_cycles + sm_cycles + FIRING_OVERHEAD_CYCLES)
        })
        .collect();
    ProfileTable {
        device: gpu.name.clone(),
        times_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::{Filter, StreamGraph};

    fn two_filter_graph() -> StreamGraph {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("light", 0, 1, 10.0));
        let b = g.add_filter(Filter::new("heavy", 1, 0, 1000.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g
    }

    #[test]
    fn heavier_filters_take_longer() {
        let g = two_filter_graph();
        let p = profile_graph(&g, &GpuSpec::m2090());
        let light = g.filter_by_name("light").unwrap();
        let heavy = g.filter_by_name("heavy").unwrap();
        assert!(p.time_per_firing_us(heavy) > p.time_per_firing_us(light) * 10.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.device(), "Tesla M2090");
    }

    #[test]
    fn faster_device_yields_smaller_times() {
        let g = two_filter_graph();
        let fast = profile_graph(&g, &GpuSpec::m2090());
        let slow = profile_graph(&g, &GpuSpec::c2070());
        let heavy = g.filter_by_name("heavy").unwrap();
        assert!(fast.time_per_firing_us(heavy) < slow.time_per_firing_us(heavy));
        // The ratio matches the clock ratio (compute-only filter).
        let ratio = slow.time_per_firing_us(heavy) / fast.time_per_firing_us(heavy);
        assert!((ratio - 1.3 / 1.15).abs() < 1e-6);
    }

    #[test]
    fn iteration_time_scales_with_firings() {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("src", 0, 4, 10.0));
        let b = g.add_filter(Filter::new("worker", 1, 1, 50.0));
        let c = g.add_filter(Filter::new("sink", 4, 0, 1.0));
        g.add_channel(a, b, 4, 1).unwrap();
        g.add_channel(b, c, 1, 4).unwrap();
        let reps = g.repetition_vector().unwrap();
        assert_eq!(reps[b.index()], 4);
        let p = profile_graph(&g, &GpuSpec::m2090());
        assert!((p.iteration_time_us(b, &reps) - 4.0 * p.time_per_firing_us(b)).abs() < 1e-12);
    }
}
