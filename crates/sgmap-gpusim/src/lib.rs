//! Multi-GPU platform substrate for the `sgmap` mapping flow.
//!
//! The paper evaluates its mapping technique on a Xeon workstation with four
//! Nvidia M2090 GPUs. This crate replaces that hardware with a simulator that
//! reproduces the *timing mechanisms* the mapping algorithms care about:
//!
//! * [`GpuSpec`] / [`Platform`] — device models (C2070 and M2090 presets) and
//!   multi-GPU platforms with one spec per leaf (mixed-model boxes included),
//! * [`PlatformSpec`] — the declarative, named platform description that
//!   configs and sweep grids carry ([`PlatformSpec::build`] produces the
//!   concrete [`Platform`]),
//! * [`Topology`] — the interconnect tree with per-link bandwidth, latency
//!   and [`LinkClass`] (NVLink / PCIe / network), preset shapes from the
//!   paper's Figure 3.3 switch tree to NVLink-island boxes and two-node
//!   clusters, plus routing and the `dtlist(l)` rule used by the ILP
//!   formulation (both precomputed at build time),
//! * [`sm_layout`] — shared-memory requirement of a partition via a
//!   buffer-lifetime scan (Figure 3.2), including the splitter/joiner
//!   elimination variant of Chapter V,
//! * [`profile`] — per-filter execution times obtained by "running" each
//!   filter with a single thread (Section 3.3.1),
//! * [`KernelSpec`] and [`simulate_kernel`] — cycle-approximate execution of
//!   a one-kernel-per-partition CUDA kernel with compute warps, data-transfer
//!   warps, double buffering and shared-memory bank conflicts,
//! * [`ExecutionPlan`] / [`simulate_plan`] — a discrete-event simulation of
//!   pipelined multi-GPU execution over N input fragments (Figure 3.5).
//!
//! Times are microseconds, sizes are bytes throughout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod fault;
mod kernel;
mod kernel_sim;
mod pipeline;
mod platform;
pub mod profile;
pub mod sm_layout;
mod topology;

pub use device::GpuSpec;
pub use fault::{DeviceDropout, FaultEvent, FaultPlan, LinkFault};
pub use kernel::{KernelFilter, KernelParams, KernelSpec};
pub use kernel_sim::{simulate_kernel, KernelMeasurement};
pub use pipeline::{
    simulate_plan, simulate_plan_traced, simulate_plan_with_faults,
    simulate_plan_with_faults_traced, ExecStats, ExecutionPlan, FaultedExec, PlannedKernel,
    PlannedTransfer, TransferMode,
};
pub use platform::{InterconnectSpec, Platform, PlatformSpec};
pub use topology::{
    Endpoint, LinkClass, LinkId, PcieTopology, Topology, TopologyBuilder, TopologyError,
    DEFAULT_LINK_BANDWIDTH_GBS, DEFAULT_LINK_LATENCY_US,
};
