//! Multi-GPU platform substrate for the `sgmap` mapping flow.
//!
//! The paper evaluates its mapping technique on a Xeon workstation with four
//! Nvidia M2090 GPUs. This crate replaces that hardware with a simulator that
//! reproduces the *timing mechanisms* the mapping algorithms care about:
//!
//! * [`GpuSpec`] / [`Platform`] — device models (C2070 and M2090 presets) and
//!   multi-GPU platforms,
//! * [`PcieTopology`] — the PCIe switch tree of Figure 3.3, with routing and
//!   the `dtlist(l)` rule used by the ILP formulation,
//! * [`sm_layout`] — shared-memory requirement of a partition via a
//!   buffer-lifetime scan (Figure 3.2), including the splitter/joiner
//!   elimination variant of Chapter V,
//! * [`profile`] — per-filter execution times obtained by "running" each
//!   filter with a single thread (Section 3.3.1),
//! * [`KernelSpec`] and [`simulate_kernel`] — cycle-approximate execution of
//!   a one-kernel-per-partition CUDA kernel with compute warps, data-transfer
//!   warps, double buffering and shared-memory bank conflicts,
//! * [`ExecutionPlan`] / [`simulate_plan`] — a discrete-event simulation of
//!   pipelined multi-GPU execution over N input fragments (Figure 3.5).
//!
//! Times are microseconds, sizes are bytes throughout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod kernel;
mod kernel_sim;
mod pipeline;
pub mod profile;
pub mod sm_layout;
mod topology;

pub use device::{GpuSpec, Platform};
pub use kernel::{KernelFilter, KernelParams, KernelSpec};
pub use kernel_sim::{simulate_kernel, KernelMeasurement};
pub use pipeline::{
    simulate_plan, ExecStats, ExecutionPlan, PlannedKernel, PlannedTransfer, TransferMode,
};
pub use topology::{Endpoint, LinkId, PcieTopology};
