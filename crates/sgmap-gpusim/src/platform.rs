//! Multi-GPU platform descriptions: the built [`Platform`] the cost models
//! consume, and the declarative [`PlatformSpec`] it is constructed from.
//!
//! A platform is a list of per-leaf [`GpuSpec`]s (so mixed-model boxes are
//! first-class) plus a [`Topology`] whose links carry individual bandwidth,
//! latency and class. GPU `g` of the platform sits on leaf `g` of the
//! topology. The first GPU doubles as the *estimation device*: partition
//! execution estimates are produced for it, and slower or faster siblings are
//! modelled by scaling those estimates with [`Platform::time_factor`].

use serde::{Deserialize, Serialize};

use crate::device::GpuSpec;
use crate::topology::{Topology, TopologyError};

/// A multi-GPU platform: one [`GpuSpec`] per topology leaf plus the
/// interconnect tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Per-GPU device specifications; `gpus[g]` sits on topology leaf `g`.
    pub gpus: Vec<GpuSpec>,
    /// The interconnect.
    pub topology: Topology,
}

impl Platform {
    /// A platform with `gpu_count` copies of `gpu` behind the switch tree of
    /// Figure 3.3 (host — SW1 — {SW2 — {GPU1, GPU2}, SW3 — {GPU3, GPU4}}),
    /// truncated to the requested number of GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or greater than four. Build a
    /// [`PlatformSpec`] instead for a `Result`-returning path.
    pub fn homogeneous(gpu: GpuSpec, gpu_count: usize) -> Self {
        let topology =
            Topology::switch_tree(gpu_count).expect("the reference switch tree hosts 1 to 4 GPUs");
        Platform {
            gpus: vec![gpu; gpu_count],
            topology,
        }
    }

    /// The paper's evaluation platform: 4 × Tesla M2090.
    pub fn quad_m2090() -> Self {
        Platform::homogeneous(GpuSpec::m2090(), 4)
    }

    /// A single-GPU M2090 platform.
    pub fn single_m2090() -> Self {
        Platform::homogeneous(GpuSpec::m2090(), 1)
    }

    /// The prior work's platform: Tesla C2070 GPUs.
    pub fn quad_c2070() -> Self {
        Platform::homogeneous(GpuSpec::c2070(), 4)
    }

    /// Returns a homogeneous reference-tree platform with the first
    /// `gpu_count` GPUs of this one's estimation model.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or greater than four.
    pub fn with_gpu_count(&self, gpu_count: usize) -> Self {
        Platform::homogeneous(self.primary_gpu().clone(), gpu_count)
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// The specification of GPU `gpu`.
    pub fn device(&self, gpu: usize) -> &GpuSpec {
        &self.gpus[gpu]
    }

    /// The estimation device: partition execution estimates are produced for
    /// this GPU and rescaled for the others via [`Platform::time_factor`].
    pub fn primary_gpu(&self) -> &GpuSpec {
        &self.gpus[0]
    }

    /// Multiplier converting an execution time estimated on the primary GPU
    /// into a time on GPU `gpu`: the ratio of compute-throughput proxies.
    /// Exactly `1.0` when the two devices share a specification, so
    /// homogeneous platforms are bit-identical to the unscaled model.
    pub fn time_factor(&self, gpu: usize) -> f64 {
        let device = &self.gpus[gpu];
        let primary = self.primary_gpu();
        if device == primary {
            1.0
        } else {
            primary.compute_throughput_proxy() / device.compute_throughput_proxy()
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::quad_m2090()
    }
}

/// The interconnect shape of a [`PlatformSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterconnectSpec {
    /// The paper's reference PCIe switch tree (1–4 GPUs).
    ReferenceTree,
    /// Every GPU directly behind one PCIe root switch.
    Flat,
    /// NVLink islands of `gpus_per_island` GPUs behind a PCIe fabric; the
    /// GPU count must be a multiple of the island size.
    NvlinkIslands {
        /// GPUs per island.
        gpus_per_island: usize,
    },
    /// Nodes of `gpus_per_node` PCIe-attached GPUs joined by network-class
    /// links; the GPU count must be a multiple of the node size.
    Cluster {
        /// GPUs per node.
        gpus_per_node: usize,
    },
}

impl InterconnectSpec {
    /// A short lowercase tag (for spec files and reports).
    pub fn kind_name(&self) -> &'static str {
        match self {
            InterconnectSpec::ReferenceTree => "reference_tree",
            InterconnectSpec::Flat => "flat",
            InterconnectSpec::NvlinkIslands { .. } => "nvlink_islands",
            InterconnectSpec::Cluster { .. } => "cluster",
        }
    }
}

/// A declarative, named description of a platform: per-GPU specs plus an
/// interconnect shape. This is the value `FlowConfig` and sweep grids carry;
/// [`PlatformSpec::build`] turns it into a concrete [`Platform`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Label used in reports and compile-dedup keys.
    pub name: String,
    /// Per-GPU device specifications, in leaf order. The first entry is the
    /// estimation device.
    pub gpus: Vec<GpuSpec>,
    /// The interconnect shape.
    pub interconnect: InterconnectSpec,
    /// Multiplier applied to every link's bandwidth when the platform is
    /// built (`1.0` = the calibrated model, bit-identical). Robustness sweeps
    /// perturb this to measure mapping stability under calibration drift.
    /// The JSON codec (`sgmap-sweep`) omits the field at `1.0` and defaults
    /// it to `1.0` when absent, so historical spec files stay valid.
    pub bandwidth_scale: f64,
    /// Multiplier applied to every link's latency when the platform is built
    /// (`1.0` = the calibrated model, bit-identical; same codec default).
    pub latency_scale: f64,
}

impl PlatformSpec {
    /// A homogeneous reference-tree spec (`gpu_count` copies of `gpu` behind
    /// the Figure 3.3 switch tree). Counts outside 1–4 are representable but
    /// rejected by [`PlatformSpec::build`], so a bad sweep axis surfaces as
    /// an error instead of a panic.
    pub fn reference(gpu: GpuSpec, gpu_count: usize) -> Self {
        PlatformSpec {
            name: format!("{}x{}", gpu.name, gpu_count),
            gpus: vec![gpu; gpu_count],
            interconnect: InterconnectSpec::ReferenceTree,
            bandwidth_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    /// The paper's evaluation platform: 4 × Tesla M2090 on the reference
    /// tree.
    pub fn paper() -> Self {
        PlatformSpec::reference(GpuSpec::m2090(), 4)
    }

    /// An 8-GPU NVLink-island box: two islands of four M2090s each, NVLink
    /// inside an island, PCIe between islands.
    pub fn nvlink8_m2090() -> Self {
        PlatformSpec {
            name: "nvlink8".to_string(),
            gpus: vec![GpuSpec::m2090(); 8],
            interconnect: InterconnectSpec::NvlinkIslands { gpus_per_island: 4 },
            bandwidth_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    /// A 2×4 two-node cluster of M2090s with a network-class inter-node
    /// link.
    pub fn cluster2x4_m2090() -> Self {
        PlatformSpec {
            name: "cluster2x4".to_string(),
            gpus: vec![GpuSpec::m2090(); 8],
            interconnect: InterconnectSpec::Cluster { gpus_per_node: 4 },
            bandwidth_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    /// A mixed-model flat box: two M2090s and two C2070s behind one switch.
    /// The M2090 (first leaf) is the estimation device; the C2070s run the
    /// same estimates scaled by the throughput ratio.
    pub fn mixed_m2090_c2070() -> Self {
        PlatformSpec {
            name: "mixed4".to_string(),
            gpus: vec![
                GpuSpec::m2090(),
                GpuSpec::m2090(),
                GpuSpec::c2070(),
                GpuSpec::c2070(),
            ],
            interconnect: InterconnectSpec::Flat,
            bandwidth_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    /// Renames the spec (labels double as compile-dedup keys in sweeps).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the link bandwidth/latency perturbation factors applied when the
    /// platform is built. `1.0` is the calibrated model; the factors must be
    /// positive (enforced by [`PlatformSpec::build`]).
    #[must_use]
    pub fn with_link_scales(mut self, bandwidth_scale: f64, latency_scale: f64) -> Self {
        self.bandwidth_scale = bandwidth_scale;
        self.latency_scale = latency_scale;
        self
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// The estimation device (the first GPU).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no GPUs (which [`PlatformSpec::build`]
    /// rejects).
    pub fn primary_gpu(&self) -> &GpuSpec {
        &self.gpus[0]
    }

    /// Builds the concrete platform: constructs the topology for the
    /// interconnect shape and attaches the per-leaf GPU specs.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the GPU list is empty, the count does
    /// not fit the interconnect shape, the shape itself is invalid, or a link
    /// scale factor is not positive.
    pub fn build(&self) -> Result<Platform, TopologyError> {
        let n = self.gpus.len();
        if n == 0 {
            return Err(TopologyError::NoGpus);
        }
        let positive = |scale: f64| scale > 0.0; // NaN is rejected too
        if !positive(self.bandwidth_scale) || !positive(self.latency_scale) {
            return Err(TopologyError::UnsupportedShape(format!(
                "platform '{}': link scale factors must be positive \
                 (bandwidth {}, latency {})",
                self.name, self.bandwidth_scale, self.latency_scale
            )));
        }
        let topology = match &self.interconnect {
            InterconnectSpec::ReferenceTree => Topology::switch_tree(n)?,
            InterconnectSpec::Flat => Topology::flat(n)?,
            InterconnectSpec::NvlinkIslands { gpus_per_island } => {
                let per = *gpus_per_island;
                if per == 0 || !n.is_multiple_of(per) {
                    return Err(TopologyError::UnsupportedShape(format!(
                        "platform '{}': {n} GPUs do not divide into islands of {per}",
                        self.name
                    )));
                }
                Topology::nvlink_islands(n / per, per)?
            }
            InterconnectSpec::Cluster { gpus_per_node } => {
                let per = *gpus_per_node;
                if per == 0 || !n.is_multiple_of(per) {
                    return Err(TopologyError::UnsupportedShape(format!(
                        "platform '{}': {n} GPUs do not divide into nodes of {per}",
                        self.name
                    )));
                }
                Topology::cluster(n / per, per)?
            }
        };
        // Factors of exactly 1.0 are skipped inside `with_scaled_links`, so
        // the unperturbed path stays bit-identical to the calibrated model.
        let topology = topology.with_scaled_links(self.bandwidth_scale, self.latency_scale);
        Ok(Platform {
            gpus: self.gpus.clone(),
            topology,
        })
    }
}

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkClass;

    #[test]
    fn platform_construction() {
        let p = Platform::quad_m2090();
        assert_eq!(p.gpu_count(), 4);
        let p2 = p.with_gpu_count(2);
        assert_eq!(p2.gpu_count(), 2);
        assert_eq!(p2.primary_gpu().name, "Tesla M2090");
    }

    #[test]
    #[should_panic(expected = "1 to 4 GPUs")]
    fn oversized_platform_panics() {
        let _ = Platform::homogeneous(GpuSpec::m2090(), 5);
    }

    #[test]
    fn reference_spec_builds_the_reference_platform() {
        for count in 1..=4 {
            let built = PlatformSpec::reference(GpuSpec::m2090(), count)
                .build()
                .unwrap();
            assert_eq!(built, Platform::homogeneous(GpuSpec::m2090(), count));
        }
        assert!(PlatformSpec::reference(GpuSpec::m2090(), 5)
            .build()
            .is_err());
        assert!(PlatformSpec::reference(GpuSpec::m2090(), 0)
            .build()
            .is_err());
    }

    #[test]
    fn hierarchical_presets_build() {
        let nv = PlatformSpec::nvlink8_m2090().build().unwrap();
        assert_eq!(nv.gpu_count(), 8);
        assert!(nv
            .topology
            .link_ids()
            .any(|l| nv.topology.link_class(l) == LinkClass::NvLink));

        let cl = PlatformSpec::cluster2x4_m2090().build().unwrap();
        assert_eq!(cl.gpu_count(), 8);
        assert!(cl
            .topology
            .link_ids()
            .any(|l| cl.topology.link_class(l) == LinkClass::Network));

        // A count that does not divide into the shape is an error.
        let mut bad = PlatformSpec::nvlink8_m2090();
        bad.gpus.pop();
        assert!(bad.build().is_err());
    }

    #[test]
    fn link_scales_perturb_the_built_topology() {
        let base = PlatformSpec::paper().build().unwrap();
        let scaled = PlatformSpec::paper()
            .with_link_scales(1.1, 0.8)
            .build()
            .unwrap();
        for link in base.topology.link_ids() {
            assert!(
                (scaled.topology.link_bandwidth_gbs(link)
                    - base.topology.link_bandwidth_gbs(link) * 1.1)
                    .abs()
                    < 1e-12
            );
            assert!(
                (scaled.topology.link_latency_us(link) - base.topology.link_latency_us(link) * 0.8)
                    .abs()
                    < 1e-12
            );
        }
        // Unit factors are bit-identical to the unperturbed build.
        let unit = PlatformSpec::paper()
            .with_link_scales(1.0, 1.0)
            .build()
            .unwrap();
        assert_eq!(unit, base);
        // Non-positive factors are rejected.
        assert!(PlatformSpec::paper()
            .with_link_scales(0.0, 1.0)
            .build()
            .is_err());
        assert!(PlatformSpec::paper()
            .with_link_scales(1.0, -0.5)
            .build()
            .is_err());
    }

    #[test]
    fn throughput_factor_scales_the_device_proxy() {
        let base = GpuSpec::m2090();
        let fast = base.with_throughput_factor(1.1, "tp+10%");
        assert_eq!(fast.name, "Tesla M2090 tp+10%");
        assert!(
            (fast.compute_throughput_proxy() - base.compute_throughput_proxy() * 1.1).abs() < 1e-9
        );
        assert_eq!(fast.sm_count, base.sm_count);
    }

    #[test]
    fn time_factor_is_exactly_one_for_homogeneous_platforms() {
        let p = Platform::quad_m2090();
        for g in 0..p.gpu_count() {
            assert_eq!(p.time_factor(g), 1.0);
        }
    }

    #[test]
    fn mixed_platforms_scale_times_by_throughput_ratio() {
        let p = PlatformSpec::mixed_m2090_c2070().build().unwrap();
        assert_eq!(p.time_factor(0), 1.0);
        assert_eq!(p.time_factor(1), 1.0);
        // The C2070 is ~29 % slower, so its times stretch by that ratio.
        let f = p.time_factor(2);
        assert!((f - 1.29).abs() < 0.03, "{f}");
        assert_eq!(p.time_factor(2), p.time_factor(3));
    }
}
