//! Cycle-approximate execution of a single kernel ("actual" runtime).
//!
//! This is the simulator's stand-in for running the generated CUDA kernel on
//! the real GPU and measuring it with the Nvidia profiler. It follows the
//! same double-buffered compute/data-transfer structure as the analytic model
//! of the PEE, but additionally models effects that the analytic model
//! ignores:
//!
//! * warp-granularity rounding of the per-filter firing loops,
//! * the SM's finite issue throughput when many executions run concurrently,
//! * the global-memory bandwidth ceiling on the data-transfer warps,
//! * shared-memory bank conflicts between compute and data-transfer warps
//!   (the cause of the occasional large under-prediction the paper reports in
//!   Figure 4.1),
//! * a fixed kernel-launch overhead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::GpuSpec;
use crate::kernel::KernelSpec;

/// Fixed kernel launch/teardown overhead in microseconds.
pub const LAUNCH_OVERHEAD_US: f64 = 4.0;

/// Fraction of kernels that suffer pathological bank conflicts.
const SEVERE_CONFLICT_PROBABILITY: f64 = 0.08;

/// The simulated measurement of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// End-to-end kernel time in microseconds (excluding launch overhead the
    /// paper also excludes; see `total_with_launch_us`).
    pub time_us: f64,
    /// Time spent by the compute warps.
    pub compute_us: f64,
    /// Time spent by the data-transfer warps.
    pub data_transfer_us: f64,
    /// Time spent swapping the working-set and double buffers.
    pub buffer_swap_us: f64,
    /// Extra time lost to shared-memory bank conflicts.
    pub bank_conflict_us: f64,
}

impl KernelMeasurement {
    /// Kernel time including the launch overhead.
    pub fn total_with_launch_us(&self) -> f64 {
        self.time_us + LAUNCH_OVERHEAD_US
    }

    /// Normalised execution time (per execution), the paper's `T` metric.
    pub fn normalized_us(&self, w: u32) -> f64 {
        self.time_us / f64::from(w.max(1))
    }
}

/// Simulates one launch of `kernel` on `gpu`.
///
/// The `seed` selects the pseudo-random bank-conflict behaviour so that a
/// given kernel always measures the same (the hardware analogue: a fixed
/// shared-memory layout conflicts deterministically).
pub fn simulate_kernel(kernel: &KernelSpec, gpu: &GpuSpec, seed: u64) -> KernelMeasurement {
    let p = kernel.params;
    let s = f64::from(p.s.max(1));
    let w = f64::from(p.w.max(1));
    let f = f64::from(p.f.max(1));

    // --- Compute warps -----------------------------------------------------
    // Latency of one execution: each filter's firings are spread over at most
    // S threads, in whole rounds.
    let mut latency_us = 0.0;
    let mut serial_work_us = 0.0;
    for filt in &kernel.filters {
        let firings = filt.firings as f64;
        let parallel = firings.min(s).max(1.0);
        let rounds = (firings / parallel).ceil();
        latency_us += filt.firing_time_us * rounds;
        serial_work_us += filt.firing_time_us * firings;
    }
    // Throughput bound: all W executions share the SM's issue bandwidth. A
    // single profiled thread already runs at one-lane speed, so the SM can
    // sustain roughly `warp_size` profiled-threads worth of work in parallel.
    let issue_lanes = f64::from(gpu.warp_size);
    let throughput_us = w * serial_work_us / issue_lanes;
    let compute_us = latency_us.max(throughput_us);

    // --- Data-transfer warps ------------------------------------------------
    let total_io_bytes = kernel.total_io_bytes() as f64;
    let words = total_io_bytes / 4.0;
    let dt_latency_us = gpu.cycles_to_us(words / f * gpu.global_access_cycles);
    let dt_bandwidth_us = gpu.global_stream_us(total_io_bytes);
    let data_transfer_us = dt_latency_us.max(dt_bandwidth_us);

    // --- Buffer swap ---------------------------------------------------------
    let all_threads = (w * s + f).max(1.0);
    let buffer_swap_us = gpu.cycles_to_us(words / all_threads * 2.0 * gpu.shared_access_cycles);

    // --- Bank conflicts -------------------------------------------------------
    // Conflicts only matter while compute and data-transfer warps are both
    // active, i.e. during the overlap of the two phases.
    let overlap_us = compute_us.min(data_transfer_us);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let severe = rng.gen_bool(SEVERE_CONFLICT_PROBABILITY);
    let rate = if severe {
        rng.gen_range(0.4..0.9)
    } else {
        rng.gen_range(0.0..0.12)
    };
    let bank_conflict_us = overlap_us * rate;

    let time_us = compute_us.max(data_transfer_us) + buffer_swap_us + bank_conflict_us;
    KernelMeasurement {
        time_us,
        compute_us,
        data_transfer_us,
        buffer_swap_us,
        bank_conflict_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelFilter, KernelParams};

    fn kernel(w: u32, s: u32, f: u32, io_bytes: u64, firing_us: f64, firings: u64) -> KernelSpec {
        KernelSpec {
            name: "k".to_string(),
            filters: vec![KernelFilter {
                firing_time_us: firing_us,
                firings,
            }],
            io_bytes_per_exec: io_bytes,
            sm_bytes_per_exec: 4096,
            params: KernelParams { w, s, f },
        }
    }

    #[test]
    fn measurement_is_deterministic_for_a_seed() {
        let k = kernel(4, 2, 64, 1024, 3.0, 8);
        let gpu = GpuSpec::m2090();
        let a = simulate_kernel(&k, &gpu, 42);
        let b = simulate_kernel(&k, &gpu, 42);
        assert_eq!(a, b);
        let c = simulate_kernel(&k, &gpu, 43);
        // A different seed may (and usually does) give a different conflict
        // penalty but identical structural components.
        assert_eq!(a.compute_us, c.compute_us);
        assert_eq!(a.data_transfer_us, c.data_transfer_us);
    }

    #[test]
    fn more_compute_threads_reduce_latency_bound_kernels() {
        let gpu = GpuSpec::m2090();
        let slow = simulate_kernel(&kernel(1, 1, 64, 64, 2.0, 16), &gpu, 1);
        let fast = simulate_kernel(&kernel(1, 8, 64, 64, 2.0, 16), &gpu, 1);
        assert!(fast.compute_us < slow.compute_us);
    }

    #[test]
    fn io_heavy_kernels_are_transfer_bound() {
        let gpu = GpuSpec::m2090();
        let m = simulate_kernel(&kernel(1, 1, 32, 1_000_000, 0.5, 1), &gpu, 7);
        assert!(m.data_transfer_us > m.compute_us);
        assert!(m.time_us >= m.data_transfer_us);
    }

    #[test]
    fn more_dt_threads_speed_up_latency_bound_transfers() {
        let gpu = GpuSpec::m2090();
        let few = simulate_kernel(&kernel(1, 1, 16, 8_192, 0.5, 1), &gpu, 3);
        let many = simulate_kernel(&kernel(1, 1, 128, 8_192, 0.5, 1), &gpu, 3);
        assert!(many.data_transfer_us < few.data_transfer_us);
    }

    #[test]
    fn normalization_divides_by_w() {
        let gpu = GpuSpec::m2090();
        let m = simulate_kernel(&kernel(8, 1, 32, 512, 1.0, 1), &gpu, 9);
        assert!((m.normalized_us(8) - m.time_us / 8.0).abs() < 1e-12);
        assert!(m.total_with_launch_us() > m.time_us);
    }
}
