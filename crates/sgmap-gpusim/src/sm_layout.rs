//! Shared-memory footprint of a partition.
//!
//! In the one-kernel-for-graph execution style, every channel that is
//! internal to a partition lives in the SM's shared memory (scratchpad). The
//! footprint therefore depends on the *lifetimes* of the channel buffers
//! under a topological firing schedule (Figure 3.2 of the paper): a pipeline
//! reuses buffers as it goes, while a split structure keeps the split
//! branches' buffers alive simultaneously.
//!
//! The `enhanced` mode models the splitter/joiner elimination of Chapter V:
//! buffers *produced* by a splitter or joiner alias the filter's input buffer
//! (consumers re-index into it), so they cost no additional shared memory.

use sgmap_graph::{FilterKind, NodeSet, RepetitionVector, StreamGraph};

/// Breakdown of the shared-memory footprint of one execution of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SmFootprint {
    /// Peak of the internal channel buffers that are live simultaneously,
    /// in bytes.
    pub internal_peak_bytes: u64,
    /// Bytes of primary/boundary input staged in shared memory per execution.
    pub input_bytes: u64,
    /// Bytes of primary/boundary output staged in shared memory per
    /// execution.
    pub output_bytes: u64,
    /// Persistent per-filter state bytes.
    pub state_bytes: u64,
    /// Extra bytes retained by peeking filters (`peek - pop` tokens).
    pub peek_bytes: u64,
}

impl SmFootprint {
    /// Bytes of IO staging (input + output) per execution.
    pub fn io_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes
    }

    /// Shared-memory bytes needed by a single execution (working set plus one
    /// IO staging buffer), excluding the double buffer.
    pub fn per_execution_bytes(&self) -> u64 {
        self.internal_peak_bytes + self.io_bytes() + self.state_bytes + self.peek_bytes
    }

    /// Total shared-memory bytes of a kernel running `w` executions
    /// concurrently with double-buffered IO: every execution owns its working
    /// set and IO staging, plus one extra IO-sized buffer for the double
    /// buffer.
    pub fn kernel_bytes(&self, w: u32) -> u64 {
        u64::from(w) * self.per_execution_bytes() + self.io_bytes()
    }
}

/// Computes the shared-memory footprint of one execution of the partition
/// `set` of `graph`.
///
/// `enhanced` enables the splitter/joiner elimination of Chapter V.
///
/// # Panics
///
/// Panics if `set` references filters outside `graph`.
pub fn footprint(
    graph: &StreamGraph,
    set: &NodeSet,
    reps: &RepetitionVector,
    enhanced: bool,
) -> SmFootprint {
    let mut fp = SmFootprint::default();

    // Per-iteration byte volume of each channel.
    let channel_bytes = |cid: sgmap_graph::ChannelId| graph.channel_iteration_bytes(cid, reps);

    // Boundary IO and primary IO.
    for cid in set.input_channels(graph) {
        fp.input_bytes += channel_bytes(cid);
    }
    for cid in set.output_channels(graph) {
        fp.output_bytes += channel_bytes(cid);
    }
    for id in set.iter() {
        let f = graph.filter(id);
        match f.kind {
            FilterKind::Source => {
                fp.input_bytes += reps[id.index()] * u64::from(f.push) * u64::from(f.token_bytes)
            }
            FilterKind::Sink => {
                fp.output_bytes += reps[id.index()] * u64::from(f.pop) * u64::from(f.token_bytes)
            }
            _ => {}
        }
        fp.state_bytes += u64::from(f.state_bytes);
        if f.peek > f.pop {
            fp.peek_bytes += u64::from(f.peek - f.pop) * u64::from(f.token_bytes);
        }
    }

    // Internal buffers: lifetime scan over a topological schedule restricted
    // to the partition's members.
    let order: Vec<_> = match graph.topological_order() {
        Ok(o) => o.into_iter().filter(|id| set.contains(*id)).collect(),
        Err(_) => set.iter().collect(),
    };
    // `internal_channels` returns ids in ascending order (graph.channels()
    // enumerates by index), so binary search is sufficient.
    let internal = set.internal_channels(graph);
    let is_internal = |cid: sgmap_graph::ChannelId| internal.binary_search(&cid).is_ok();

    let mut live: u64 = 0;
    let mut peak: u64 = 0;
    let mut consumed_remaining: std::collections::HashMap<usize, u64> = internal
        .iter()
        .map(|&cid| (cid.index(), channel_bytes(cid)))
        .collect();
    for &fid in &order {
        // Firing this filter materialises all of its internal output buffers.
        for &cid in graph.out_channels(fid) {
            if !is_internal(cid) {
                continue;
            }
            let ch = graph.channel(cid);
            if ch.feedback {
                continue;
            }
            let bytes = if enhanced && graph.filter(fid).is_reorder_only() {
                // Enhanced codegen: the splitter/joiner output aliases its
                // input buffer; no new allocation.
                0
            } else {
                channel_bytes(cid)
            };
            live += bytes;
            consumed_remaining.insert(cid.index(), bytes);
        }
        peak = peak.max(live);
        // After the filter (and all its firings) complete, the buffers it
        // consumed are dead.
        for &cid in graph.in_channels(fid) {
            if !is_internal(cid) {
                continue;
            }
            if graph.channel(cid).feedback {
                continue;
            }
            if let Some(bytes) = consumed_remaining.remove(&cid.index()) {
                live = live.saturating_sub(bytes);
            }
        }
    }
    fp.internal_peak_bytes = peak;
    fp
}

/// Convenience wrapper returning the kernel footprint in bytes for `w`
/// executions.
pub fn kernel_shared_mem_bytes(
    graph: &StreamGraph,
    set: &NodeSet,
    reps: &RepetitionVector,
    w: u32,
    enhanced: bool,
) -> u64 {
    footprint(graph, set, reps, enhanced).kernel_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::{GraphBuilder, JoinKind, NodeSet, SplitKind, StreamSpec};

    fn pipeline_graph(stages: usize) -> StreamGraph {
        let mut specs = vec![StreamSpec::filter("src", 0, 1, 1.0)];
        for i in 0..stages {
            specs.push(StreamSpec::filter(format!("s{i}"), 1, 1, 2.0));
        }
        specs.push(StreamSpec::filter("sink", 1, 0, 1.0));
        GraphBuilder::new("pipe")
            .build(StreamSpec::pipeline(specs))
            .unwrap()
    }

    fn split_graph(branches: usize) -> StreamGraph {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::split_join(
                SplitKind::Duplicate,
                (0..branches)
                    .map(|i| StreamSpec::filter(format!("b{i}"), 1, 1, 2.0))
                    .collect(),
                JoinKind::round_robin_uniform(branches),
            ),
            StreamSpec::filter("sink", branches as u32, 0, 1.0),
        ]);
        GraphBuilder::new("split").build(spec).unwrap()
    }

    #[test]
    fn pipeline_peak_is_bounded_by_adjacent_buffers() {
        let g = pipeline_graph(6);
        let reps = g.repetition_vector().unwrap();
        let all = NodeSet::all(&g);
        let fp = footprint(&g, &all, &reps, false);
        // Every channel carries 1 token of 4 bytes; with buffer reuse the
        // peak stays far below the total channel volume.
        let total: u64 = g
            .channels()
            .map(|(id, _)| g.channel_iteration_bytes(id, &reps))
            .sum();
        assert!(fp.internal_peak_bytes < total);
        assert!(fp.internal_peak_bytes >= 4);
        assert_eq!(fp.input_bytes, 4);
        assert_eq!(fp.output_bytes, 4);
    }

    #[test]
    fn split_structure_needs_more_memory_than_pipeline() {
        // Matches Figure 3.2: with the same number of compute filters, the
        // split keeps all branch buffers alive at once.
        let pipe = pipeline_graph(4);
        let split = split_graph(4);
        let pr = pipe.repetition_vector().unwrap();
        let sr = split.repetition_vector().unwrap();
        let fp_pipe = footprint(&pipe, &NodeSet::all(&pipe), &pr, false);
        let fp_split = footprint(&split, &NodeSet::all(&split), &sr, false);
        assert!(
            fp_split.internal_peak_bytes > fp_pipe.internal_peak_bytes,
            "split {} <= pipe {}",
            fp_split.internal_peak_bytes,
            fp_pipe.internal_peak_bytes
        );
    }

    #[test]
    fn enhanced_mode_reduces_split_footprint() {
        let g = split_graph(4);
        let reps = g.repetition_vector().unwrap();
        let all = NodeSet::all(&g);
        let normal = footprint(&g, &all, &reps, false);
        let enhanced = footprint(&g, &all, &reps, true);
        assert!(enhanced.internal_peak_bytes < normal.internal_peak_bytes);
    }

    #[test]
    fn kernel_bytes_grow_linearly_with_w() {
        let g = pipeline_graph(3);
        let reps = g.repetition_vector().unwrap();
        let all = NodeSet::all(&g);
        let fp = footprint(&g, &all, &reps, false);
        let one = fp.kernel_bytes(1);
        let four = fp.kernel_bytes(4);
        assert_eq!(four - one, 3 * fp.per_execution_bytes());
    }

    #[test]
    fn sub_partition_io_counts_boundary_channels() {
        let g = pipeline_graph(3);
        let reps = g.repetition_vector().unwrap();
        // Take the middle filters only: boundary channels on both sides.
        let s0 = g.filter_by_name("s0").unwrap();
        let s1 = g.filter_by_name("s1").unwrap();
        let set = NodeSet::from_ids([s0, s1]);
        let fp = footprint(&g, &set, &reps, false);
        assert_eq!(fp.input_bytes, 4);
        assert_eq!(fp.output_bytes, 4);
        assert_eq!(fp.io_bytes(), 8);
    }
}
