//! Property tests over random topology trees: every precomputed route is a
//! contiguous up-then-down walk through the lowest common ancestor, the
//! memoized tables agree with the from-scratch scans, and the per-link
//! `dtlist` inversion conserves the total number of route hops.

use proptest::prelude::*;

use sgmap_gpusim::{Endpoint, LinkClass, Topology, TopologyBuilder};

/// Random well-formed trees: a host root, then a mix of switches and GPU
/// leaves each attached to a random existing non-leaf node over a random
/// link class (so NVLink islands, PCIe fabrics and network uplinks mix
/// freely in one tree).
fn topology_strategy() -> BoxedStrategy<Topology> {
    prop::collection::vec((0u32..1024, 0u32..3, 0u32..3), 1..24)
        .prop_map(|nodes| {
            let mut b = TopologyBuilder::new();
            let host = b.host();
            let mut attach_points = vec![host];
            let mut gpus = 0usize;
            for (pick, kind, class) in nodes {
                let parent = attach_points[pick as usize % attach_points.len()];
                let class = match class {
                    0 => LinkClass::Pcie,
                    1 => LinkClass::NvLink,
                    _ => LinkClass::Network,
                };
                if kind == 0 {
                    let sw = b.switch_via(parent, class);
                    attach_points.push(sw);
                } else {
                    b.gpu_via(parent, class);
                    gpus += 1;
                }
            }
            if gpus == 0 {
                b.gpu(host);
            }
            b.finish().expect("a tree with a GPU builds")
        })
        .boxed()
}

fn endpoints(topo: &Topology) -> Vec<Endpoint> {
    std::iter::once(Endpoint::Host)
        .chain((0..topo.gpu_count()).map(Endpoint::Gpu))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_go_up_then_down_through_the_lca(topo in topology_strategy()) {
        for &from in &endpoints(&topo) {
            for &to in &endpoints(&topo) {
                let route = topo.route(from, to);
                if from == to {
                    prop_assert!(route.is_empty());
                    continue;
                }
                prop_assert!(!route.is_empty(), "{from:?}->{to:?}");
                // Contiguous walk: each hop starts where the previous ended.
                for pair in route.windows(2) {
                    prop_assert_eq!(
                        topo.link_nodes(pair[0]).1,
                        topo.link_nodes(pair[1]).0,
                        "route {from:?}->{to:?} is not contiguous"
                    );
                }
                // Up-links first, down-links after — never up again once the
                // walk has turned at the LCA.
                let ups: Vec<bool> = route.iter().map(|&l| topo.link_is_up(l)).collect();
                let turn = ups.iter().filter(|&&u| u).count();
                prop_assert!(
                    ups[..turn].iter().all(|&u| u) && ups[turn..].iter().all(|&u| !u),
                    "route {from:?}->{to:?} interleaves up and down hops: {ups:?}"
                );
                // The memoized table agrees with the from-scratch walk, and
                // the reverse route mirrors it hop for hop.
                prop_assert_eq!(route, &topo.route_scan(from, to)[..]);
                prop_assert_eq!(route.len(), topo.route(to, from).len());
            }
        }
    }

    #[test]
    fn dtlists_invert_the_route_table_exactly(topo in topology_strategy()) {
        let g = topo.gpu_count();
        let mut route_hops = 0usize;
        for i in 0..g {
            for j in 0..g {
                if i != j {
                    route_hops += topo.route(Endpoint::Gpu(i), Endpoint::Gpu(j)).len();
                }
            }
        }
        let mut dtlist_pairs = 0usize;
        for l in topo.link_ids() {
            let dtlist = topo.dtlist(l);
            dtlist_pairs += dtlist.len();
            // Memoized table matches the from-scratch scan, in ascending
            // (i, j) order with no duplicates.
            prop_assert_eq!(dtlist, &topo.dtlist_scan(l)[..]);
            for pair in dtlist.windows(2) {
                prop_assert!(pair[0] < pair[1], "dtlist out of order: {pair:?}");
            }
        }
        // Every hop of every GPU-to-GPU route is charged to exactly one
        // (link, pair) entry.
        prop_assert_eq!(dtlist_pairs, route_hops);
    }
}
