//! The compile-and-execute pipeline.

use std::fmt;

use sgmap_codegen::build_execution_plan;
use sgmap_gpusim::{simulate_plan, ExecutionPlan, KernelSpec, Platform};
use sgmap_graph::{GraphError, StreamGraph};
use sgmap_ilp::IlpError;
use sgmap_mapping::{map_with, Mapping};
use sgmap_partition::{build_pdg, partition_with, PartitionError, Partitioning, Pdg};
use sgmap_pee::Estimator;

use crate::config::FlowConfig;
use crate::report::RunReport;

/// Errors of the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Stream graph analysis failed.
    Graph(GraphError),
    /// Partitioning failed.
    Partition(PartitionError),
    /// The ILP mapper failed.
    Mapping(IlpError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Graph(e) => write!(f, "graph analysis failed: {e}"),
            FlowError::Partition(e) => write!(f, "partitioning failed: {e}"),
            FlowError::Mapping(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}
impl From<PartitionError> for FlowError {
    fn from(e: PartitionError) -> Self {
        FlowError::Partition(e)
    }
}
impl From<IlpError> for FlowError {
    fn from(e: IlpError) -> Self {
        FlowError::Mapping(e)
    }
}

/// Everything the flow produced before execution.
#[derive(Debug)]
pub struct CompileResult {
    /// The target platform.
    pub platform: Platform,
    /// The partitioning of the stream graph.
    pub partitioning: Partitioning,
    /// The partition dependence graph.
    pub pdg: Pdg,
    /// The partition-to-GPU mapping.
    pub mapping: Mapping,
    /// The pipelined execution plan.
    pub plan: ExecutionPlan,
    /// The generated kernels, in plan order.
    pub kernels: Vec<KernelSpec>,
}

impl CompileResult {
    /// Number of partitions (= kernels).
    pub fn partition_count(&self) -> usize {
        self.partitioning.len()
    }
}

/// Runs the flow of Figure 3.1 up to (and including) code generation.
///
/// # Errors
///
/// Returns an error if graph analysis, partitioning or mapping fails.
pub fn compile(graph: &StreamGraph, config: &FlowConfig) -> Result<CompileResult, FlowError> {
    let platform = config.platform();
    let reps = graph.repetition_vector()?;
    let estimator = Estimator::new(graph, platform.gpu.clone())?.with_enhancement(config.enhanced);
    let partitioning = partition_with(&estimator, config.partitioner)?;
    let pdg = build_pdg(graph, &reps, &partitioning);
    let mapping = map_with(&pdg, &platform, config.mapper, &config.mapping_options)?;
    let (plan, kernels) = build_execution_plan(
        &estimator,
        &partitioning,
        &pdg,
        &mapping,
        &platform,
        &config.plan,
    );
    Ok(CompileResult {
        platform,
        partitioning,
        pdg,
        mapping,
        plan,
        kernels,
    })
}

/// Executes a compiled result on the platform simulator.
pub fn execute(compiled: &CompileResult, config: &FlowConfig) -> RunReport {
    let stats = simulate_plan(&compiled.plan, &compiled.platform);
    let iterations = u64::from(compiled.plan.n_fragments) * config.plan.iterations_per_fragment;
    RunReport::new(
        compiled.partition_count(),
        compiled.mapping.clone(),
        stats,
        iterations,
    )
}

/// Compiles and executes in one call.
///
/// # Errors
///
/// Returns an error if compilation fails; execution itself cannot fail.
pub fn compile_and_run(graph: &StreamGraph, config: &FlowConfig) -> Result<RunReport, FlowError> {
    let compiled = compile(graph, config)?;
    Ok(execute(&compiled, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;

    #[test]
    fn full_flow_runs_for_a_small_app_on_every_gpu_count() {
        let graph = App::FmRadio.build(8).unwrap();
        let mut times = Vec::new();
        for g in 1..=4 {
            let config = FlowConfig::default().with_gpu_count(g);
            let report = compile_and_run(&graph, &config).unwrap();
            assert!(report.time_per_iteration_us > 0.0, "G={g}");
            assert!(report.partition_count >= 1);
            times.push(report.time_per_iteration_us);
        }
        // More GPUs never makes the (communication-aware) mapping much worse.
        assert!(
            times[3] <= times[0] * 1.25,
            "4-GPU {} vs 1-GPU {}",
            times[3],
            times[0]
        );
    }

    #[test]
    fn compile_exposes_all_intermediate_artefacts() {
        let graph = App::MatMul2.build(4).unwrap();
        let config = FlowConfig::default().with_gpu_count(2);
        let compiled = compile(&graph, &config).unwrap();
        assert_eq!(compiled.kernels.len(), compiled.partition_count());
        assert_eq!(
            compiled.mapping.assignment.len(),
            compiled.partition_count()
        );
        assert_eq!(compiled.pdg.len(), compiled.partition_count());
        let report = execute(&compiled, &config);
        assert!(report.makespan_us > 0.0);
    }

    #[test]
    fn spsg_config_produces_exactly_one_partition() {
        let graph = App::Des.build(8).unwrap();
        let report = compile_and_run(&graph, &FlowConfig::spsg()).unwrap();
        assert_eq!(report.partition_count, 1);
        assert_eq!(report.mapping.gpus_used(), 1);
    }

    #[test]
    fn previous_work_stack_is_never_faster_than_ours_on_compute_bound_apps() {
        let graph = App::Des.build(12).unwrap();
        let ours = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(4)).unwrap();
        let prev = compile_and_run(&graph, &FlowConfig::previous_work().with_gpu_count(4)).unwrap();
        assert!(
            ours.time_per_iteration_us <= prev.time_per_iteration_us * 1.05,
            "ours {} vs previous {}",
            ours.time_per_iteration_us,
            prev.time_per_iteration_us
        );
    }
}
