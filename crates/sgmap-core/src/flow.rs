//! The compile-and-execute pipeline.

use std::fmt;

use sgmap_codegen::build_execution_plan_traced;
use sgmap_gpusim::{
    simulate_plan_traced, simulate_plan_with_faults_traced, ExecutionPlan, FaultPlan, FaultedExec,
    KernelSpec, Platform,
};
use sgmap_graph::{GraphError, StreamGraph};
use sgmap_ilp::IlpError;
use sgmap_mapping::{map_with_traced, repair_mapping, Mapping, RepairOptions, RepairStats};
use sgmap_partition::{build_pdg, PartitionError, PartitionRequest, Partitioning, Pdg};
use sgmap_pee::Estimator;

use crate::config::FlowConfig;
use crate::report::RunReport;

/// Errors of the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The configuration contains a degenerate value (e.g. zero GPUs).
    InvalidConfig(String),
    /// Stream graph analysis failed.
    Graph(GraphError),
    /// Partitioning failed.
    Partition(PartitionError),
    /// The ILP mapper failed.
    Mapping(IlpError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FlowError::Graph(e) => write!(f, "graph analysis failed: {e}"),
            FlowError::Partition(e) => write!(f, "partitioning failed: {e}"),
            FlowError::Mapping(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}
impl From<PartitionError> for FlowError {
    fn from(e: PartitionError) -> Self {
        FlowError::Partition(e)
    }
}
impl From<IlpError> for FlowError {
    fn from(e: IlpError) -> Self {
        FlowError::Mapping(e)
    }
}

/// Everything the flow produced before execution.
#[derive(Debug)]
pub struct CompileResult {
    /// The target platform.
    pub platform: Platform,
    /// The partitioning of the stream graph.
    pub partitioning: Partitioning,
    /// The partition dependence graph.
    pub pdg: Pdg,
    /// The partition-to-GPU mapping.
    pub mapping: Mapping,
    /// The pipelined execution plan.
    pub plan: ExecutionPlan,
    /// The generated kernels, in plan order.
    pub kernels: Vec<KernelSpec>,
}

impl CompileResult {
    /// Number of partitions (= kernels).
    pub fn partition_count(&self) -> usize {
        self.partitioning.len()
    }
}

/// Runs the flow of Figure 3.1 up to (and including) code generation.
///
/// # Errors
///
/// Returns an error if the configuration is degenerate or if graph analysis,
/// partitioning or mapping fails.
pub fn compile(graph: &StreamGraph, config: &FlowConfig) -> Result<CompileResult, FlowError> {
    config.validate().map_err(FlowError::InvalidConfig)?;
    let mut estimator = Estimator::new(graph, config.estimation_gpu().clone())?
        .with_enhancement(config.enhanced)
        .with_trace(config.trace.clone());
    if let Some(cache) = &config.estimate_cache {
        estimator = estimator.with_shared_cache(cache.clone());
    }
    compile_with_estimator(graph, config, &estimator)
}

/// Like [`compile`], but uses a caller-supplied estimator instead of building
/// one internally.
///
/// This is the entry point batch drivers use to share estimator state across
/// many compilations: build one [`Estimator`] per graph, attach a shared
/// [`EstimateCache`](sgmap_pee::EstimateCache), and compile the same graph
/// against many configurations (GPU counts, mappers, transfer modes) without
/// re-answering estimation queries. The estimator must have been built for
/// this graph (checked cheaply by identity, falling back to name and filter
/// count), target the same GPU model as `config` and have the matching
/// enhancement flag; mismatches are reported as
/// [`FlowError::InvalidConfig`].
///
/// # Errors
///
/// Returns an error if the configuration is degenerate, disagrees with the
/// estimator, or if graph analysis, partitioning or mapping fails.
pub fn compile_with_estimator(
    graph: &StreamGraph,
    config: &FlowConfig,
    estimator: &Estimator<'_>,
) -> Result<CompileResult, FlowError> {
    // partition_graph already validated the config and the estimator
    // agreement; finish by value so the freshly built stage is moved into
    // the result instead of cloned.
    let stage = partition_graph(graph, config, estimator)?;
    finish_compile(config, estimator, stage)
}

/// Maps, plans and generates kernels from an owned stage (no validation —
/// the callers have already checked the config and estimator agreement).
fn finish_compile(
    config: &FlowConfig,
    estimator: &Estimator<'_>,
    stage: PartitionStage,
) -> Result<CompileResult, FlowError> {
    let platform = config.platform();
    let mapping = map_with_traced(
        &stage.pdg,
        &platform,
        config.mapper,
        &config.mapping_options,
        config.trace.as_ref(),
    )?;
    let (plan, kernels) = build_execution_plan_traced(
        estimator,
        &stage.partitioning,
        &stage.pdg,
        &mapping,
        &platform,
        &config.plan,
        config.trace.as_ref(),
    );
    Ok(CompileResult {
        platform,
        partitioning: stage.partitioning,
        pdg: stage.pdg,
        mapping,
        plan,
        kernels,
    })
}

/// Verifies that a caller-supplied estimator agrees with the configuration:
/// same graph (checked cheaply by identity, falling back to name and filter
/// count), same GPU model, same enhancement flag.
fn check_estimator_agreement(
    graph: &StreamGraph,
    config: &FlowConfig,
    estimator: &Estimator<'_>,
) -> Result<(), FlowError> {
    if !std::ptr::eq(estimator.graph(), graph)
        && (estimator.graph().name() != graph.name()
            || estimator.graph().filter_count() != graph.filter_count())
    {
        return Err(FlowError::InvalidConfig(format!(
            "estimator was built for graph '{}' ({} filters) but the flow was handed '{}' ({} filters)",
            estimator.graph().name(),
            estimator.graph().filter_count(),
            graph.name(),
            graph.filter_count()
        )));
    }
    if estimator.gpu() != config.estimation_gpu() {
        return Err(FlowError::InvalidConfig(format!(
            "estimator targets GPU '{}' but the configuration estimates on '{}'",
            estimator.gpu().name,
            config.estimation_gpu().name
        )));
    }
    if estimator.enhanced() != config.enhanced {
        return Err(FlowError::InvalidConfig(format!(
            "estimator enhancement flag ({}) disagrees with the configuration ({})",
            estimator.enhanced(),
            config.enhanced
        )));
    }
    Ok(())
}

/// The GPU-count-independent front half of a compile: the partitioning and
/// the partition dependence graph.
///
/// Both depend only on (graph, GPU model, partitioner, enhancement) — never
/// on the GPU count, the mapper or the transfer mode — so one stage can be
/// fanned out to every platform size via [`compile_from_stage`]. The sweep
/// runner uses this to run the expensive partition search once per compile
/// group instead of once per grid point.
#[derive(Debug, Clone)]
pub struct PartitionStage {
    /// The partitioning of the stream graph.
    pub partitioning: Partitioning,
    /// The partition dependence graph.
    pub pdg: Pdg,
}

/// Runs the flow up to (and including) the partition dependence graph — the
/// part that does not depend on the GPU count.
///
/// # Errors
///
/// Returns an error if the configuration is degenerate, disagrees with the
/// estimator, or if graph analysis or partitioning fails.
pub fn partition_graph(
    graph: &StreamGraph,
    config: &FlowConfig,
    estimator: &Estimator<'_>,
) -> Result<PartitionStage, FlowError> {
    config.validate().map_err(FlowError::InvalidConfig)?;
    check_estimator_agreement(graph, config, estimator)?;
    let trace = config.trace.as_ref();
    let reps = {
        let _span = sgmap_trace::span(trace, "graph.analysis");
        graph.repetition_vector()?
    };
    let partitioning = {
        let mut span = sgmap_trace::span(trace, "partition");
        let partitioning = PartitionRequest::new(estimator)
            .with_kind(config.partitioner)
            .with_algorithm(config.algorithm.clone())
            .with_search(config.partition_search.clone())
            .with_trace(trace)
            .run()?;
        span.arg("partitions", partitioning.len());
        partitioning
    };
    let pdg = {
        let _span = sgmap_trace::span(trace, "pdg.build");
        build_pdg(graph, &reps, &partitioning)
    };
    Ok(PartitionStage { partitioning, pdg })
}

/// Finishes a compile from an existing [`PartitionStage`]: maps the
/// partitions onto the platform and generates the kernels and execution
/// plan.
///
/// The stage must come from [`partition_graph`] on the same graph and
/// estimator with a configuration that differs from `config` at most in its
/// GPU count, mapper, mapping options and plan options — the axes the
/// partitioning does not depend on.
///
/// # Errors
///
/// Returns an error if the configuration is degenerate, disagrees with the
/// estimator, or if mapping fails.
pub fn compile_from_stage(
    graph: &StreamGraph,
    config: &FlowConfig,
    estimator: &Estimator<'_>,
    stage: &PartitionStage,
) -> Result<CompileResult, FlowError> {
    config.validate().map_err(FlowError::InvalidConfig)?;
    check_estimator_agreement(graph, config, estimator)?;
    finish_compile(config, estimator, stage.clone())
}

/// Executes a compiled result on the platform simulator.
pub fn execute(compiled: &CompileResult, config: &FlowConfig) -> RunReport {
    let stats = simulate_plan_traced(&compiled.plan, &compiled.platform, config.trace.as_ref());
    let iterations = u64::from(compiled.plan.n_fragments) * config.plan.iterations_per_fragment;
    RunReport::new(
        compiled.partition_count(),
        compiled.mapping.clone(),
        stats,
        iterations,
    )
}

/// Compiles and executes in one call.
///
/// # Errors
///
/// Returns an error if compilation fails; execution itself cannot fail.
pub fn compile_and_run(graph: &StreamGraph, config: &FlowConfig) -> Result<RunReport, FlowError> {
    let compiled = compile(graph, config)?;
    Ok(execute(&compiled, config))
}

/// Outcome of a fault-injected execution, including any repair the flow
/// performed after a device loss.
#[derive(Debug)]
pub struct FaultedRunReport {
    /// The original execution under the fault plan (possibly partial).
    pub faulted: FaultedExec,
    /// What the repair did, when the original run lost a device.
    pub repair: Option<RepairStats>,
    /// The repaired mapping (never uses the lost device).
    pub recovered_mapping: Option<Mapping>,
    /// The re-execution of the repaired plan under the *same* fault plan.
    pub recovered: Option<FaultedExec>,
}

impl FaultedRunReport {
    /// `true` if either the original or the repaired execution ran to
    /// completion.
    pub fn completed(&self) -> bool {
        self.faulted.completed() || self.recovered.as_ref().is_some_and(FaultedExec::completed)
    }
}

/// Executes a compiled result under a [`FaultPlan`]. When the faulted run
/// loses a device (dropout, or a link failure that isolates one), the flow
/// repairs the mapping onto the survivors
/// ([`repair_mapping`](sgmap_mapping::repair_mapping)), rebuilds the
/// execution plan with the caller's estimator, and re-executes it under the
/// same fault plan — the repaired plan never launches on the lost device, so
/// a dropout no longer stops it.
///
/// # Errors
///
/// Returns an error only if the repair ILP fails without a fallback; healthy
/// and non-device-loss faulted executions cannot fail.
pub fn execute_with_faults(
    compiled: &CompileResult,
    config: &FlowConfig,
    estimator: &Estimator<'_>,
    faults: &FaultPlan,
) -> Result<FaultedRunReport, FlowError> {
    let trace = config.trace.as_ref();
    let faulted =
        simulate_plan_with_faults_traced(&compiled.plan, &compiled.platform, faults, trace);
    if let Some(lost) = faulted.lost_device {
        if compiled.platform.gpu_count() > 1 {
            let (mapping, stats) = repair_mapping(
                &compiled.pdg,
                &compiled.platform,
                &compiled.mapping,
                lost,
                &RepairOptions::default(),
                trace,
            )?;
            let (plan, _kernels) = build_execution_plan_traced(
                estimator,
                &compiled.partitioning,
                &compiled.pdg,
                &mapping,
                &compiled.platform,
                &config.plan,
                trace,
            );
            let recovered =
                simulate_plan_with_faults_traced(&plan, &compiled.platform, faults, trace);
            return Ok(FaultedRunReport {
                faulted,
                repair: Some(stats),
                recovered_mapping: Some(mapping),
                recovered: Some(recovered),
            });
        }
    }
    Ok(FaultedRunReport {
        faulted,
        repair: None,
        recovered_mapping: None,
        recovered: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;

    #[test]
    fn full_flow_runs_for_a_small_app_on_every_gpu_count() {
        let graph = App::FmRadio.build(8).unwrap();
        let mut times = Vec::new();
        for g in 1..=4 {
            let config = FlowConfig::default().with_gpu_count(g);
            let report = compile_and_run(&graph, &config).unwrap();
            assert!(report.time_per_iteration_us > 0.0, "G={g}");
            assert!(report.partition_count >= 1);
            times.push(report.time_per_iteration_us);
        }
        // More GPUs never makes the (communication-aware) mapping much worse.
        assert!(
            times[3] <= times[0] * 1.25,
            "4-GPU {} vs 1-GPU {}",
            times[3],
            times[0]
        );
    }

    #[test]
    fn compile_exposes_all_intermediate_artefacts() {
        let graph = App::MatMul2.build(4).unwrap();
        let config = FlowConfig::default().with_gpu_count(2);
        let compiled = compile(&graph, &config).unwrap();
        assert_eq!(compiled.kernels.len(), compiled.partition_count());
        assert_eq!(
            compiled.mapping.assignment.len(),
            compiled.partition_count()
        );
        assert_eq!(compiled.pdg.len(), compiled.partition_count());
        let report = execute(&compiled, &config);
        assert!(report.makespan_us > 0.0);
    }

    #[test]
    fn spsg_config_produces_exactly_one_partition() {
        let graph = App::Des.build(8).unwrap();
        let report = compile_and_run(&graph, &FlowConfig::spsg()).unwrap();
        assert_eq!(report.partition_count, 1);
        assert_eq!(report.mapping.gpus_used(), 1);
    }

    #[test]
    fn zero_gpu_count_is_a_flow_error_not_a_panic() {
        let graph = App::FmRadio.build(4).unwrap();
        let err = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(0)).unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
        let err = compile(&graph, &FlowConfig::default().with_gpu_count(9)).unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn compile_with_a_shared_estimator_matches_plain_compile() {
        use sgmap_pee::EstimateCache;

        let graph = App::FmRadio.build(8).unwrap();
        let config = FlowConfig::default().with_gpu_count(2);
        let plain = compile_and_run(&graph, &config).unwrap();

        let cache = EstimateCache::shared();
        let estimator = Estimator::new(&graph, config.estimation_gpu().clone())
            .unwrap()
            .with_shared_cache(cache.clone());
        let compiled = compile_with_estimator(&graph, &config, &estimator).unwrap();
        let shared = execute(&compiled, &config);
        assert_eq!(
            plain.time_per_iteration_us.to_bits(),
            shared.time_per_iteration_us.to_bits()
        );
        assert_eq!(plain.partition_count, shared.partition_count);
        assert!(cache.stats().misses > 0);

        // A mismatched estimator is rejected up front.
        let wrong = Estimator::new(&graph, config.estimation_gpu().clone())
            .unwrap()
            .with_enhancement(true);
        let err = compile_with_estimator(&graph, &config, &wrong).unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn one_partition_stage_fans_out_to_every_gpu_count() {
        use sgmap_partition::PartitionSearchOptions;

        let graph = App::FmRadio.build(8).unwrap();
        let estimator =
            Estimator::new(&graph, FlowConfig::default().estimation_gpu().clone()).unwrap();
        let base = FlowConfig::default()
            .with_partition_search(PartitionSearchOptions::new().with_threads(2));
        let stage = partition_graph(&graph, &base, &estimator).unwrap();
        for g in 1..=4 {
            let config = base.clone().with_gpu_count(g);
            let staged = compile_from_stage(&graph, &config, &estimator, &stage).unwrap();
            let monolithic = compile(&graph, &config).unwrap();
            assert_eq!(staged.partitioning, monolithic.partitioning, "G={g}");
            let a = execute(&staged, &config);
            let b = execute(&monolithic, &config);
            assert_eq!(
                a.time_per_iteration_us.to_bits(),
                b.time_per_iteration_us.to_bits(),
                "G={g}"
            );
        }
        // A degenerate GPU count is still rejected at the fan-out stage.
        let err = compile_from_stage(&graph, &base.clone().with_gpu_count(0), &estimator, &stage)
            .unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn faulted_execution_with_an_empty_plan_matches_the_healthy_run() {
        let graph = App::FmRadio.build(8).unwrap();
        let config = FlowConfig::default().with_gpu_count(2);
        let estimator = Estimator::new(&graph, config.estimation_gpu().clone()).unwrap();
        let compiled = compile_with_estimator(&graph, &config, &estimator).unwrap();
        let healthy = execute(&compiled, &config);
        let faulted =
            execute_with_faults(&compiled, &config, &estimator, &FaultPlan::none()).unwrap();
        assert!(faulted.completed());
        assert!(faulted.repair.is_none());
        assert_eq!(
            healthy.makespan_us.to_bits(),
            faulted.faulted.stats.makespan_us.to_bits()
        );
    }

    #[test]
    fn device_dropout_triggers_repair_and_the_repaired_plan_completes() {
        let graph = App::FmRadio.build(8).unwrap();
        let config = FlowConfig::default().with_gpu_count(4);
        let estimator = Estimator::new(&graph, config.estimation_gpu().clone()).unwrap();
        let compiled = compile_with_estimator(&graph, &config, &estimator).unwrap();
        assert!(
            compiled.mapping.gpus_used() > 1,
            "need a multi-GPU mapping to lose a device"
        );
        let healthy = execute(&compiled, &config);
        let lost = compiled.mapping.assignment[0];
        // Drop the device early enough that work remains on it.
        let faults = FaultPlan::none().with_device_dropout(lost, healthy.makespan_us * 0.25);
        let report = execute_with_faults(&compiled, &config, &estimator, &faults).unwrap();
        assert!(!report.faulted.completed());
        assert_eq!(report.faulted.lost_device, Some(lost));
        let repair = report.repair.as_ref().expect("repair ran");
        assert_eq!(repair.lost_gpu, lost);
        let mapping = report.recovered_mapping.as_ref().expect("repaired mapping");
        assert!(mapping.assignment.iter().all(|&j| j != lost));
        let recovered = report.recovered.as_ref().expect("re-execution");
        assert!(recovered.completed(), "repaired plan still failed");
        assert!(report.completed());
        assert!(recovered.stats.makespan_us > 0.0);
    }

    #[test]
    fn previous_work_stack_is_never_faster_than_ours_on_compute_bound_apps() {
        let graph = App::Des.build(12).unwrap();
        let ours = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(4)).unwrap();
        let prev = compile_and_run(&graph, &FlowConfig::previous_work().with_gpu_count(4)).unwrap();
        assert!(
            ours.time_per_iteration_us <= prev.time_per_iteration_us * 1.05,
            "ours {} vs previous {}",
            ours.time_per_iteration_us,
            prev.time_per_iteration_us
        );
    }
}
