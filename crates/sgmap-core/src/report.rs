//! Execution reports and the speedup metrics of the evaluation.

use serde::{Deserialize, Serialize};
use sgmap_gpusim::ExecStats;
use sgmap_mapping::Mapping;

/// The result of running a compiled stream graph on the platform simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of partitions (kernels) the graph was compiled into.
    pub partition_count: usize,
    /// The partition-to-GPU mapping that was executed.
    pub mapping: Mapping,
    /// Raw statistics from the pipelined execution.
    pub stats: ExecStats,
    /// End-to-end makespan in microseconds.
    pub makespan_us: f64,
    /// Average time per steady-state iteration of the stream graph — the
    /// throughput figure all speedups are computed from.
    pub time_per_iteration_us: f64,
}

impl RunReport {
    /// Builds a report from execution statistics.
    pub fn new(
        partition_count: usize,
        mapping: Mapping,
        stats: ExecStats,
        total_iterations: u64,
    ) -> Self {
        let makespan_us = stats.makespan_us;
        let time_per_iteration_us = makespan_us / total_iterations.max(1) as f64;
        RunReport {
            partition_count,
            mapping,
            stats,
            makespan_us,
            time_per_iteration_us,
        }
    }

    /// Speedup of this run over a reference run (reference time / this time).
    pub fn speedup_over(&self, reference: &RunReport) -> f64 {
        speedup(reference.time_per_iteration_us, self.time_per_iteration_us)
    }
}

/// Speedup of `new` over `reference` given their per-iteration times.
pub fn speedup(reference_time_us: f64, new_time_us: f64) -> f64 {
    if new_time_us <= 0.0 {
        return 0.0;
    }
    reference_time_us / new_time_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_mapping::MappingMethod;

    fn report(time_per_iter: f64) -> RunReport {
        let stats = ExecStats {
            makespan_us: time_per_iter * 100.0,
            per_gpu_busy_us: vec![time_per_iter * 100.0],
            per_link_busy_us: vec![],
            per_link_bytes: vec![],
            kernel_total_us: time_per_iter * 100.0,
            transfer_total_us: 0.0,
            n_fragments: 10,
        };
        let mapping = Mapping {
            assignment: vec![0],
            predicted_tmax_us: time_per_iter,
            per_gpu_time_us: vec![time_per_iter],
            per_link_time_us: vec![],
            method: MappingMethod::Greedy,
            optimal: false,
            ilp_stats: sgmap_mapping::SolveStats::default(),
        };
        RunReport::new(1, mapping, stats, 100)
    }

    #[test]
    fn speedup_is_reference_over_new() {
        let slow = report(10.0);
        let fast = report(2.5);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
        assert_eq!(speedup(1.0, 0.0), 0.0);
    }

    #[test]
    fn per_iteration_time_divides_by_iterations() {
        let r = report(7.0);
        assert!((r.time_per_iteration_us - 7.0).abs() < 1e-9);
    }
}
