//! The end-to-end communication-aware mapping flow (Figure 3.1).
//!
//! This crate ties the whole system together: given a stream graph and a
//! platform description, it profiles the filters, partitions the graph, maps
//! the partitions onto the GPUs, generates the kernels and the pipelined
//! execution plan, and finally runs the plan on the platform simulator to
//! obtain the throughput figures the paper's evaluation reports.
//!
//! ```rust
//! use sgmap_core::{compile_and_run, FlowConfig};
//! use sgmap_apps::App;
//!
//! # fn main() -> Result<(), sgmap_core::FlowError> {
//! let graph = App::FmRadio.build(8)?;
//! let report = compile_and_run(&graph, &FlowConfig::default().with_gpu_count(2))?;
//! assert!(report.time_per_iteration_us > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flow;
mod report;

pub use config::FlowConfig;
pub use flow::{
    compile, compile_and_run, compile_from_stage, compile_with_estimator, execute,
    execute_with_faults, partition_graph, CompileResult, FaultedRunReport, FlowError,
    PartitionStage,
};
pub use report::{speedup, RunReport};
pub use sgmap_partition::{Algorithm, MultilevelOptions, PartitionRequest, PartitionSearchOptions};
