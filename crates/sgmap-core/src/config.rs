//! Configuration of the end-to-end flow.

use std::sync::Arc;

use sgmap_codegen::PlanOptions;
use sgmap_gpusim::{GpuSpec, InterconnectSpec, Platform, PlatformSpec, TransferMode};
use sgmap_mapping::{MappingMethod, MappingOptions};
use sgmap_partition::{Algorithm, PartitionSearchOptions, PartitionerKind};
use sgmap_pee::EstimateCache;

/// Everything the flow needs to know besides the stream graph itself.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The target platform: per-GPU device specs plus an interconnect shape.
    /// Built into a concrete [`Platform`] by [`FlowConfig::platform`].
    pub platform: PlatformSpec,
    /// Which partitioner to run.
    pub partitioner: PartitionerKind,
    /// The proposed partitioner's algorithm: the paper's flat four-phase
    /// search (default) or the multilevel coarsen-partition-refine scheme
    /// for very large graphs. Ignored by the baseline and SPSG partitioners.
    pub algorithm: Algorithm,
    /// Thread count and batch size of the proposed partitioner's candidate
    /// search. Any value yields the identical partitioning; threads only
    /// change how fast one compile finishes.
    pub partition_search: PartitionSearchOptions,
    /// Which mapper to run.
    pub mapper: MappingMethod,
    /// Budget and modelling options for the ILP mapper.
    pub mapping_options: MappingOptions,
    /// Enables the splitter/joiner elimination of Chapter V.
    pub enhanced: bool,
    /// Plan generation options (fragments, iterations per fragment, ...).
    pub plan: PlanOptions,
    /// Optional shared estimate cache attached to the estimator
    /// [`compile`](crate::compile) builds internally, so estimation work is
    /// reused across compiles (and, via the sweep crate's cache persistence,
    /// across processes). `None` keeps estimates local to one compile.
    pub estimate_cache: Option<Arc<EstimateCache>>,
    /// Optional trace collector threaded through every stage of the compile
    /// (graph analysis, partition phases, ILP nodes, codegen, execution).
    /// `None` disables tracing at zero cost; the collector is write-only, so
    /// attaching one never changes any result.
    pub trace: Option<Arc<sgmap_trace::Collector>>,
}

impl FlowConfig {
    /// The paper's default stack: the proposed partitioner, the
    /// communication-aware ILP mapper, peer-to-peer transfers, the 4 × M2090
    /// reference platform.
    pub fn new() -> Self {
        FlowConfig {
            platform: PlatformSpec::paper(),
            partitioner: PartitionerKind::Proposed,
            algorithm: Algorithm::Flat,
            // Serial early-exit search: a single interactive compile should
            // not pay for speculative batches. Batch drivers (the sweep
            // runner) override this with `with_partition_search`.
            partition_search: PartitionSearchOptions::serial(),
            mapper: MappingMethod::Ilp,
            mapping_options: MappingOptions::default(),
            enhanced: false,
            plan: PlanOptions::default(),
            estimate_cache: None,
            trace: None,
        }
    }

    /// Attaches a shared estimate cache to every compile run under this
    /// configuration (ignored by the entry points that take an explicit
    /// estimator — attach the cache to that estimator instead).
    pub fn with_estimate_cache(mut self, cache: Arc<EstimateCache>) -> Self {
        self.estimate_cache = Some(cache);
        self
    }

    /// Attaches a trace collector to every compile run under this
    /// configuration (see the `sgmap-trace` crate for the span / counter
    /// vocabulary and the exporters).
    pub fn with_trace(mut self, trace: Arc<sgmap_trace::Collector>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Replaces the platform description.
    pub fn with_platform(mut self, platform: PlatformSpec) -> Self {
        self.platform = platform;
        self
    }

    /// Compatibility wrapper: targets the reference switch tree with
    /// `gpu_count` copies of the current estimation device. Counts outside
    /// the tree's 1–4 are representable and rejected by
    /// [`FlowConfig::validate`].
    pub fn with_gpu_count(mut self, gpu_count: usize) -> Self {
        let gpu = self
            .platform
            .gpus
            .first()
            .cloned()
            .unwrap_or_else(GpuSpec::m2090);
        self.platform = PlatformSpec::reference(gpu, gpu_count);
        self
    }

    /// Compatibility wrapper: replaces the device model on every leaf,
    /// keeping the interconnect shape and GPU count. Reference-tree specs
    /// also refresh their auto-generated name.
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        let count = self.platform.gpu_count();
        if matches!(self.platform.interconnect, InterconnectSpec::ReferenceTree) {
            self.platform.name = format!("{}x{}", gpu.name, count);
        }
        self.platform.gpus = vec![gpu; count];
        self
    }

    /// Selects the partitioner.
    pub fn with_partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Selects the proposed partitioner's algorithm (flat or multilevel).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the mapper.
    pub fn with_mapper(mut self, mapper: MappingMethod) -> Self {
        self.mapper = mapper;
        self
    }

    /// Replaces the partition-search options (candidate-search threads and
    /// speculative batch size).
    pub fn with_partition_search(mut self, options: PartitionSearchOptions) -> Self {
        self.partition_search = options;
        self
    }

    /// Sets the number of partition-search worker threads (`0` = auto),
    /// keeping the default speculative batch size.
    pub fn with_partition_search_threads(mut self, threads: usize) -> Self {
        self.partition_search = PartitionSearchOptions::new().with_threads(threads);
        self
    }

    /// Enables or disables the Chapter V splitter/joiner elimination.
    pub fn with_enhancement(mut self, enhanced: bool) -> Self {
        self.enhanced = enhanced;
        self
    }

    /// Routes inter-GPU transfers through the host (the prior work's
    /// transfer mode) instead of peer-to-peer.
    pub fn with_transfer_mode(mut self, mode: TransferMode) -> Self {
        self.plan.transfer_mode = mode;
        self
    }

    /// The prior work's full stack: SM-only partitioner, hardware-agnostic
    /// round-robin mapping, transfers staged through the host.
    pub fn previous_work() -> Self {
        FlowConfig::new()
            .with_partitioner(PartitionerKind::Baseline)
            .with_mapper(MappingMethod::RoundRobin)
            .with_transfer_mode(TransferMode::ViaHost)
    }

    /// The single-partition single-GPU (SPSG) reference configuration used by
    /// the SOSP metric.
    pub fn spsg() -> Self {
        FlowConfig::new()
            .with_partitioner(PartitionerKind::Single)
            .with_gpu_count(1)
    }

    /// Checks the configuration for degenerate values that would otherwise
    /// produce a nonsense run (or a panic deep inside the platform model).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob found: a platform
    /// whose topology cannot be built (no GPUs, a count that does not fit
    /// the interconnect shape, ...), or a zero fragment / iteration count in
    /// the plan options.
    pub fn validate(&self) -> Result<(), String> {
        if let Err(e) = self.platform.build() {
            return Err(format!("platform '{}': {e}", self.platform.name));
        }
        if self.plan.n_fragments == 0 {
            return Err("plan.n_fragments must be at least 1".to_string());
        }
        if self.plan.iterations_per_fragment == 0 {
            return Err("plan.iterations_per_fragment must be at least 1".to_string());
        }
        Ok(())
    }

    /// The estimation device: the platform's first GPU, for which partition
    /// execution estimates are produced.
    ///
    /// # Panics
    ///
    /// Panics if the platform has no GPUs (which [`FlowConfig::validate`]
    /// rejects).
    pub fn estimation_gpu(&self) -> &GpuSpec {
        self.platform.primary_gpu()
    }

    /// Builds the concrete platform this configuration targets.
    ///
    /// # Panics
    ///
    /// Panics if the platform description is invalid; call
    /// [`FlowConfig::validate`] first for a `Result`-returning path.
    pub fn platform(&self) -> Platform {
        self.platform
            .build()
            .expect("platform validated by FlowConfig::validate")
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_expected_knobs() {
        let ours = FlowConfig::default();
        let prev = FlowConfig::previous_work();
        let spsg = FlowConfig::spsg();
        assert_eq!(ours.partitioner, PartitionerKind::Proposed);
        assert_eq!(prev.partitioner, PartitionerKind::Baseline);
        assert_eq!(prev.mapper, MappingMethod::RoundRobin);
        assert_eq!(prev.plan.transfer_mode, TransferMode::ViaHost);
        assert_eq!(spsg.platform.gpu_count(), 1);
        assert_eq!(spsg.partitioner, PartitionerKind::Single);
        assert_eq!(ours.platform().gpu_count(), 4);
    }

    #[test]
    fn degenerate_configs_fail_validation() {
        assert!(FlowConfig::default().validate().is_ok());
        assert!(FlowConfig::default().with_gpu_count(0).validate().is_err());
        assert!(FlowConfig::default().with_gpu_count(5).validate().is_err());
        let mut zero_fragments = FlowConfig::default();
        zero_fragments.plan.n_fragments = 0;
        assert!(zero_fragments.validate().is_err());
        let mut zero_iterations = FlowConfig::default();
        zero_iterations.plan.iterations_per_fragment = 0;
        assert!(zero_iterations.validate().is_err());
    }

    #[test]
    fn compat_wrappers_build_reference_platforms() {
        let c = FlowConfig::default()
            .with_gpu(GpuSpec::c2070())
            .with_gpu_count(2);
        assert_eq!(c.platform.name, "Tesla C2070x2");
        assert_eq!(c.estimation_gpu().name, "Tesla C2070");
        assert_eq!(c.platform(), Platform::homogeneous(GpuSpec::c2070(), 2));
    }

    #[test]
    fn hierarchical_platforms_pass_validation() {
        let nv = FlowConfig::default().with_platform(PlatformSpec::nvlink8_m2090());
        assert!(nv.validate().is_ok());
        assert_eq!(nv.platform().gpu_count(), 8);
        // An undividable island count is caught by validate, not a panic.
        let mut bad = PlatformSpec::nvlink8_m2090();
        bad.gpus.pop();
        let err = FlowConfig::default()
            .with_platform(bad)
            .validate()
            .unwrap_err();
        assert!(err.contains("islands"), "{err}");
    }
}
