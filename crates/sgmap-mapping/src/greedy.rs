//! Heuristic mappers: LPT + local search, and the hardware-agnostic
//! round-robin baseline.

use sgmap_gpusim::Platform;
use sgmap_partition::Pdg;

use crate::evaluate::evaluate_assignment;
use crate::{Mapping, MappingMethod};

/// Longest-processing-time list scheduling on the GPU workloads, followed by
/// a steepest-descent local search that also sees the communication cost.
///
/// The result is used both as a stand-alone mapper and as the warm start /
/// fallback incumbent of the ILP mapper.
pub fn map_greedy(pdg: &Pdg, platform: &Platform) -> Mapping {
    let allowed: Vec<usize> = (0..platform.gpu_count()).collect();
    map_greedy_on(pdg, platform, &allowed)
}

/// [`map_greedy`] restricted to a subset of the platform's GPUs: LPT and the
/// local search only ever place partitions on GPUs in `allowed`. With all
/// GPUs allowed this is exactly `map_greedy`; the repair path uses it to map
/// onto the survivors of a lost device.
pub(crate) fn map_greedy_on(pdg: &Pdg, platform: &Platform, allowed: &[usize]) -> Mapping {
    assert!(!allowed.is_empty(), "no GPUs to map onto");
    let p = pdg.len();

    // LPT: place partitions in decreasing workload order onto the least
    // loaded GPU, charging each GPU its device-scaled execution time.
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| pdg.times_us[b].total_cmp(&pdg.times_us[a]));
    let mut assignment = vec![allowed[0]; p];
    let mut load = vec![0.0f64; allowed.len()];
    for &i in &order {
        let pos = (0..allowed.len())
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .unwrap_or(0);
        assignment[i] = allowed[pos];
        load[pos] += pdg.times_us[i] * platform.time_factor(allowed[pos]);
    }

    // Local search: move a single partition to another GPU while it improves
    // the full (communication-aware) objective. Ties on the bottleneck time
    // are broken by the total link traffic time, which lets the search peel
    // away pointless cross-GPU cuts one at a time instead of stalling on a
    // plateau where a different link is the bottleneck.
    let secondary =
        |c: &crate::evaluate::MappingCost| -> f64 { c.per_link_time_us.iter().sum::<f64>() };
    let mut cost = evaluate_assignment(pdg, platform, &assignment);
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 50 {
        improved = false;
        rounds += 1;
        for i in 0..p {
            let mut current_gpu = assignment[i];
            for &target in allowed {
                if target == current_gpu {
                    continue;
                }
                assignment[i] = target;
                let candidate = evaluate_assignment(pdg, platform, &assignment);
                let better = candidate.tmax_us < cost.tmax_us - 1e-9
                    || (candidate.tmax_us < cost.tmax_us + 1e-9
                        && secondary(&candidate) < secondary(&cost) - 1e-9);
                if better {
                    cost = candidate;
                    improved = true;
                    current_gpu = target;
                } else {
                    assignment[i] = current_gpu;
                }
            }
        }
    }

    Mapping {
        predicted_tmax_us: cost.tmax_us,
        per_gpu_time_us: cost.per_gpu_time_us,
        per_link_time_us: cost.per_link_time_us,
        assignment,
        method: MappingMethod::Greedy,
        optimal: false,
        ilp_stats: crate::SolveStats::default(),
    }
}

/// The hardware-agnostic mapping in the style of the prior work: partitions
/// are dealt to GPUs in round-robin order of their topological position,
/// without looking at workloads or at the interconnect.
pub fn map_round_robin(pdg: &Pdg, platform: &Platform) -> Mapping {
    let g = platform.gpu_count();
    let order = pdg.topological_order();
    let mut assignment = vec![0usize; pdg.len()];
    for (pos, &i) in order.iter().enumerate() {
        assignment[i] = pos % g;
    }
    let cost = evaluate_assignment(pdg, platform, &assignment);
    Mapping {
        predicted_tmax_us: cost.tmax_us,
        per_gpu_time_us: cost.per_gpu_time_us,
        per_link_time_us: cost.per_link_time_us,
        assignment,
        method: MappingMethod::RoundRobin,
        optimal: false,
        ilp_stats: crate::SolveStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_partition::PdgEdge;

    fn chain_pdg(times: &[f64], edge_bytes: u64) -> Pdg {
        let n = times.len();
        let edges = (0..n - 1)
            .map(|i| PdgEdge {
                from: i,
                to: i + 1,
                bytes_per_iteration: edge_bytes,
            })
            .collect();
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        input[0] = 1024;
        output[n - 1] = 1024;
        Pdg {
            times_us: times.to_vec(),
            edges,
            primary_input_bytes: input,
            primary_output_bytes: output,
        }
    }

    #[test]
    fn greedy_balances_workload() {
        let pdg = chain_pdg(&[40.0, 10.0, 10.0, 10.0, 10.0, 10.0], 64);
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let m = map_greedy(&pdg, &platform);
        // Perfect balance is 45/45.
        let max_gpu = m.per_gpu_time_us.iter().cloned().fold(0.0, f64::max);
        assert!(max_gpu <= 50.0 + 1e-9, "load {max_gpu}");
        assert_eq!(m.gpus_used(), 2);
    }

    #[test]
    fn greedy_avoids_pointless_communication_for_tiny_workloads() {
        // Work is negligible compared with the communication latency, so the
        // best mapping keeps everything on one GPU.
        let pdg = chain_pdg(&[1.0, 1.0, 1.0, 1.0], 1 << 20);
        let platform = Platform::quad_m2090();
        let m = map_greedy(&pdg, &platform);
        assert_eq!(m.gpus_used(), 1, "assignment {:?}", m.assignment);
    }

    #[test]
    fn round_robin_spreads_partitions_regardless_of_cost() {
        let pdg = chain_pdg(&[1.0, 1.0, 1.0, 1.0], 1 << 20);
        let platform = Platform::quad_m2090();
        let m = map_round_robin(&pdg, &platform);
        assert_eq!(m.gpus_used(), 4);
        // And therefore pays for it.
        let greedy = map_greedy(&pdg, &platform);
        assert!(m.predicted_tmax_us >= greedy.predicted_tmax_us);
    }

    #[test]
    fn single_gpu_platform_trivially_maps_everything_to_gpu_zero() {
        let pdg = chain_pdg(&[5.0, 6.0, 7.0], 128);
        let platform = Platform::single_m2090();
        let g = map_greedy(&pdg, &platform);
        let r = map_round_robin(&pdg, &platform);
        assert!(g.assignment.iter().all(|&a| a == 0));
        assert!(r.assignment.iter().all(|&a| a == 0));
        assert!((g.predicted_tmax_us - r.predicted_tmax_us).abs() < 1e-9);
    }
}
