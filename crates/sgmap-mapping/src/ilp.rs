//! The ILP formulation of communication-aware mapping (Section 3.2.2).
//!
//! Decision variables:
//!
//! * `n_ij` (binary) — partition `i` runs on GPU `j`,
//! * `x_el` (continuous, 0..1) — PDG edge `e`'s traffic crosses link `l`;
//!   linearised as `x_el >= A + B - 1` where `A` (`B`) says the producer
//!   (consumer) sits on the link's source (destination) side, derived from
//!   the topology's `dtlist(l)`,
//! * `d_l` (continuous) — bytes crossing link `l`, including the primary
//!   input/output travelling between the host and the partitions' GPUs,
//! * `Tmax` (continuous) — the objective.
//!
//! Per-transfer latency is excluded from the static objective (it is hidden
//! by the N-fragment pipelining and charged by the executor instead), so the
//! per-link time is the pure bandwidth term `d_l / BW`.
//!
//! The model is warm-started with the greedy mapping and solved by the
//! branch-and-bound solver of `sgmap-ilp` under a configurable node/time
//! budget; if the budget expires, the best incumbent (never worse than the
//! greedy warm start) is returned.

use std::time::Duration;

use sgmap_gpusim::{Endpoint, LinkId, Platform};
use sgmap_ilp::{IlpError, Model, ObjectiveSense, SolutionStatus, Solver, SolverOptions, VarId};
use sgmap_partition::Pdg;

use crate::evaluate::evaluate_assignment;
use crate::greedy::map_greedy;
use crate::{Mapping, MappingMethod};

/// Budget and modelling options for the ILP mapper.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// Wall-clock budget for the branch-and-bound search.
    pub time_limit: Duration,
    /// Node budget for the branch-and-bound search.
    pub max_nodes: usize,
    /// When `false`, the communication constraints are dropped and the ILP
    /// only balances the per-GPU workload (an ablation of the paper's main
    /// contribution).
    pub comm_aware: bool,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            time_limit: Duration::from_secs(5),
            max_nodes: 600,
            comm_aware: true,
        }
    }
}

/// Bookkeeping for the auxiliary variables of one PCIe link.
struct LinkVars {
    link: LinkId,
    d: VarId,
    /// `(edge index, x_el)` pairs.
    x: Vec<(usize, VarId)>,
}

/// Solves the partition-to-GPU mapping with the ILP formulation.
///
/// # Errors
///
/// Returns an error only if the solver fails in an unexpected way; budget
/// exhaustion falls back to the best feasible solution (at worst the greedy
/// warm start).
pub fn map_ilp(
    pdg: &Pdg,
    platform: &Platform,
    options: &MappingOptions,
) -> Result<Mapping, IlpError> {
    map_ilp_traced(pdg, platform, options, None)
}

/// [`map_ilp`] with an optional trace collector, forwarded into the
/// branch-and-bound solver (per-node `ilp.node` spans plus pivot /
/// warm-start counters from its [`sgmap_ilp::SolveStats`]).
///
/// # Errors
///
/// Same as [`map_ilp`].
pub fn map_ilp_traced(
    pdg: &Pdg,
    platform: &Platform,
    options: &MappingOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Mapping, IlpError> {
    let g = platform.gpu_count();
    let p = pdg.len();
    if p == 0 {
        return Ok(Mapping {
            assignment: Vec::new(),
            predicted_tmax_us: 0.0,
            per_gpu_time_us: vec![0.0; g],
            per_link_time_us: vec![0.0; platform.topology.link_count()],
            method: MappingMethod::Ilp,
            optimal: true,
            ilp_stats: sgmap_ilp::SolveStats::default(),
        });
    }
    let greedy = map_greedy(pdg, platform);
    if g == 1 {
        return Ok(Mapping {
            method: MappingMethod::Ilp,
            optimal: true,
            ..greedy
        });
    }

    let topo = &platform.topology;

    let mut model = Model::new(ObjectiveSense::Minimize);
    let tmax = model.add_continuous("tmax", 1.0);

    // n_ij.
    let mut n: Vec<Vec<VarId>> = Vec::with_capacity(p);
    for i in 0..p {
        n.push(
            (0..g)
                .map(|j| model.add_binary(format!("n_{i}_{j}"), 0.0))
                .collect(),
        );
    }
    // Assignment constraints (III.5).
    for ni in &n {
        model.add_constraint_eq(ni.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    }
    // GPU time constraints (III.1, III.4), with each device charging its
    // own (throughput-scaled) execution time.
    for j in 0..g {
        let factor = platform.time_factor(j);
        let mut terms: Vec<(VarId, f64)> = n
            .iter()
            .zip(&pdg.times_us)
            .map(|(ni, &t)| (ni[j], t * factor))
            .collect();
        terms.push((tmax, -1.0));
        model.add_constraint_le(terms, 0.0);
    }
    // Valid cuts that tighten the LP relaxation (they cut off fractional
    // assignments but no integer one): the busiest GPU can never beat the
    // average load, nor the largest single partition. The revised simplex
    // handles variable bounds natively, so they cost no rows.
    let total_work: f64 = pdg.times_us.iter().sum();
    let max_partition = pdg.times_us.iter().cloned().fold(0.0f64, f64::max);
    // With heterogeneous devices the aggregate capacity is the sum of the
    // inverse time factors (exactly `g` on homogeneous platforms), and the
    // largest partition at best runs on the fastest device.
    let capacity: f64 = (0..g).map(|j| 1.0 / platform.time_factor(j)).sum();
    let fastest = (0..g)
        .map(|j| platform.time_factor(j))
        .fold(f64::INFINITY, f64::min);
    model.set_bounds(
        tmax,
        (total_work / capacity).max(max_partition * fastest),
        f64::INFINITY,
    );

    let mut link_vars: Vec<LinkVars> = Vec::new();
    if options.comm_aware {
        for link in topo.link_ids() {
            let dtlist = topo.dtlist(link);
            let mut srcs: Vec<usize> = dtlist.iter().map(|&(k, _)| k).collect();
            let mut dsts: Vec<usize> = dtlist.iter().map(|&(_, h)| h).collect();
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();

            // Accumulate the load expression; skip the link entirely if
            // nothing can ever use it.
            let mut load_terms: Vec<(VarId, f64)> = Vec::new();
            let mut x_vars: Vec<(usize, VarId)> = Vec::new();

            let d_l = model.add_continuous(format!("d_{}", link.index()), 0.0);

            if !srcs.is_empty() && !dsts.is_empty() {
                for (e_idx, e) in pdg.edges.iter().enumerate() {
                    if e.bytes_per_iteration == 0 {
                        continue;
                    }
                    let x = model.add_continuous(format!("x_{}_{}", e_idx, link.index()), 0.0);
                    // The crossing indicator lives in [0, 1] (a native
                    // bound, not a row).
                    model.set_bounds(x, 0.0, 1.0);
                    // x >= A + B - 1  <=>  A + B - x <= 1.
                    let mut cross: Vec<(VarId, f64)> =
                        srcs.iter().map(|&k| (n[e.from][k], 1.0)).collect();
                    cross.extend(dsts.iter().map(|&h| (n[e.to][h], 1.0)));
                    cross.push((x, -1.0));
                    model.add_constraint_le(cross, 1.0);
                    load_terms.push((x, e.bytes_per_iteration as f64));
                    x_vars.push((e_idx, x));
                }
            }
            // Primary input / output over host routes.
            for (i, ni) in n.iter().enumerate() {
                for (j, &nij) in ni.iter().enumerate() {
                    if pdg.primary_input_bytes[i] > 0
                        && topo.route(Endpoint::Host, Endpoint::Gpu(j)).contains(&link)
                    {
                        load_terms.push((nij, pdg.primary_input_bytes[i] as f64));
                    }
                    if pdg.primary_output_bytes[i] > 0
                        && topo.route(Endpoint::Gpu(j), Endpoint::Host).contains(&link)
                    {
                        load_terms.push((nij, pdg.primary_output_bytes[i] as f64));
                    }
                }
            }
            if load_terms.is_empty() {
                continue;
            }
            // d_l >= load  <=>  load - d_l <= 0.
            load_terms.push((d_l, -1.0));
            model.add_constraint_le(load_terms, 0.0);
            // d_l / BW_l <= Tmax  (III.2, III.3, with the latency amortised
            // away by pipelining and BW_l the link's own bandwidth).
            model.add_constraint_le(
                vec![(d_l, 1.0 / topo.link_bytes_per_us(link)), (tmax, -1.0)],
                0.0,
            );
            link_vars.push(LinkVars {
                link,
                d: d_l,
                x: x_vars,
            });
        }
    }

    // Warm start from the greedy assignment: fill in every variable so the
    // point is feasible for the full model.
    let warm = {
        let mut values = vec![0.0; model.num_vars()];
        for (i, &gpu) in greedy.assignment.iter().enumerate() {
            values[n[i][gpu].index()] = 1.0;
        }
        let cost = evaluate_assignment(pdg, platform, &greedy.assignment);
        let mut t = cost.per_gpu_time_us.iter().cloned().fold(0.0f64, f64::max);
        for lv in &link_vars {
            let bytes = cost.per_link_bytes[lv.link.index()];
            values[lv.d.index()] = bytes as f64;
            t = t.max(bytes as f64 / topo.link_bytes_per_us(lv.link));
            for &(e_idx, x) in &lv.x {
                let e = &pdg.edges[e_idx];
                let (src, dst) = (greedy.assignment[e.from], greedy.assignment[e.to]);
                let crossing = src != dst
                    && topo
                        .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))
                        .contains(&lv.link);
                values[x.index()] = if crossing { 1.0 } else { 0.0 };
            }
        }
        values[tmax.index()] = t;
        values
    };

    let solver_options = SolverOptions {
        max_nodes: options.max_nodes,
        time_limit: options.time_limit,
        ..SolverOptions::default()
    };
    let solution = match Solver::with_options(solver_options)
        .warm_start(warm)
        .with_trace(trace.cloned())
        .solve(&model)
    {
        Ok(s) => s,
        // Budget exhaustion or numerical trouble: the greedy mapping is a
        // valid (warm-start) solution of the same model, so keep it.
        Err(IlpError::NoIntegerSolution) | Err(IlpError::Numerical(_)) => {
            return Ok(Mapping {
                method: MappingMethod::Ilp,
                optimal: false,
                ..greedy
            });
        }
        Err(e) => return Err(e),
    };
    let ilp_stats = solution.stats;

    let mut assignment = vec![0usize; p];
    for (i, ni) in n.iter().enumerate() {
        assignment[i] = ni
            .iter()
            .position(|&v| solution.binary_value(v))
            .unwrap_or(0);
    }
    // Re-evaluate with the shared cost model (authoritative numbers); keep
    // the greedy mapping if the budget-limited search somehow did worse.
    // The workload-only ablation skips that guard on purpose: its whole point
    // is to show what ignoring communication costs.
    let cost = evaluate_assignment(pdg, platform, &assignment);
    if !options.comm_aware || cost.tmax_us <= greedy.predicted_tmax_us + 1e-6 {
        Ok(Mapping {
            assignment,
            predicted_tmax_us: cost.tmax_us,
            per_gpu_time_us: cost.per_gpu_time_us,
            per_link_time_us: cost.per_link_time_us,
            method: MappingMethod::Ilp,
            optimal: solution.status == SolutionStatus::Optimal,
            ilp_stats,
        })
    } else {
        Ok(Mapping {
            method: MappingMethod::Ilp,
            optimal: false,
            ilp_stats,
            ..greedy
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::map_round_robin;
    use sgmap_partition::PdgEdge;

    fn pdg(times: Vec<f64>, edges: Vec<PdgEdge>) -> Pdg {
        let n = times.len();
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        input[0] = 256;
        output[n - 1] = 256;
        Pdg {
            times_us: times,
            edges,
            primary_input_bytes: input,
            primary_output_bytes: output,
        }
    }

    #[test]
    fn ilp_balances_a_simple_chain_optimally() {
        // Four partitions 8/6/6/8 on two GPUs: the optimum splits 14/14.
        let p = pdg(
            vec![8.0, 6.0, 6.0, 8.0],
            (0..3)
                .map(|i| PdgEdge {
                    from: i,
                    to: i + 1,
                    bytes_per_iteration: 16,
                })
                .collect(),
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let m = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
        let max_gpu = m.per_gpu_time_us.iter().cloned().fold(0.0, f64::max);
        assert!(max_gpu <= 14.0 + 1e-6, "per-GPU {:?}", m.per_gpu_time_us);
        assert_eq!(m.method, MappingMethod::Ilp);
    }

    #[test]
    fn ilp_is_never_worse_than_greedy_or_round_robin() {
        let p = pdg(
            vec![30.0, 5.0, 25.0, 10.0, 8.0, 22.0],
            vec![
                PdgEdge {
                    from: 0,
                    to: 1,
                    bytes_per_iteration: 4_096,
                },
                PdgEdge {
                    from: 1,
                    to: 2,
                    bytes_per_iteration: 65_536,
                },
                PdgEdge {
                    from: 2,
                    to: 3,
                    bytes_per_iteration: 512,
                },
                PdgEdge {
                    from: 3,
                    to: 4,
                    bytes_per_iteration: 131_072,
                },
                PdgEdge {
                    from: 4,
                    to: 5,
                    bytes_per_iteration: 1_024,
                },
            ],
        );
        for gpus in [2usize, 3, 4] {
            let platform = Platform::quad_m2090().with_gpu_count(gpus);
            let ilp = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
            let greedy = map_greedy(&p, &platform);
            let rr = map_round_robin(&p, &platform);
            assert!(
                ilp.predicted_tmax_us <= greedy.predicted_tmax_us + 1e-6,
                "G={gpus}: ilp {} > greedy {}",
                ilp.predicted_tmax_us,
                greedy.predicted_tmax_us
            );
            assert!(ilp.predicted_tmax_us <= rr.predicted_tmax_us + 1e-6);
        }
    }

    #[test]
    fn communication_awareness_avoids_splitting_chatty_partitions() {
        // Two heavy partitions exchanging a huge volume of data plus two
        // light ones: a workload-only mapper splits the heavy pair across
        // GPUs; the communication-aware ILP keeps them together.
        let p = pdg(
            vec![50.0, 50.0, 10.0, 10.0],
            vec![
                PdgEdge {
                    from: 0,
                    to: 1,
                    bytes_per_iteration: 3_000_000,
                },
                PdgEdge {
                    from: 1,
                    to: 2,
                    bytes_per_iteration: 64,
                },
                PdgEdge {
                    from: 2,
                    to: 3,
                    bytes_per_iteration: 64,
                },
            ],
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let aware = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
        assert_eq!(
            aware.assignment[0], aware.assignment[1],
            "chatty partitions should stay together: {:?}",
            aware.assignment
        );
        // Splitting them would cost ~500 us of link time.
        assert!(aware.predicted_tmax_us < 200.0);
    }

    #[test]
    fn workload_only_ablation_ignores_the_interconnect() {
        let p = pdg(
            vec![50.0, 50.0],
            vec![PdgEdge {
                from: 0,
                to: 1,
                bytes_per_iteration: 3_000_000,
            }],
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let blind = map_ilp(
            &p,
            &platform,
            &MappingOptions {
                comm_aware: false,
                ..MappingOptions::default()
            },
        )
        .unwrap();
        // The workload-only model happily splits them (each GPU 50 us)...
        assert_ne!(blind.assignment[0], blind.assignment[1]);
        // ...which the true cost model reveals to be communication bound.
        let cost = evaluate_assignment(&p, &platform, &blind.assignment);
        assert!(cost.communication_bound());
    }

    #[test]
    fn single_gpu_is_trivially_optimal() {
        let p = pdg(vec![5.0, 7.0], vec![]);
        let m = map_ilp(&p, &Platform::single_m2090(), &MappingOptions::default()).unwrap();
        assert!(m.optimal);
        assert!(m.assignment.iter().all(|&a| a == 0));
    }
}
