//! The ILP formulation of communication-aware mapping (Section 3.2.2).
//!
//! Decision variables:
//!
//! * `n_ij` (binary) — partition `i` runs on GPU `j`,
//! * `x_el` (continuous, 0..1) — PDG edge `e`'s traffic crosses link `l`;
//!   linearised as `x_el >= A + B - 1` where `A` (`B`) says the producer
//!   (consumer) sits on the link's source (destination) side, derived from
//!   the topology's `dtlist(l)`,
//! * `d_l` (continuous) — bytes crossing link `l`, including the primary
//!   input/output travelling between the host and the partitions' GPUs,
//! * `Tmax` (continuous) — the objective.
//!
//! Per-transfer latency is excluded from the static objective (it is hidden
//! by the N-fragment pipelining and charged by the executor instead), so the
//! per-link time is the pure bandwidth term `d_l / BW`.
//!
//! The model is warm-started with the greedy mapping and solved by the
//! branch-and-bound solver of `sgmap-ilp` under a configurable node/time
//! budget; if the budget expires, the best incumbent (never worse than the
//! greedy warm start) is returned.

use std::time::Duration;

use sgmap_gpusim::{Endpoint, LinkId, Platform};
use sgmap_ilp::{IlpError, Model, ObjectiveSense, SolutionStatus, Solver, SolverOptions, VarId};
use sgmap_partition::Pdg;

use crate::evaluate::evaluate_assignment;
use crate::greedy::map_greedy;
use crate::{Mapping, MappingMethod};

/// Budget and modelling options for the ILP mapper.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// Wall-clock budget for the branch-and-bound search.
    pub time_limit: Duration,
    /// Node budget for the branch-and-bound search.
    pub max_nodes: usize,
    /// When `false`, the communication constraints are dropped and the ILP
    /// only balances the per-GPU workload (an ablation of the paper's main
    /// contribution).
    pub comm_aware: bool,
    /// Stop the search once the incumbent is proven within this relative gap
    /// of the best bound (`0.0` searches to optimality).
    pub relative_gap: f64,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            time_limit: Duration::from_secs(5),
            max_nodes: 600,
            comm_aware: true,
            relative_gap: 0.0,
        }
    }
}

/// Bookkeeping for the auxiliary variables of one PCIe link.
struct LinkVars {
    link: LinkId,
    d: VarId,
    /// `(edge index, x_el)` pairs.
    x: Vec<(usize, VarId)>,
}

/// Solves the partition-to-GPU mapping with the ILP formulation.
///
/// # Errors
///
/// Returns an error only if the solver fails in an unexpected way; budget
/// exhaustion falls back to the best feasible solution (at worst the greedy
/// warm start).
pub fn map_ilp(
    pdg: &Pdg,
    platform: &Platform,
    options: &MappingOptions,
) -> Result<Mapping, IlpError> {
    map_ilp_traced(pdg, platform, options, None)
}

/// [`map_ilp`] with an optional trace collector, forwarded into the
/// branch-and-bound solver (per-node `ilp.node` spans plus pivot /
/// warm-start counters from its [`sgmap_ilp::SolveStats`]).
///
/// # Errors
///
/// Same as [`map_ilp`].
pub fn map_ilp_traced(
    pdg: &Pdg,
    platform: &Platform,
    options: &MappingOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Mapping, IlpError> {
    let allowed: Vec<usize> = (0..platform.gpu_count()).collect();
    let incumbent = map_greedy(pdg, platform);
    map_ilp_on(pdg, platform, options, &allowed, incumbent, trace)
}

/// The ILP mapper restricted to a subset of the platform's GPUs: only GPUs in
/// `allowed` get assignment columns, so the solution never places a partition
/// elsewhere. `incumbent` is the warm start and fallback — it must already
/// respect the restriction. `map_ilp_traced` is the unrestricted special
/// case; the repair path re-solves over the survivors of a lost device.
pub(crate) fn map_ilp_on(
    pdg: &Pdg,
    platform: &Platform,
    options: &MappingOptions,
    allowed: &[usize],
    incumbent: Mapping,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Mapping, IlpError> {
    let g = platform.gpu_count();
    let p = pdg.len();
    assert!(!allowed.is_empty(), "no GPUs to map onto");
    debug_assert!(incumbent.assignment.iter().all(|gpu| allowed.contains(gpu)));
    if p == 0 {
        return Ok(Mapping {
            assignment: Vec::new(),
            predicted_tmax_us: 0.0,
            per_gpu_time_us: vec![0.0; g],
            per_link_time_us: vec![0.0; platform.topology.link_count()],
            method: MappingMethod::Ilp,
            optimal: true,
            ilp_stats: sgmap_ilp::SolveStats::default(),
        });
    }
    if allowed.len() == 1 {
        let assignment = vec![allowed[0]; p];
        let cost = evaluate_assignment(pdg, platform, &assignment);
        return Ok(Mapping {
            assignment,
            predicted_tmax_us: cost.tmax_us,
            per_gpu_time_us: cost.per_gpu_time_us,
            per_link_time_us: cost.per_link_time_us,
            method: MappingMethod::Ilp,
            optimal: true,
            ilp_stats: sgmap_ilp::SolveStats::default(),
        });
    }

    let topo = &platform.topology;
    // Position of a global GPU index among the allowed columns.
    let mut pos_of: Vec<Option<usize>> = vec![None; g];
    for (pos, &j) in allowed.iter().enumerate() {
        pos_of[j] = Some(pos);
    }

    let mut model = Model::new(ObjectiveSense::Minimize);
    let tmax = model.add_continuous("tmax", 1.0);

    // n_ij, one column per allowed GPU.
    let mut n: Vec<Vec<VarId>> = Vec::with_capacity(p);
    for i in 0..p {
        n.push(
            allowed
                .iter()
                .map(|&j| model.add_binary(format!("n_{i}_{j}"), 0.0))
                .collect(),
        );
    }
    // Assignment constraints (III.5).
    for ni in &n {
        model.add_constraint_eq(ni.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    }
    // GPU time constraints (III.1, III.4), with each device charging its
    // own (throughput-scaled) execution time.
    for (pos, &j) in allowed.iter().enumerate() {
        let factor = platform.time_factor(j);
        let mut terms: Vec<(VarId, f64)> = n
            .iter()
            .zip(&pdg.times_us)
            .map(|(ni, &t)| (ni[pos], t * factor))
            .collect();
        terms.push((tmax, -1.0));
        model.add_constraint_le(terms, 0.0);
    }
    // Valid cuts that tighten the LP relaxation (they cut off fractional
    // assignments but no integer one): the busiest GPU can never beat the
    // average load, nor the largest single partition. The revised simplex
    // handles variable bounds natively, so they cost no rows.
    let total_work: f64 = pdg.times_us.iter().sum();
    let max_partition = pdg.times_us.iter().cloned().fold(0.0f64, f64::max);
    // With heterogeneous devices the aggregate capacity is the sum of the
    // inverse time factors (exactly the GPU count on homogeneous platforms),
    // and the largest partition at best runs on the fastest allowed device.
    let capacity: f64 = allowed.iter().map(|&j| 1.0 / platform.time_factor(j)).sum();
    let fastest = allowed
        .iter()
        .map(|&j| platform.time_factor(j))
        .fold(f64::INFINITY, f64::min);
    model.set_bounds(
        tmax,
        (total_work / capacity).max(max_partition * fastest),
        f64::INFINITY,
    );

    let mut link_vars: Vec<LinkVars> = Vec::new();
    if options.comm_aware {
        for link in topo.link_ids() {
            let dtlist = topo.dtlist(link);
            // Source/destination sides of the link, restricted to GPUs that
            // actually have assignment columns.
            let mut srcs: Vec<usize> = dtlist
                .iter()
                .filter(|&&(k, _)| pos_of[k].is_some())
                .map(|&(k, _)| k)
                .collect();
            let mut dsts: Vec<usize> = dtlist
                .iter()
                .filter(|&&(_, h)| pos_of[h].is_some())
                .map(|&(_, h)| h)
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();

            // Accumulate the load expression; skip the link entirely if
            // nothing can ever use it.
            let mut load_terms: Vec<(VarId, f64)> = Vec::new();
            let mut x_vars: Vec<(usize, VarId)> = Vec::new();

            let d_l = model.add_continuous(format!("d_{}", link.index()), 0.0);

            if !srcs.is_empty() && !dsts.is_empty() {
                for (e_idx, e) in pdg.edges.iter().enumerate() {
                    if e.bytes_per_iteration == 0 {
                        continue;
                    }
                    let x = model.add_continuous(format!("x_{}_{}", e_idx, link.index()), 0.0);
                    // The crossing indicator lives in [0, 1] (a native
                    // bound, not a row).
                    model.set_bounds(x, 0.0, 1.0);
                    // x >= A + B - 1  <=>  A + B - x <= 1.
                    let mut cross: Vec<(VarId, f64)> = srcs
                        .iter()
                        .map(|&k| (n[e.from][pos_of[k].expect("filtered")], 1.0))
                        .collect();
                    cross.extend(
                        dsts.iter()
                            .map(|&h| (n[e.to][pos_of[h].expect("filtered")], 1.0)),
                    );
                    cross.push((x, -1.0));
                    model.add_constraint_le(cross, 1.0);
                    load_terms.push((x, e.bytes_per_iteration as f64));
                    x_vars.push((e_idx, x));
                }
            }
            // Primary input / output over host routes.
            for (i, ni) in n.iter().enumerate() {
                for (pos, &j) in allowed.iter().enumerate() {
                    let nij = ni[pos];
                    if pdg.primary_input_bytes[i] > 0
                        && topo.route(Endpoint::Host, Endpoint::Gpu(j)).contains(&link)
                    {
                        load_terms.push((nij, pdg.primary_input_bytes[i] as f64));
                    }
                    if pdg.primary_output_bytes[i] > 0
                        && topo.route(Endpoint::Gpu(j), Endpoint::Host).contains(&link)
                    {
                        load_terms.push((nij, pdg.primary_output_bytes[i] as f64));
                    }
                }
            }
            if load_terms.is_empty() {
                continue;
            }
            // d_l >= load  <=>  load - d_l <= 0.
            load_terms.push((d_l, -1.0));
            model.add_constraint_le(load_terms, 0.0);
            // d_l / BW_l <= Tmax  (III.2, III.3, with the latency amortised
            // away by pipelining and BW_l the link's own bandwidth).
            model.add_constraint_le(
                vec![(d_l, 1.0 / topo.link_bytes_per_us(link)), (tmax, -1.0)],
                0.0,
            );
            link_vars.push(LinkVars {
                link,
                d: d_l,
                x: x_vars,
            });
        }
    }

    // Warm start from the incumbent assignment: fill in every variable so
    // the point is feasible for the full model.
    let warm = {
        let mut values = vec![0.0; model.num_vars()];
        for (i, &gpu) in incumbent.assignment.iter().enumerate() {
            values[n[i][pos_of[gpu].expect("incumbent uses allowed GPUs")].index()] = 1.0;
        }
        let cost = evaluate_assignment(pdg, platform, &incumbent.assignment);
        let mut t = cost.per_gpu_time_us.iter().cloned().fold(0.0f64, f64::max);
        for lv in &link_vars {
            let bytes = cost.per_link_bytes[lv.link.index()];
            values[lv.d.index()] = bytes as f64;
            t = t.max(bytes as f64 / topo.link_bytes_per_us(lv.link));
            for &(e_idx, x) in &lv.x {
                let e = &pdg.edges[e_idx];
                let (src, dst) = (incumbent.assignment[e.from], incumbent.assignment[e.to]);
                let crossing = src != dst
                    && topo
                        .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))
                        .contains(&lv.link);
                values[x.index()] = if crossing { 1.0 } else { 0.0 };
            }
        }
        values[tmax.index()] = t;
        values
    };

    let solver_options = SolverOptions {
        max_nodes: options.max_nodes,
        time_limit: options.time_limit,
        relative_gap: options.relative_gap,
        ..SolverOptions::default()
    };
    let solution = match Solver::with_options(solver_options)
        .warm_start(warm)
        .with_trace(trace.cloned())
        .solve(&model)
    {
        Ok(s) => {
            // A Feasible (not Optimal) status means the node or time budget
            // ran out mid-search — surface it instead of leaving it buried
            // in SolveStats.
            if s.status == SolutionStatus::Feasible && options.relative_gap == 0.0 {
                sgmap_trace::add(trace, "ilp.budget_exhausted", 1);
                sgmap_trace::warn(
                    trace,
                    "ilp.budget_exhausted",
                    format!(
                        "mapping ILP stopped at its node/time budget after {} nodes \
                         (proven gap {:.4}); using the best incumbent",
                        s.nodes_explored, s.stats.optimality_gap
                    ),
                );
            }
            s
        }
        // Budget exhaustion or numerical trouble: the incumbent is a valid
        // (warm-start) solution of the same model, so keep it.
        Err(IlpError::NoIntegerSolution) => {
            sgmap_trace::add(trace, "ilp.budget_exhausted", 1);
            sgmap_trace::warn(
                trace,
                "ilp.budget_exhausted",
                "mapping ILP found no integer solution within budget; keeping the greedy mapping"
                    .to_string(),
            );
            return Ok(Mapping {
                method: MappingMethod::Ilp,
                optimal: false,
                ..incumbent
            });
        }
        Err(IlpError::Numerical(msg)) => {
            sgmap_trace::add(trace, "ilp.numerical_fallbacks", 1);
            sgmap_trace::warn(
                trace,
                "ilp.numerical_fallback",
                format!("mapping ILP hit numerical trouble ({msg}); keeping the greedy mapping"),
            );
            return Ok(Mapping {
                method: MappingMethod::Ilp,
                optimal: false,
                ..incumbent
            });
        }
        Err(e) => return Err(e),
    };
    let ilp_stats = solution.stats;

    let mut assignment = vec![0usize; p];
    for (i, ni) in n.iter().enumerate() {
        let pos = ni
            .iter()
            .position(|&v| solution.binary_value(v))
            .unwrap_or(0);
        assignment[i] = allowed[pos];
    }
    // Re-evaluate with the shared cost model (authoritative numbers); keep
    // the incumbent mapping if the budget-limited search somehow did worse.
    // The workload-only ablation skips that guard on purpose: its whole point
    // is to show what ignoring communication costs.
    let cost = evaluate_assignment(pdg, platform, &assignment);
    if !options.comm_aware || cost.tmax_us <= incumbent.predicted_tmax_us + 1e-6 {
        Ok(Mapping {
            assignment,
            predicted_tmax_us: cost.tmax_us,
            per_gpu_time_us: cost.per_gpu_time_us,
            per_link_time_us: cost.per_link_time_us,
            method: MappingMethod::Ilp,
            optimal: solution.status == SolutionStatus::Optimal,
            ilp_stats,
        })
    } else {
        Ok(Mapping {
            method: MappingMethod::Ilp,
            optimal: false,
            ilp_stats,
            ..incumbent
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::map_round_robin;
    use sgmap_partition::PdgEdge;

    fn pdg(times: Vec<f64>, edges: Vec<PdgEdge>) -> Pdg {
        let n = times.len();
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        input[0] = 256;
        output[n - 1] = 256;
        Pdg {
            times_us: times,
            edges,
            primary_input_bytes: input,
            primary_output_bytes: output,
        }
    }

    #[test]
    fn ilp_balances_a_simple_chain_optimally() {
        // Four partitions 8/6/6/8 on two GPUs: the optimum splits 14/14.
        let p = pdg(
            vec![8.0, 6.0, 6.0, 8.0],
            (0..3)
                .map(|i| PdgEdge {
                    from: i,
                    to: i + 1,
                    bytes_per_iteration: 16,
                })
                .collect(),
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let m = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
        let max_gpu = m.per_gpu_time_us.iter().cloned().fold(0.0, f64::max);
        assert!(max_gpu <= 14.0 + 1e-6, "per-GPU {:?}", m.per_gpu_time_us);
        assert_eq!(m.method, MappingMethod::Ilp);
    }

    #[test]
    fn ilp_is_never_worse_than_greedy_or_round_robin() {
        let p = pdg(
            vec![30.0, 5.0, 25.0, 10.0, 8.0, 22.0],
            vec![
                PdgEdge {
                    from: 0,
                    to: 1,
                    bytes_per_iteration: 4_096,
                },
                PdgEdge {
                    from: 1,
                    to: 2,
                    bytes_per_iteration: 65_536,
                },
                PdgEdge {
                    from: 2,
                    to: 3,
                    bytes_per_iteration: 512,
                },
                PdgEdge {
                    from: 3,
                    to: 4,
                    bytes_per_iteration: 131_072,
                },
                PdgEdge {
                    from: 4,
                    to: 5,
                    bytes_per_iteration: 1_024,
                },
            ],
        );
        for gpus in [2usize, 3, 4] {
            let platform = Platform::quad_m2090().with_gpu_count(gpus);
            let ilp = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
            let greedy = map_greedy(&p, &platform);
            let rr = map_round_robin(&p, &platform);
            assert!(
                ilp.predicted_tmax_us <= greedy.predicted_tmax_us + 1e-6,
                "G={gpus}: ilp {} > greedy {}",
                ilp.predicted_tmax_us,
                greedy.predicted_tmax_us
            );
            assert!(ilp.predicted_tmax_us <= rr.predicted_tmax_us + 1e-6);
        }
    }

    #[test]
    fn communication_awareness_avoids_splitting_chatty_partitions() {
        // Two heavy partitions exchanging a huge volume of data plus two
        // light ones: a workload-only mapper splits the heavy pair across
        // GPUs; the communication-aware ILP keeps them together.
        let p = pdg(
            vec![50.0, 50.0, 10.0, 10.0],
            vec![
                PdgEdge {
                    from: 0,
                    to: 1,
                    bytes_per_iteration: 3_000_000,
                },
                PdgEdge {
                    from: 1,
                    to: 2,
                    bytes_per_iteration: 64,
                },
                PdgEdge {
                    from: 2,
                    to: 3,
                    bytes_per_iteration: 64,
                },
            ],
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let aware = map_ilp(&p, &platform, &MappingOptions::default()).unwrap();
        assert_eq!(
            aware.assignment[0], aware.assignment[1],
            "chatty partitions should stay together: {:?}",
            aware.assignment
        );
        // Splitting them would cost ~500 us of link time.
        assert!(aware.predicted_tmax_us < 200.0);
    }

    #[test]
    fn workload_only_ablation_ignores_the_interconnect() {
        let p = pdg(
            vec![50.0, 50.0],
            vec![PdgEdge {
                from: 0,
                to: 1,
                bytes_per_iteration: 3_000_000,
            }],
        );
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let blind = map_ilp(
            &p,
            &platform,
            &MappingOptions {
                comm_aware: false,
                ..MappingOptions::default()
            },
        )
        .unwrap();
        // The workload-only model happily splits them (each GPU 50 us)...
        assert_ne!(blind.assignment[0], blind.assignment[1]);
        // ...which the true cost model reveals to be communication bound.
        let cost = evaluate_assignment(&p, &platform, &blind.assignment);
        assert!(cost.communication_bound());
    }

    #[test]
    fn single_gpu_is_trivially_optimal() {
        let p = pdg(vec![5.0, 7.0], vec![]);
        let m = map_ilp(&p, &Platform::single_m2090(), &MappingOptions::default()).unwrap();
        assert!(m.optimal);
        assert!(m.assignment.iter().all(|&a| a == 0));
    }
}
