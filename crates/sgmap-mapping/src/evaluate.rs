//! Cost evaluation of a partition-to-GPU assignment.
//!
//! The cost model matches the ILP formulation exactly: per-GPU time is the
//! sum of the assigned partitions' workloads, per-link communication time is
//! `Lat + D_l / BW` where `D_l` accumulates every inter-partition transfer
//! whose peer-to-peer route crosses the link (plus the primary input/output
//! moving between the host and the partition's GPU), and the objective is the
//! maximum over all GPUs and links.

use sgmap_gpusim::{Endpoint, Platform};
use sgmap_partition::Pdg;

/// The evaluated cost of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingCost {
    /// Bottleneck time (maximum over GPUs and links), microseconds.
    pub tmax_us: f64,
    /// Busy time of each GPU, microseconds.
    pub per_gpu_time_us: Vec<f64>,
    /// Communication time of each directed link, microseconds.
    pub per_link_time_us: Vec<f64>,
    /// Bytes carried by each directed link per iteration.
    pub per_link_bytes: Vec<u64>,
}

impl MappingCost {
    /// Returns `true` if a PCIe link, rather than a GPU, is the bottleneck.
    pub fn communication_bound(&self) -> bool {
        let gpu_max = self.per_gpu_time_us.iter().cloned().fold(0.0, f64::max);
        let link_max = self.per_link_time_us.iter().cloned().fold(0.0, f64::max);
        link_max > gpu_max
    }
}

/// Evaluates `assignment` (partition index → GPU index) on `platform`.
///
/// # Panics
///
/// Panics if the assignment length does not match the PDG or if it references
/// a GPU outside the platform.
pub fn evaluate_assignment(pdg: &Pdg, platform: &Platform, assignment: &[usize]) -> MappingCost {
    assert_eq!(assignment.len(), pdg.len(), "assignment length mismatch");
    let g = platform.gpu_count();
    for &a in assignment {
        assert!(a < g, "assignment references GPU {a} of {g}");
    }
    let topo = &platform.topology;

    // Workloads are estimated on the primary device; heterogeneous siblings
    // stretch or shrink them by the per-device time factor (exactly 1.0 on
    // homogeneous platforms).
    let mut per_gpu_time_us = vec![0.0f64; g];
    for (i, &gpu) in assignment.iter().enumerate() {
        per_gpu_time_us[gpu] += pdg.times_us[i] * platform.time_factor(gpu);
    }

    let mut per_link_bytes = vec![0u64; topo.link_count()];
    // Inter-partition traffic over peer-to-peer routes.
    for e in &pdg.edges {
        let (src, dst) = (assignment[e.from], assignment[e.to]);
        if src == dst {
            continue;
        }
        for link in topo.route(Endpoint::Gpu(src), Endpoint::Gpu(dst)) {
            per_link_bytes[link.index()] += e.bytes_per_iteration;
        }
    }
    // Primary IO between host and the owning GPU.
    for (i, &gpu) in assignment.iter().enumerate() {
        if pdg.primary_input_bytes[i] > 0 {
            for link in topo.route(Endpoint::Host, Endpoint::Gpu(gpu)) {
                per_link_bytes[link.index()] += pdg.primary_input_bytes[i];
            }
        }
        if pdg.primary_output_bytes[i] > 0 {
            for link in topo.route(Endpoint::Gpu(gpu), Endpoint::Host) {
                per_link_bytes[link.index()] += pdg.primary_output_bytes[i];
            }
        }
    }

    // Per-transfer latency is hidden by the N-fragment pipelining (each link
    // pays it once per fragment, amortised over many iterations), so the
    // static objective uses the pure bandwidth term — at each link's own
    // bandwidth; the discrete-event executor still charges the latency
    // explicitly.
    let per_link_time_us: Vec<f64> = topo
        .link_ids()
        .map(|l| per_link_bytes[l.index()] as f64 / topo.link_bytes_per_us(l))
        .collect();

    let tmax_us = per_gpu_time_us
        .iter()
        .chain(per_link_time_us.iter())
        .cloned()
        .fold(0.0, f64::max);

    MappingCost {
        tmax_us,
        per_gpu_time_us,
        per_link_time_us,
        per_link_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_partition::PdgEdge;

    fn pdg(times: Vec<f64>, edges: Vec<PdgEdge>) -> Pdg {
        let n = times.len();
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        input[0] = 64;
        output[n - 1] = 64;
        Pdg {
            times_us: times,
            edges,
            primary_input_bytes: input,
            primary_output_bytes: output,
        }
    }

    #[test]
    fn gpu_times_sum_assigned_partitions() {
        let p = pdg(vec![10.0, 20.0, 30.0], vec![]);
        let platform = Platform::quad_m2090().with_gpu_count(2);
        let cost = evaluate_assignment(&p, &platform, &[0, 1, 0]);
        assert_eq!(cost.per_gpu_time_us, vec![40.0, 20.0]);
        assert!(cost.tmax_us >= 40.0);
        assert!(!cost.communication_bound());
    }

    #[test]
    fn cross_gpu_edges_load_their_route() {
        let p = pdg(
            vec![1.0, 1.0],
            vec![PdgEdge {
                from: 0,
                to: 1,
                bytes_per_iteration: 600_000,
            }],
        );
        let platform = Platform::quad_m2090();
        // Same GPU: no link load from the edge (only primary IO).
        let same = evaluate_assignment(&p, &platform, &[2, 2]);
        // Adjacent GPUs under the same switch: 2 hops.
        let near = evaluate_assignment(&p, &platform, &[0, 1]);
        // GPUs under different switches: 4 hops.
        let far = evaluate_assignment(&p, &platform, &[0, 3]);
        let loaded = |c: &MappingCost| c.per_link_bytes.iter().filter(|&&b| b >= 600_000).count();
        assert_eq!(loaded(&same), 0);
        assert_eq!(loaded(&near), 2);
        assert_eq!(loaded(&far), 4);
        // 600 KB over a 6 GB/s link takes 100 us + latency: communication
        // dominates the 1 us partitions.
        assert!(near.communication_bound());
        assert!(far.tmax_us >= near.tmax_us);
    }

    #[test]
    fn primary_io_is_charged_to_host_routes() {
        let p = pdg(vec![5.0], vec![]);
        let platform = Platform::single_m2090();
        let cost = evaluate_assignment(&p, &platform, &[0]);
        // Host->GPU route has 3 hops in the reference tree truncated to one
        // GPU (host-sw1-sw2-gpu0); input and output load different directions.
        let loaded_links = cost.per_link_bytes.iter().filter(|&&b| b > 0).count();
        assert_eq!(loaded_links, 6);
    }

    #[test]
    #[should_panic(expected = "assignment length mismatch")]
    fn wrong_length_panics() {
        let p = pdg(vec![1.0], vec![]);
        let _ = evaluate_assignment(&p, &Platform::single_m2090(), &[0, 0]);
    }
}
