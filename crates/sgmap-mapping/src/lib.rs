//! Communication-aware partition-to-GPU mapping (Section 3.2).
//!
//! Given the Partition Dependence Graph and the PCIe topology of the target
//! platform, the mapping step assigns every partition to a GPU so that the
//! bottleneck — the busiest GPU *or* the busiest PCIe link — is as fast as
//! possible:
//!
//! ```text
//! minimise Tmax
//!   T_gpu_j  = Σ_i n_ij · T_i              ≤ Tmax      (III.1, III.4)
//!   T_comm_l = Lat + D_l / BW              ≤ Tmax      (III.2, III.3)
//!   Σ_j n_ij = 1                                        (III.5)
//!   D_l      = Σ_{(i,j)∈E_P} [crossing] · D_ij          (III.6, III.7)
//! ```
//!
//! Three mappers are provided:
//!
//! * [`map_ilp`] — the exact formulation above, solved with the
//!   branch-and-bound ILP solver of `sgmap-ilp` (warm-started by the greedy
//!   mapper and bounded by a node/time budget),
//! * [`map_greedy`] — longest-processing-time list scheduling followed by a
//!   communication-aware local search; used both as the ILP warm start and as
//!   a fast stand-alone mapper,
//! * [`map_round_robin`] — the hardware-agnostic assignment in the style of
//!   the prior work, which balances only the partition count per GPU and
//!   ignores the interconnect.
//!
//! [`evaluate_assignment`] computes the objective of any assignment and is
//! shared by all three (and by the tests, to check the ILP never loses to the
//! greedy mapper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluate;
mod greedy;
mod ilp;
mod repair;

pub use evaluate::{evaluate_assignment, MappingCost};
pub use greedy::{map_greedy, map_round_robin};
pub use ilp::{map_ilp, map_ilp_traced, MappingOptions};
pub use repair::{
    map_on_survivors, repair_mapping, repair_mapping_greedy, RepairOptions, RepairStats,
};
pub use sgmap_ilp::SolveStats;

use sgmap_gpusim::Platform;
use sgmap_partition::Pdg;

/// Which algorithm produced a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingMethod {
    /// The communication-aware ILP formulation.
    Ilp,
    /// LPT list scheduling plus local search.
    Greedy,
    /// Hardware-agnostic round-robin (prior-work style).
    RoundRobin,
}

/// A partition-to-GPU assignment together with its predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// `assignment[i]` is the GPU index of partition `i`.
    pub assignment: Vec<usize>,
    /// Predicted bottleneck time (the ILP objective `Tmax`), microseconds.
    pub predicted_tmax_us: f64,
    /// Predicted busy time of each GPU, microseconds.
    pub per_gpu_time_us: Vec<f64>,
    /// Predicted communication time of each directed PCIe link, microseconds.
    pub per_link_time_us: Vec<f64>,
    /// The algorithm that produced this mapping.
    pub method: MappingMethod,
    /// Whether the ILP proved optimality (always `false` for the heuristics).
    pub optimal: bool,
    /// Solver counters of the ILP search (all zero for the heuristics and
    /// for the trivial single-GPU / empty cases the ILP answers directly).
    pub ilp_stats: SolveStats,
}

impl Mapping {
    /// Number of distinct GPUs actually used.
    pub fn gpus_used(&self) -> usize {
        let mut used: Vec<usize> = self.assignment.clone();
        used.sort_unstable();
        used.dedup();
        used.len()
    }
}

/// Convenience entry point dispatching on [`MappingMethod`].
///
/// # Errors
///
/// Returns an error only for [`MappingMethod::Ilp`] when the solver fails;
/// the heuristics cannot fail.
pub fn map_with(
    pdg: &Pdg,
    platform: &Platform,
    method: MappingMethod,
    options: &MappingOptions,
) -> Result<Mapping, sgmap_ilp::IlpError> {
    map_with_traced(pdg, platform, method, options, None)
}

/// [`map_with`] with an optional trace collector: the whole mapping step runs
/// under a `map` span and the ILP method forwards the collector into the
/// solver (see [`map_ilp_traced`]).
///
/// # Errors
///
/// Same as [`map_with`].
pub fn map_with_traced(
    pdg: &Pdg,
    platform: &Platform,
    method: MappingMethod,
    options: &MappingOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Mapping, sgmap_ilp::IlpError> {
    let mut span = sgmap_trace::span(trace, "map");
    span.arg("partitions", pdg.len());
    span.arg("gpus", platform.gpu_count());
    match method {
        MappingMethod::Ilp => map_ilp_traced(pdg, platform, options, trace),
        MappingMethod::Greedy => Ok(map_greedy(pdg, platform)),
        MappingMethod::RoundRobin => Ok(map_round_robin(pdg, platform)),
    }
}
