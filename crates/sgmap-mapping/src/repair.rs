//! Degradation-aware remapping after a device loss.
//!
//! When the simulator reports a [`DeviceLost`](sgmap_gpusim::FaultEvent)
//! event, recompiling the application from scratch is the gold standard but
//! wastes everything the original solve already learned. [`repair_mapping`]
//! instead patches the existing mapping in two bounded steps:
//!
//! 1. **Greedy patch** — only the lost device's partitions move; each is
//!    placed (longest first) onto the least-loaded survivor, so the
//!    assignments that were fine stay untouched and the patch costs
//!    microseconds.
//! 2. **Warm-started ILP polish** — the restricted ILP (assignment columns
//!    only for the survivors) re-solves under a deliberately tight budget,
//!    warm-started from the patch. The solver's incumbent guard means the
//!    polish can only improve on the patch, never lose to it.
//!
//! The result is a valid mapping that never places anything on the lost
//! device, together with [`RepairStats`] describing how much moved and what
//! the repaired objective looks like — the caller compares it against a full
//! recompile (see the `repair` section of BENCH.json).

use std::time::Duration;

use sgmap_gpusim::Platform;
use sgmap_ilp::IlpError;
use sgmap_partition::Pdg;

use crate::evaluate::evaluate_assignment;
use crate::greedy::map_greedy_on;
use crate::ilp::map_ilp_on;
use crate::{Mapping, MappingMethod, MappingOptions, SolveStats};

/// Budget for the repair path. The defaults are intentionally much tighter
/// than the interactive mapping budget: repair exists to be fast, and the
/// warm start already guarantees the result is at least as good as the
/// greedy patch.
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Run the warm-started ILP polish after the greedy patch. With `false`
    /// the patch alone is returned (fastest possible repair).
    pub polish_with_ilp: bool,
    /// Budget for the ILP polish. `comm_aware` should stay `true`; the
    /// node/time budget and relative gap are what keep repair cheap.
    pub ilp: MappingOptions,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            polish_with_ilp: true,
            ilp: MappingOptions {
                time_limit: Duration::from_secs(1),
                max_nodes: 24,
                comm_aware: true,
                // Repair trades the last few percent of proven optimality
                // for speed.
                relative_gap: 0.05,
            },
        }
    }
}

/// What a repair did and what it cost, relative to the mapping it patched.
/// Wall-clock comparisons against a full recompile are the caller's job
/// (they depend on the whole compile pipeline, not just the mapper).
#[derive(Debug, Clone)]
pub struct RepairStats {
    /// The device whose partitions were evacuated.
    pub lost_gpu: usize,
    /// How many partitions had to move off the lost device.
    pub moved_partitions: usize,
    /// Objective of the original (pre-fault) mapping, microseconds.
    pub baseline_tmax_us: f64,
    /// Objective right after the greedy patch, microseconds.
    pub patch_tmax_us: f64,
    /// Objective of the returned mapping, microseconds.
    pub repaired_tmax_us: f64,
    /// Whether the ILP polish ran (and therefore whether `ilp_stats` is
    /// meaningful).
    pub polished: bool,
    /// Solver counters of the polish step (all zero when it did not run).
    pub ilp_stats: SolveStats,
}

/// Remaps the lost device's partitions onto the surviving GPUs.
///
/// The returned mapping assigns every partition to a GPU other than
/// `lost_gpu`, and its objective is never worse than the greedy patch. Costs
/// are evaluated against the *original* platform model (the survivors and
/// their interconnect are assumed healthy).
///
/// # Errors
///
/// Returns an error only if the ILP polish fails in a way that has no
/// fallback (model construction bugs); budget exhaustion and numerical
/// trouble fall back to the greedy patch.
///
/// # Panics
///
/// Panics if `lost_gpu` is out of range, if the platform has no surviving
/// GPU, or if `mapping.assignment` does not match `pdg`.
pub fn repair_mapping(
    pdg: &Pdg,
    platform: &Platform,
    mapping: &Mapping,
    lost_gpu: usize,
    options: &RepairOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<(Mapping, RepairStats), IlpError> {
    let g = platform.gpu_count();
    assert!(
        lost_gpu < g,
        "lost GPU {lost_gpu} out of range for {g} GPUs"
    );
    assert!(g > 1, "cannot repair a single-GPU platform");
    assert_eq!(
        mapping.assignment.len(),
        pdg.len(),
        "mapping does not match the PDG"
    );
    let survivors: Vec<usize> = (0..g).filter(|&j| j != lost_gpu).collect();

    let mut span = sgmap_trace::span(trace, "map.repair");
    span.arg("lost_gpu", lost_gpu);
    let moved_partitions = mapping
        .assignment
        .iter()
        .filter(|&&j| j == lost_gpu)
        .count();
    sgmap_trace::add(trace, "map.repairs", 1);
    sgmap_trace::add(
        trace,
        "map.repair_moved_partitions",
        moved_partitions as u64,
    );

    // Greedy patch: keep every healthy assignment, move only the evacuated
    // partitions (longest first) onto the least-loaded survivor.
    let mut assignment = mapping.assignment.clone();
    let mut load = vec![0.0f64; survivors.len()];
    for (i, &j) in assignment.iter().enumerate() {
        if let Some(pos) = survivors.iter().position(|&s| s == j) {
            load[pos] += pdg.times_us[i] * platform.time_factor(j);
        }
    }
    let mut evacuated: Vec<usize> = (0..pdg.len())
        .filter(|&i| assignment[i] == lost_gpu)
        .collect();
    evacuated.sort_by(|&a, &b| pdg.times_us[b].total_cmp(&pdg.times_us[a]));
    for &i in &evacuated {
        let pos = (0..survivors.len())
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            .expect("at least one survivor");
        assignment[i] = survivors[pos];
        load[pos] += pdg.times_us[i] * platform.time_factor(survivors[pos]);
    }
    let patch_cost = evaluate_assignment(pdg, platform, &assignment);
    let patch = Mapping {
        assignment,
        predicted_tmax_us: patch_cost.tmax_us,
        per_gpu_time_us: patch_cost.per_gpu_time_us,
        per_link_time_us: patch_cost.per_link_time_us,
        method: MappingMethod::Greedy,
        optimal: false,
        ilp_stats: SolveStats::default(),
    };
    let patch_tmax_us = patch.predicted_tmax_us;

    // ILP polish over the survivors, warm-started from the patch. The
    // incumbent guard inside the restricted solve keeps the patch whenever
    // the budget-limited search cannot beat it.
    let polish = options.polish_with_ilp && !pdg.is_empty() && survivors.len() > 1;
    let repaired = if polish {
        map_ilp_on(pdg, platform, &options.ilp, &survivors, patch, trace)?
    } else {
        patch
    };

    let stats = RepairStats {
        lost_gpu,
        moved_partitions,
        baseline_tmax_us: mapping.predicted_tmax_us,
        patch_tmax_us,
        repaired_tmax_us: repaired.predicted_tmax_us,
        polished: polish,
        ilp_stats: repaired.ilp_stats,
    };
    span.arg("moved", moved_partitions);
    Ok((repaired, stats))
}

/// A patch-only repair: [`repair_mapping`] with the ILP polish disabled.
/// Useful when even the tight polish budget is too slow (e.g. inside a hot
/// failover loop).
///
/// # Errors
///
/// Never fails in practice; the signature matches [`repair_mapping`].
pub fn repair_mapping_greedy(
    pdg: &Pdg,
    platform: &Platform,
    mapping: &Mapping,
    lost_gpu: usize,
) -> Result<(Mapping, RepairStats), IlpError> {
    let options = RepairOptions {
        polish_with_ilp: false,
        ..RepairOptions::default()
    };
    repair_mapping(pdg, platform, mapping, lost_gpu, &options, None)
}

/// The full-recompile comparison point for a repair: maps from scratch onto
/// the survivors with the *standard* (untightened) ILP budget, exactly what
/// a recompile of the application for the degraded platform would do in the
/// mapping stage.
///
/// # Errors
///
/// Propagates solver errors like [`crate::map_ilp`].
pub fn map_on_survivors(
    pdg: &Pdg,
    platform: &Platform,
    lost_gpu: usize,
    options: &MappingOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Mapping, IlpError> {
    let g = platform.gpu_count();
    assert!(
        lost_gpu < g,
        "lost GPU {lost_gpu} out of range for {g} GPUs"
    );
    assert!(g > 1, "no survivors on a single-GPU platform");
    let survivors: Vec<usize> = (0..g).filter(|&j| j != lost_gpu).collect();
    let incumbent = map_greedy_on(pdg, platform, &survivors);
    map_ilp_on(pdg, platform, options, &survivors, incumbent, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_partition::PdgEdge;

    fn chain_pdg(times: &[f64], edge_bytes: u64) -> Pdg {
        let n = times.len();
        let edges = (0..n - 1)
            .map(|i| PdgEdge {
                from: i,
                to: i + 1,
                bytes_per_iteration: edge_bytes,
            })
            .collect();
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        input[0] = 1024;
        output[n - 1] = 1024;
        Pdg {
            times_us: times.to_vec(),
            edges,
            primary_input_bytes: input,
            primary_output_bytes: output,
        }
    }

    #[test]
    fn repair_evacuates_the_lost_device() {
        let pdg = chain_pdg(&[40.0, 35.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.0], 256);
        let platform = Platform::quad_m2090();
        let original = crate::map_greedy(&pdg, &platform);
        for lost in 0..platform.gpu_count() {
            let (repaired, stats) = repair_mapping(
                &pdg,
                &platform,
                &original,
                lost,
                &RepairOptions::default(),
                None,
            )
            .unwrap();
            assert!(repaired.assignment.iter().all(|&j| j != lost));
            assert_eq!(repaired.assignment.len(), pdg.len());
            assert_eq!(stats.lost_gpu, lost);
            assert_eq!(
                stats.moved_partitions,
                original.assignment.iter().filter(|&&j| j == lost).count()
            );
            // The polish never loses to the patch.
            assert!(stats.repaired_tmax_us <= stats.patch_tmax_us + 1e-9);
            // And the reported objective matches the shared cost model.
            let cost = evaluate_assignment(&pdg, &platform, &repaired.assignment);
            assert!((cost.tmax_us - repaired.predicted_tmax_us).abs() < 1e-9);
        }
    }

    #[test]
    fn repair_never_beats_the_full_recompile() {
        let pdg = chain_pdg(&[40.0, 35.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.0], 256);
        let platform = Platform::quad_m2090();
        let original = crate::map_greedy(&pdg, &platform);
        for lost in 0..platform.gpu_count() {
            let (repaired, _) = repair_mapping(
                &pdg,
                &platform,
                &original,
                lost,
                &RepairOptions::default(),
                None,
            )
            .unwrap();
            let full =
                map_on_survivors(&pdg, &platform, lost, &MappingOptions::default(), None).unwrap();
            assert!(full.assignment.iter().all(|&j| j != lost));
            assert!(
                repaired.predicted_tmax_us >= full.predicted_tmax_us - 1e-9,
                "repair ({}) beat the full recompile ({}) for lost GPU {lost}",
                repaired.predicted_tmax_us,
                full.predicted_tmax_us
            );
        }
    }

    #[test]
    fn patch_only_repair_also_evacuates() {
        let pdg = chain_pdg(&[10.0, 9.0, 8.0, 7.0, 6.0, 5.0], 64);
        let platform = Platform::quad_m2090();
        let original = crate::map_greedy(&pdg, &platform);
        let (repaired, stats) = repair_mapping_greedy(&pdg, &platform, &original, 0).unwrap();
        assert!(repaired.assignment.iter().all(|&j| j != 0));
        assert!(!stats.polished);
        assert_eq!(stats.repaired_tmax_us, stats.patch_tmax_us);
    }

    #[test]
    fn repairing_an_unused_device_moves_nothing() {
        // Everything fits on one GPU for tiny workloads with huge edges.
        let pdg = chain_pdg(&[1.0, 1.0, 1.0], 1 << 20);
        let platform = Platform::quad_m2090();
        let original = crate::map_greedy(&pdg, &platform);
        assert_eq!(original.gpus_used(), 1);
        let used = original.assignment[0];
        let lost = (used + 1) % platform.gpu_count();
        let (repaired, stats) = repair_mapping(
            &pdg,
            &platform,
            &original,
            lost,
            &RepairOptions::default(),
            None,
        )
        .unwrap();
        assert_eq!(stats.moved_partitions, 0);
        assert!(repaired.assignment.iter().all(|&j| j != lost));
    }
}
