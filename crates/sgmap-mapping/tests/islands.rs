//! Acceptance test for hierarchical platforms: on an NVLink-island box the
//! communication-aware mappers keep a heavy-traffic cut inside one island
//! (where it rides 20 GB/s NVLink hops), while the hardware-agnostic
//! round-robin baseline splits it across the 6 GB/s PCIe fabric between
//! islands and pays the bottleneck for it.

use sgmap_gpusim::PlatformSpec;
use sgmap_mapping::{map_greedy, map_ilp, map_round_robin, MappingOptions};
use sgmap_partition::{Pdg, PdgEdge};

/// `nvlink8_m2090` is two islands of four GPUs each, numbered island-major.
fn island_of(gpu: usize) -> usize {
    gpu / 4
}

/// An 8-partition chain of equal 400 us workloads whose middle edge carries
/// 6 MB per iteration. Balanced onto 8 GPUs the compute floor is 400 us; the
/// heavy cut costs 300 us on an NVLink hop but 1000 us on a PCIe hop, so the
/// optimum keeps partitions 3 and 4 on distinct GPUs of the same island.
fn chain_with_heavy_cut() -> Pdg {
    let n = 8;
    let mut edges: Vec<PdgEdge> = (0..n - 1)
        .map(|i| PdgEdge {
            from: i,
            to: i + 1,
            bytes_per_iteration: 64,
        })
        .collect();
    edges[3].bytes_per_iteration = 6_000_000;
    let mut input = vec![0u64; n];
    let mut output = vec![0u64; n];
    input[0] = 1024;
    output[n - 1] = 1024;
    Pdg {
        times_us: vec![400.0; n],
        edges,
        primary_input_bytes: input,
        primary_output_bytes: output,
    }
}

#[test]
fn communication_aware_mappers_keep_the_heavy_cut_intra_island() {
    let platform = PlatformSpec::nvlink8_m2090().build().unwrap();
    let pdg = chain_with_heavy_cut();

    // Round-robin deals the chain across all 8 GPUs in topological order,
    // which lands the heavy cut on the island boundary.
    let rr = map_round_robin(&pdg, &platform);
    assert_ne!(
        island_of(rr.assignment[3]),
        island_of(rr.assignment[4]),
        "round-robin assignment {:?}",
        rr.assignment
    );
    // 6 MB over a 6 GB/s PCIe hop is 1000 us — the fabric is the bottleneck.
    assert!(rr.predicted_tmax_us >= 1000.0, "{}", rr.predicted_tmax_us);

    let greedy = map_greedy(&pdg, &platform);
    assert_eq!(
        island_of(greedy.assignment[3]),
        island_of(greedy.assignment[4]),
        "greedy assignment {:?}",
        greedy.assignment
    );
    assert!(greedy.predicted_tmax_us < rr.predicted_tmax_us);

    let ilp = map_ilp(&pdg, &platform, &MappingOptions::default()).unwrap();
    assert_eq!(
        island_of(ilp.assignment[3]),
        island_of(ilp.assignment[4]),
        "ilp assignment {:?}",
        ilp.assignment
    );
    assert!(ilp.predicted_tmax_us <= greedy.predicted_tmax_us + 1e-6);
}
