//! Property tests for the degradation-aware repair path: on arbitrary
//! chain-shaped PDGs and any single lost device, `repair_mapping` must
//! always return a valid survivor-only mapping whose objective matches the
//! shared cost model, never loses to its own greedy patch, and never beats
//! the full-budget recompile it is meant to approximate.

use proptest::prelude::*;

use sgmap_gpusim::{GpuSpec, Platform};
use sgmap_mapping::{
    evaluate_assignment, map_greedy, map_on_survivors, repair_mapping, repair_mapping_greedy,
    MappingOptions, RepairOptions,
};
use sgmap_partition::{Pdg, PdgEdge};

/// A chain PDG with per-partition times and per-edge byte volumes drawn
/// from the strategy. Chains are the worst case for evacuation: every moved
/// partition changes exactly two cut edges, so patch and polish disagree
/// often enough to exercise the warm-started ILP.
fn pdg_strategy() -> BoxedStrategy<Pdg> {
    prop::collection::vec((1.0f64..400.0, 0u64..2_000_000), 2..10)
        .prop_map(|stages| {
            let n = stages.len();
            let times: Vec<f64> = stages.iter().map(|&(t, _)| t).collect();
            let edges: Vec<PdgEdge> = (0..n - 1)
                .map(|i| PdgEdge {
                    from: i,
                    to: i + 1,
                    bytes_per_iteration: stages[i].1,
                })
                .collect();
            let mut input = vec![0u64; n];
            let mut output = vec![0u64; n];
            input[0] = 1024;
            output[n - 1] = 1024;
            Pdg {
                times_us: times,
                edges,
                primary_input_bytes: input,
                primary_output_bytes: output,
            }
        })
        .boxed()
}

fn platform_strategy() -> BoxedStrategy<Platform> {
    (2usize..5)
        .prop_map(|g| Platform::homogeneous(GpuSpec::m2090(), g))
        .boxed()
}

/// The exhaustive minimum of the cost model over every assignment of
/// partitions to the surviving GPUs. Exponential, but the strategy caps the
/// PDG at 9 partitions and the platform at 3 survivors (3^9 evaluations).
fn survivor_optimum(pdg: &Pdg, platform: &Platform, lost: usize) -> f64 {
    let survivors: Vec<usize> = (0..platform.gpu_count()).filter(|&j| j != lost).collect();
    let n = pdg.len();
    let mut assignment = vec![survivors[0]; n];
    let mut best = f64::INFINITY;
    let mut counters = vec![0usize; n];
    loop {
        for (slot, &c) in assignment.iter_mut().zip(&counters) {
            *slot = survivors[c];
        }
        let cost = evaluate_assignment(pdg, platform, &assignment);
        if cost.tmax_us < best {
            best = cost.tmax_us;
        }
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            counters[i] += 1;
            if counters[i] < survivors.len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Killing any single device and repairing yields a mapping that covers
    /// every partition on the survivors, with an objective the shared cost
    /// model agrees with and that the ILP polish never made worse than the
    /// greedy patch.
    #[test]
    fn repair_is_valid_for_every_lost_device(
        pdg in pdg_strategy(),
        platform in platform_strategy(),
    ) {
        let original = map_greedy(&pdg, &platform);
        let g = platform.gpu_count();
        for lost in 0..g {
            let (repaired, stats) =
                repair_mapping(&pdg, &platform, &original, lost, &RepairOptions::default(), None)
                    .unwrap();
            prop_assert_eq!(repaired.assignment.len(), pdg.len());
            prop_assert!(repaired.assignment.iter().all(|&j| j != lost && j < g));
            prop_assert_eq!(stats.lost_gpu, lost);
            prop_assert_eq!(
                stats.moved_partitions,
                original.assignment.iter().filter(|&&j| j == lost).count()
            );
            prop_assert!(stats.repaired_tmax_us <= stats.patch_tmax_us + 1e-9);
            let cost = evaluate_assignment(&pdg, &platform, &repaired.assignment);
            prop_assert!((cost.tmax_us - repaired.predicted_tmax_us).abs() < 1e-9);
        }
    }

    /// Neither the tight-budget repair nor the full-budget recompile can
    /// beat the *true* survivor-only optimum (brute-forced — the PDGs are
    /// small enough to enumerate every assignment). The two heuristics may
    /// leapfrog each other when the recompile's node budget runs out, but
    /// the exhaustive optimum is a floor for both.
    #[test]
    fn no_repair_path_beats_the_survivor_optimum(
        pdg in pdg_strategy(),
        platform in platform_strategy(),
        lost_seed in 0usize..4,
    ) {
        let original = map_greedy(&pdg, &platform);
        let lost = lost_seed % platform.gpu_count();
        let (repaired, _) =
            repair_mapping(&pdg, &platform, &original, lost, &RepairOptions::default(), None)
                .unwrap();
        let full =
            map_on_survivors(&pdg, &platform, lost, &MappingOptions::default(), None).unwrap();
        prop_assert!(full.assignment.iter().all(|&j| j != lost));
        let opt = survivor_optimum(&pdg, &platform, lost);
        prop_assert!(
            repaired.predicted_tmax_us >= opt - 1e-9,
            "repair ({}) beat the exhaustive survivor optimum ({}) for lost GPU {}",
            repaired.predicted_tmax_us,
            opt,
            lost
        );
        prop_assert!(
            full.predicted_tmax_us >= opt - 1e-9,
            "recompile ({}) beat the exhaustive survivor optimum ({}) for lost GPU {}",
            full.predicted_tmax_us,
            opt,
            lost
        );
    }

    /// The patch-only repair (no ILP polish) also evacuates correctly and
    /// reports itself honestly: not polished, objective equal to the patch.
    #[test]
    fn greedy_only_repair_evacuates_and_reports_the_patch(
        pdg in pdg_strategy(),
        platform in platform_strategy(),
        lost_seed in 0usize..4,
    ) {
        let original = map_greedy(&pdg, &platform);
        let lost = lost_seed % platform.gpu_count();
        let (repaired, stats) =
            repair_mapping_greedy(&pdg, &platform, &original, lost).unwrap();
        prop_assert!(repaired.assignment.iter().all(|&j| j != lost));
        prop_assert!(!stats.polished);
        prop_assert_eq!(stats.repaired_tmax_us, stats.patch_tmax_us);
        prop_assert_eq!(repaired.predicted_tmax_us, stats.patch_tmax_us);
    }
}
