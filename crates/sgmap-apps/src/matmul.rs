//! Matrix multiplication benchmarks: `MatMul2` (A·B) and `MatMul3` (A·B·C).
//!
//! `N` is the matrix dimension. The product is computed by duplicating the
//! operand stream to `N` row-compute filters, each of which produces one row
//! of the result; the rows are joined back in order. `MatMul3` chains two
//! such stages, forwarding the third operand past the first stage through a
//! round-robin split-join.
//!
//! `MatMul2` also ships executable semantics ([`attach_matmul2_behaviors`])
//! so the generated graph can be checked against a reference multiply.

use sgmap_graph::interp::{behavior, Interpreter};
use sgmap_graph::{Filter, GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Work of one row of an `n × n` product: `n` dot products of length `n`.
pub fn row_work(n: u32) -> f64 {
    2.0 * f64::from(n) * f64::from(n)
}

/// A split-join computing `A · B` where the input stream carries the two
/// operands back to back (`2·n²` tokens) and the output is the product
/// row-major (`n²` tokens). `tag` keeps filter names unique across stages.
fn product_stage(n: u32, tag: &str) -> StreamSpec {
    let rows: Vec<StreamSpec> = (0..n)
        .map(|i| {
            StreamSpec::from_filter(Filter::new(
                format!("row_{tag}_{i}"),
                2 * n * n,
                n,
                row_work(n),
            ))
        })
        .collect();
    StreamSpec::split_join(
        SplitKind::Duplicate,
        rows,
        JoinKind::RoundRobin(vec![n; n as usize]),
    )
}

/// Builds the two-matrix product graph for `n × n` matrices.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is zero.
pub fn build_matmul2(n: u32) -> Result<StreamGraph, GraphError> {
    build_matmul2_traced(n, None)
}

/// [`build_matmul2`] with an optional trace collector.
pub fn build_matmul2_traced(
    n: u32,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<StreamGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySplitJoin);
    }
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter("source", 0, 2 * n * n, f64::from(n)),
        product_stage(n, "ab"),
        StreamSpec::filter("sink", n * n, 0, f64::from(n)),
    ]);
    GraphBuilder::new(format!("MatMul2_N{n}")).build_traced(spec, trace)
}

/// Builds the three-matrix product graph `A · B · C` for `n × n` matrices.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is zero.
pub fn build_matmul3(n: u32) -> Result<StreamGraph, GraphError> {
    build_matmul3_traced(n, None)
}

/// [`build_matmul3`] with an optional trace collector.
pub fn build_matmul3_traced(
    n: u32,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<StreamGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySplitJoin);
    }
    let nn = n * n;
    // First stage consumes A and B (2n² tokens) and must forward C (n²
    // tokens) untouched; a round-robin split keeps the two lanes apart.
    let first = StreamSpec::split_join(
        SplitKind::RoundRobin(vec![2 * nn, nn]),
        vec![
            product_stage(n, "ab"),
            StreamSpec::filter("forward_c", nn, nn, f64::from(nn)),
        ],
        JoinKind::RoundRobin(vec![nn, nn]),
    );
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter("source", 0, 3 * nn, f64::from(n)),
        first,
        product_stage(n, "abc"),
        StreamSpec::filter("sink", nn, 0, f64::from(n)),
    ]);
    GraphBuilder::new(format!("MatMul3_N{n}")).build_traced(spec, trace)
}

/// Reference row-major matrix multiply used by the functional tests.
pub fn reference_matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Attaches executable semantics to a `MatMul2` graph: each row filter
/// computes its row of `A·B` from the duplicated operand stream.
pub fn attach_matmul2_behaviors(interp: &mut Interpreter<'_>, graph: &StreamGraph, n: u32) {
    let n = n as usize;
    for (id, f) in graph.filters() {
        if let Some(rest) = f.name.strip_prefix("row_ab_") {
            let row: usize = rest.parse().expect("row index in filter name");
            interp.set_behavior(
                id,
                behavior(move |inputs, outputs| {
                    let data = &inputs[0];
                    let (a, b) = data.split_at(n * n);
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += a[row * n + k] * b[k * n + j];
                        }
                        outputs[0].push(acc);
                    }
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul2_computes_the_exact_product() {
        let n = 4u32;
        let g = build_matmul2(n).unwrap();
        let mut interp = Interpreter::new(&g);
        let a: Vec<f64> = (0..16).map(|i| f64::from(i) * 0.5).collect();
        let b: Vec<f64> = (0..16).map(|i| f64::from(15 - i)).collect();
        let mut input = a.clone();
        input.extend_from_slice(&b);
        let src = g.filter_by_name("source").unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        interp.set_source_data(src, input);
        attach_matmul2_behaviors(&mut interp, &g, n);
        interp.run(1).unwrap();
        let expected = reference_matmul(&a, &b, n as usize);
        let got = interp.sink_output(sink);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "{g} != {e}");
        }
    }

    #[test]
    fn matmul2_structure() {
        let g = build_matmul2(6).unwrap();
        let rows = g
            .filters()
            .filter(|(_, f)| f.name.starts_with("row_ab_"))
            .count();
        assert_eq!(rows, 6);
        // source, split, 6 rows, join, sink.
        assert_eq!(g.filter_count(), 10);
    }

    #[test]
    fn matmul3_chains_two_products() {
        let g = build_matmul3(3).unwrap();
        let ab = g
            .filters()
            .filter(|(_, f)| f.name.starts_with("row_ab_"))
            .count();
        let abc = g
            .filters()
            .filter(|(_, f)| f.name.starts_with("row_abc_"))
            .count();
        assert_eq!((ab, abc), (3, 3));
        assert!(g.filter_by_name("forward_c").is_some());
        g.validate().unwrap();
        assert!(g.repetition_vector().is_ok());
    }

    #[test]
    fn reference_multiply_identity() {
        let n = 3;
        let identity: Vec<f64> = (0..9)
            .map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 })
            .collect();
        let m: Vec<f64> = (1..=9).map(f64::from).collect();
        assert_eq!(reference_matmul(&identity, &m, n), m);
        assert_eq!(reference_matmul(&m, &identity, n), m);
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(build_matmul2(0).is_err());
        assert!(build_matmul3(0).is_err());
    }

    #[test]
    fn all_paper_sizes_build() {
        for n in 2..=9u32 {
            assert!(build_matmul2(n).is_ok());
        }
        for n in 1..=7u32 {
            assert!(build_matmul3(n).is_ok());
        }
    }
}
