//! Bitonic sorting networks (iterative `Bitonic` and recursive `BitonicRec`).
//!
//! Both applications sort `N` keys with a network of compare-exchange
//! filters. The iterative variant is a flat pipeline of `log²N` stages, each
//! a wide split-join over `N/2` comparators — it is the benchmark with "a
//! relatively high number of splitters and joiners" that Chapter V's
//! enhancement targets. The recursive variant builds the same network by the
//! classic recursive construction and therefore nests split-joins instead of
//! flattening them.

use sgmap_graph::{Filter, GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Work estimate (abstract ops) of one compare-exchange of two keys.
pub const COMPARE_WORK: f64 = 3.0;

fn is_power_of_two(n: u32) -> bool {
    n >= 2 && n.is_power_of_two()
}

fn comparator(name: String) -> StreamSpec {
    StreamSpec::from_filter(Filter::new(name, 2, 2, COMPARE_WORK))
}

/// One stage of the iterative network: `n/2` comparators in a split-join.
fn comparator_stage(n: u32, stage: usize) -> StreamSpec {
    let branches = (0..n / 2)
        .map(|i| comparator(format!("cmp_s{stage}_{i}")))
        .collect::<Vec<_>>();
    let width = branches.len();
    StreamSpec::split_join(
        SplitKind::RoundRobin(vec![2; width]),
        branches,
        JoinKind::RoundRobin(vec![2; width]),
    )
}

/// Builds the iterative bitonic sorting network over `n` keys.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is not a power of two of at
/// least 2 (mirroring the StreamIt program's requirement).
pub fn build_iterative(n: u32) -> Result<StreamGraph, GraphError> {
    build_iterative_traced(n, None)
}

/// [`build_iterative`] with an optional trace collector.
pub fn build_iterative_traced(
    n: u32,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<StreamGraph, GraphError> {
    if !is_power_of_two(n) {
        return Err(GraphError::EmptySplitJoin);
    }
    let k = n.trailing_zeros() as usize; // log2(n)
    let mut stages = Vec::new();
    stages.push(StreamSpec::from_filter(Filter::new("source", 0, n, 1.0)));
    let mut stage_index = 0usize;
    for phase in 1..=k {
        for _pass in 0..phase {
            stages.push(comparator_stage(n, stage_index));
            stage_index += 1;
        }
    }
    stages.push(StreamSpec::from_filter(Filter::new("sink", n, 0, 1.0)));
    GraphBuilder::new(format!("Bitonic_N{n}")).build_traced(StreamSpec::pipeline(stages), trace)
}

/// Recursive bitonic merge of `n` keys.
fn bitonic_merge(n: u32, path: String) -> StreamSpec {
    if n == 2 {
        return comparator(format!("merge_cmp_{path}"));
    }
    // Compare element i with element i + n/2, then merge both halves.
    let compare_halves = StreamSpec::from_filter(Filter::new(
        format!("half_cmp_{path}"),
        n,
        n,
        COMPARE_WORK * f64::from(n / 2),
    ));
    let halves = StreamSpec::split_join(
        SplitKind::RoundRobin(vec![n / 2, n / 2]),
        vec![
            bitonic_merge(n / 2, format!("{path}l")),
            bitonic_merge(n / 2, format!("{path}r")),
        ],
        JoinKind::RoundRobin(vec![n / 2, n / 2]),
    );
    StreamSpec::pipeline(vec![compare_halves, halves])
}

/// Recursive bitonic sort of `n` keys.
fn bitonic_sort(n: u32, path: String) -> StreamSpec {
    if n == 2 {
        return comparator(format!("sort_cmp_{path}"));
    }
    let split = StreamSpec::split_join(
        SplitKind::RoundRobin(vec![n / 2, n / 2]),
        vec![
            bitonic_sort(n / 2, format!("{path}l")),
            bitonic_sort(n / 2, format!("{path}r")),
        ],
        JoinKind::RoundRobin(vec![n / 2, n / 2]),
    );
    StreamSpec::pipeline(vec![split, bitonic_merge(n, path)])
}

/// Builds the recursive bitonic sorting network over `n` keys.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is not a power of two of at
/// least 2.
pub fn build_recursive(n: u32) -> Result<StreamGraph, GraphError> {
    build_recursive_traced(n, None)
}

/// [`build_recursive`] with an optional trace collector.
pub fn build_recursive_traced(
    n: u32,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<StreamGraph, GraphError> {
    if !is_power_of_two(n) {
        return Err(GraphError::EmptySplitJoin);
    }
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::from_filter(Filter::new("source", 0, n, 1.0)),
        bitonic_sort(n, "t".to_string()),
        StreamSpec::from_filter(Filter::new("sink", n, 0, 1.0)),
    ]);
    GraphBuilder::new(format!("BitonicRec_N{n}")).build_traced(spec, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::interp::Interpreter;
    use sgmap_graph::FilterKind;

    #[test]
    fn iterative_network_has_the_expected_stage_count() {
        for &n in &[2u32, 4, 8, 16] {
            let g = build_iterative(n).unwrap();
            let k = n.trailing_zeros();
            let stages = k * (k + 1) / 2;
            let comparators = g
                .filters()
                .filter(|(_, f)| f.name.starts_with("cmp_"))
                .count() as u32;
            assert_eq!(comparators, stages * (n / 2), "N={n}");
        }
    }

    #[test]
    fn iterative_has_many_splitters_recursive_fewer_per_comparator() {
        let it = build_iterative(16).unwrap();
        let rec = build_recursive(16).unwrap();
        let count_reorder = |g: &StreamGraph| {
            g.filters()
                .filter(|(_, f)| matches!(f.kind, FilterKind::Splitter(_) | FilterKind::Joiner(_)))
                .count()
        };
        assert!(count_reorder(&it) > 0);
        assert!(count_reorder(&rec) > 0);
        // The iterative flat form uses one splitter+joiner pair per stage.
        let k = 4;
        assert_eq!(count_reorder(&it), 2 * (k * (k + 1) / 2));
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        assert!(build_iterative(12).is_err());
        assert!(build_recursive(3).is_err());
        assert!(build_iterative(1).is_err());
    }

    #[test]
    fn network_output_is_a_permutation_of_its_input() {
        // Attach real compare-exchange semantics and check that the network
        // neither loses nor duplicates keys.
        let n = 8u32;
        let g = build_iterative(n).unwrap();
        let mut interp = Interpreter::new(&g);
        let src = g.filter_by_name("source").unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        let input: Vec<f64> = vec![5.0, 1.0, 7.0, 3.0, 2.0, 8.0, 6.0, 4.0];
        interp.set_source_data(src, input.clone());
        interp.set_behavior_by_prefix("cmp_", |_| {
            sgmap_graph::interp::behavior(|inputs, outputs| {
                let (a, b) = (inputs[0][0], inputs[0][1]);
                outputs[0].push(a.min(b));
                outputs[0].push(a.max(b));
            })
        });
        interp.run(1).unwrap();
        let mut out = interp.sink_output(sink).to_vec();
        let mut expected = input;
        out.sort_by(f64::total_cmp);
        expected.sort_by(f64::total_cmp);
        assert_eq!(out, expected);
    }

    #[test]
    fn recursive_and_iterative_sort_the_same_sizes() {
        for &n in &[2u32, 4, 8, 16, 32, 64] {
            let it = build_iterative(n).unwrap();
            let rec = build_recursive(n).unwrap();
            assert!(it.filter_count() >= rec.filter_count() / 4);
            assert!(it.repetition_vector().is_ok());
            assert!(rec.repetition_vector().is_ok());
        }
    }
}
