//! DES block cipher (compute-bound benchmark).
//!
//! `N` controls the number of Feistel rounds in the pipeline (the StreamIt
//! program's size parameter). Every round duplicates the block into a
//! "function" branch — expansion, S-box substitution and permutation, the
//! compute-heavy part — and a pass-through branch, XOR-ing the results back
//! together. The graph is therefore a long pipeline of small split-joins,
//! with a large amount of arithmetic per byte of stream data: the archetype
//! of the paper's compute-bound class.

use sgmap_graph::{GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Work estimate of one S-box substitution pass over a half block.
pub const SBOX_WORK: f64 = 96.0;
/// Work estimate of the expansion permutation.
pub const EXPAND_WORK: f64 = 32.0;
/// Work estimate of the P permutation.
pub const PERMUTE_WORK: f64 = 24.0;
/// Work estimate of the round XOR.
pub const XOR_WORK: f64 = 8.0;

fn round(index: u32) -> StreamSpec {
    // The block is 2 tokens (two 32-bit halves). The function branch works on
    // the right half expanded with the round key; the other branch passes the
    // block through untouched.
    let f_branch = StreamSpec::pipeline(vec![
        StreamSpec::filter(format!("expand_r{index}"), 2, 2, EXPAND_WORK),
        StreamSpec::filter(format!("sbox_r{index}"), 2, 2, SBOX_WORK),
        StreamSpec::filter(format!("permute_r{index}"), 2, 2, PERMUTE_WORK),
    ]);
    let pass_branch = StreamSpec::filter(format!("pass_r{index}"), 2, 2, 2.0);
    StreamSpec::pipeline(vec![
        StreamSpec::split_join(
            SplitKind::Duplicate,
            vec![f_branch, pass_branch],
            JoinKind::RoundRobin(vec![2, 2]),
        ),
        StreamSpec::filter(format!("xor_r{index}"), 4, 2, XOR_WORK),
    ])
}

/// Builds a DES pipeline with `n` rounds.
///
/// # Errors
///
/// Returns [`GraphError::EmptyPipeline`] if `n` is zero.
pub fn build(n: u32) -> Result<StreamGraph, GraphError> {
    build_traced(n, None)
}

/// [`build`] with an optional trace collector (see [`GraphBuilder::build_traced`]).
pub fn build_traced(n: u32, trace: sgmap_trace::TraceRef<'_>) -> Result<StreamGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptyPipeline);
    }
    let mut stages = Vec::new();
    stages.push(StreamSpec::filter("source", 0, 2, 2.0));
    stages.push(StreamSpec::filter(
        "initial_permutation",
        2,
        2,
        PERMUTE_WORK,
    ));
    for r in 0..n {
        stages.push(round(r));
    }
    stages.push(StreamSpec::filter("final_permutation", 2, 2, PERMUTE_WORK));
    stages.push(StreamSpec::filter("sink", 2, 0, 2.0));
    GraphBuilder::new(format!("DES_N{n}")).build_traced(StreamSpec::pipeline(stages), trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_count_grows_linearly_with_rounds() {
        let g4 = build(4).unwrap();
        let g8 = build(8).unwrap();
        let per_round = (g8.filter_count() - g4.filter_count()) / 4;
        assert_eq!(per_round, 7, "each round adds split, 4 filters, join, xor");
        assert_eq!(g4.filter_count(), 4 + 4 * per_round);
    }

    #[test]
    fn rounds_are_compute_heavy() {
        let g = build(8).unwrap();
        let reps = g.repetition_vector().unwrap();
        let work = g.iteration_work(&reps);
        let io = g.primary_input_bytes(&reps) + g.primary_output_bytes(&reps);
        // Far more than one op per byte of primary IO.
        assert!(work / io as f64 > 20.0, "work/io = {}", work / io as f64);
    }

    #[test]
    fn all_paper_sizes_build() {
        for n in [4u32, 8, 12, 16, 20, 24, 28, 32] {
            let g = build(n).unwrap();
            g.validate().unwrap();
            assert!(g.repetition_vector().is_ok());
        }
    }

    #[test]
    fn zero_rounds_is_rejected() {
        assert!(build(0).is_err());
    }
}
