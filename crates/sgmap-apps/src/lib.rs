//! The StreamIt benchmark applications used by the paper's evaluation.
//!
//! The paper evaluates its mapping technique on the eight applications of the
//! StreamIt distribution that the prior work [7] also uses: DES, FMRadio,
//! FFT, DCT, MatMul2, MatMul3, BitonicRec and Bitonic, each parameterised by
//! a size parameter `N`. This crate provides programmatic generators for all
//! eight as [`StreamGraph`]s — the same graphs the StreamIt compiler would
//! hand to the mapping back-end — plus executable filter semantics for the
//! applications where exact functional checks are practical (matrix multiply,
//! bitonic compare-exchange networks).
//!
//! The generators are structurally faithful rather than line-by-line ports:
//! the composition of pipelines and split-joins, the relative weight of
//! compute versus re-ordering filters, and the way the graph grows with `N`
//! follow the StreamIt originals, which is what the partitioning and mapping
//! algorithms are sensitive to.
//!
//! # Example
//!
//! ```rust
//! use sgmap_apps::App;
//!
//! let graph = App::Fft.build(64).unwrap();
//! assert!(graph.filter_count() > 10);
//! assert!(graph.repetition_vector().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod dct;
pub mod des;
pub mod fft;
pub mod fmradio;
pub mod matmul;
pub mod synthetic;

use sgmap_graph::{GraphError, StreamGraph};

/// The eight benchmark applications of the paper's evaluation, plus the
/// seeded synthetic families used by the scaling experiments (see
/// [`synthetic`]). For the synthetic variants `n` is the target number of
/// leaf filters rather than a problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// DES block cipher (compute-bound).
    Des,
    /// FM radio with a multi-band equaliser.
    FmRadio,
    /// Fast Fourier transform.
    Fft,
    /// 2-D discrete cosine transform (compute-bound).
    Dct,
    /// Product of two matrices.
    MatMul2,
    /// Product of three matrices.
    MatMul3,
    /// Recursive bitonic sorting network.
    BitonicRec,
    /// Iterative bitonic sorting network.
    Bitonic,
    /// Seeded synthetic graph, pipeline-heavy (`n` ≈ leaf filter count).
    SynthPipe,
    /// Seeded synthetic graph, split-join-heavy (`n` ≈ leaf filter count).
    SynthFan,
    /// Seeded synthetic graph with feedback loops (`n` ≈ leaf filter count).
    SynthLoop,
}

impl App {
    /// All eight applications, in the order used by the paper's figures.
    pub fn all() -> [App; 8] {
        [
            App::Des,
            App::FmRadio,
            App::Fft,
            App::Dct,
            App::MatMul2,
            App::MatMul3,
            App::BitonicRec,
            App::Bitonic,
        ]
    }

    /// The five applications whose multi-GPU results are reported by the
    /// prior work [7] and therefore appear in the Figure 4.3 comparison.
    pub fn figure_4_3_subset() -> [App; 5] {
        [App::Des, App::Dct, App::Fft, App::MatMul3, App::Bitonic]
    }

    /// The synthetic scaling families ([`synthetic`]). Deliberately *not*
    /// part of [`App::all`]: the paper presets and their golden reports stay
    /// exactly as they were, and the synthetic apps opt in via the
    /// `synthetic` sweep preset or an explicit spec.
    pub fn synthetic() -> [App; 3] {
        [App::SynthPipe, App::SynthFan, App::SynthLoop]
    }

    /// Looks an application up by its display [`App::name`] (used by the
    /// `sweep --spec` loader). Covers the paper apps and the synthetic
    /// families.
    pub fn by_name(name: &str) -> Option<App> {
        App::all()
            .into_iter()
            .chain(App::synthetic())
            .find(|app| app.name() == name)
    }

    /// Short display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            App::Des => "DES",
            App::FmRadio => "FMRadio",
            App::Fft => "FFT",
            App::Dct => "DCT",
            App::MatMul2 => "MatMul2",
            App::MatMul3 => "MatMul3",
            App::BitonicRec => "BitonicRec",
            App::Bitonic => "Bitonic",
            App::SynthPipe => "SynthPipe",
            App::SynthFan => "SynthFan",
            App::SynthLoop => "SynthLoop",
        }
    }

    /// The values of the size parameter `N` swept in Figure 4.2.
    pub fn paper_n_values(&self) -> Vec<u32> {
        match self {
            App::Des => vec![4, 8, 12, 16, 20, 24, 28, 32],
            App::FmRadio => vec![4, 8, 12, 16, 20, 24, 28, 32],
            App::Fft => vec![8, 16, 32, 64, 128, 256, 512, 1024],
            App::Dct => vec![2, 6, 10, 14, 18, 22, 26, 30],
            App::MatMul2 => vec![2, 3, 4, 5, 6, 7, 8, 9],
            App::MatMul3 => vec![1, 2, 3, 4, 5, 6, 7],
            App::BitonicRec => vec![2, 4, 8, 16, 32, 64],
            App::Bitonic => vec![2, 4, 8, 16, 32, 64],
            App::SynthPipe | App::SynthFan | App::SynthLoop => {
                vec![1_000, 5_000, 10_000, 50_000]
            }
        }
    }

    /// A reduced sweep used by the default experiment harness so that the
    /// full evaluation completes quickly on one CPU core; pass `--full` to
    /// the harness binaries to run [`App::paper_n_values`] instead.
    pub fn quick_n_values(&self) -> Vec<u32> {
        match self {
            App::Des => vec![4, 12, 20, 32],
            App::FmRadio => vec![4, 12, 20, 32],
            App::Fft => vec![8, 32, 128, 512],
            App::Dct => vec![2, 10, 18, 30],
            App::MatMul2 => vec![2, 4, 6, 9],
            App::MatMul3 => vec![1, 3, 5, 7],
            App::BitonicRec => vec![2, 8, 16, 32],
            App::Bitonic => vec![2, 8, 16, 32],
            App::SynthPipe | App::SynthFan | App::SynthLoop => vec![1_000, 5_000],
        }
    }

    /// The paper's classification of the application (Section 4.0.3):
    /// `true` for compute-bound, `false` for memory-bound.
    pub fn expected_compute_bound(&self) -> bool {
        !matches!(self, App::Fft | App::Bitonic | App::BitonicRec)
    }

    /// Builds the stream graph for the given size parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is not supported by the application (e.g. a
    /// non-power-of-two FFT size) or if graph construction fails.
    pub fn build(&self, n: u32) -> Result<StreamGraph, GraphError> {
        self.build_traced(n, None)
    }

    /// [`App::build`] with an optional trace collector: graph construction
    /// runs under a `graph.build` span with filter / channel counters (see
    /// `sgmap_graph::GraphBuilder::build_traced`).
    pub fn build_traced(
        &self,
        n: u32,
        trace: sgmap_trace::TraceRef<'_>,
    ) -> Result<StreamGraph, GraphError> {
        match self {
            App::Des => des::build_traced(n, trace),
            App::FmRadio => fmradio::build_traced(n, trace),
            App::Fft => fft::build_traced(n, trace),
            App::Dct => dct::build_traced(n, trace),
            App::MatMul2 => matmul::build_matmul2_traced(n, trace),
            App::MatMul3 => matmul::build_matmul3_traced(n, trace),
            App::BitonicRec => bitonic::build_recursive_traced(n, trace),
            App::Bitonic => bitonic::build_iterative_traced(n, trace),
            App::SynthPipe => synthetic::build_traced(synthetic::Family::Pipeline, n, trace),
            App::SynthFan => synthetic::build_traced(synthetic::Family::SplitJoin, n, trace),
            App::SynthLoop => synthetic::build_traced(synthetic::Family::Mixed, n, trace),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_builds_and_validates_for_every_paper_n() {
        for app in App::all() {
            for n in app.paper_n_values() {
                let g = app
                    .build(n)
                    .unwrap_or_else(|e| panic!("{app} N={n} failed: {e}"));
                g.validate()
                    .unwrap_or_else(|e| panic!("{app} N={n} invalid: {e}"));
                let reps = g
                    .repetition_vector()
                    .unwrap_or_else(|e| panic!("{app} N={n} rates: {e}"));
                assert!(reps.iter().all(|&r| r >= 1), "{app} N={n} zero firing");
            }
        }
    }

    #[test]
    fn graphs_grow_with_n() {
        for app in App::all() {
            let ns = app.paper_n_values();
            let small = app.build(ns[0]).unwrap().filter_count();
            let large = app.build(*ns.last().unwrap()).unwrap().filter_count();
            assert!(
                large >= small,
                "{app}: filter count should not shrink with N ({small} -> {large})"
            );
        }
    }

    #[test]
    fn quick_sweeps_are_subsets_of_paper_sweeps() {
        for app in App::all() {
            let paper = app.paper_n_values();
            for n in app.quick_n_values() {
                assert!(paper.contains(&n), "{app}: {n} not a paper N value");
            }
        }
    }

    #[test]
    fn names_and_classification_match_the_paper() {
        assert_eq!(App::Des.name(), "DES");
        assert!(App::Des.expected_compute_bound());
        assert!(App::Dct.expected_compute_bound());
        assert!(!App::Bitonic.expected_compute_bound());
        assert!(!App::Fft.expected_compute_bound());
        assert_eq!(App::figure_4_3_subset().len(), 5);
    }

    #[test]
    fn synthetic_apps_are_named_but_not_in_all() {
        for app in App::synthetic() {
            assert!(!App::all().contains(&app), "{app} must stay out of all()");
            assert_eq!(App::by_name(app.name()), Some(app));
            for n in app.quick_n_values() {
                assert!(app.paper_n_values().contains(&n));
            }
        }
        assert_eq!(App::by_name("DES"), Some(App::Des));
        assert_eq!(App::by_name("NoSuchApp"), None);
    }
}
