//! Seeded synthetic stream-graph generator for scaling experiments.
//!
//! The eight paper applications top out at ~100 filters, which says nothing
//! about how the compiler behaves at production scale. This module generates
//! StreamIt-shaped programs — pipelines, split-joins and feedback loops — at
//! parameterised sizes from a few hundred to 100k+ filters, deterministically
//! from a seed: the same `(family, n, seed)` always flattens to the same
//! [`StreamGraph`], so synthetic apps can participate in sweeps, goldens and
//! byte-identity gates exactly like the hand-written benchmarks.
//!
//! Three [`Family`] shapes are exposed as first-class [`App`](crate::App)
//! variants (`SynthPipe` / `SynthFan` / `SynthLoop`), with `n` interpreted as
//! the target number of *leaf* compute filters (flattening adds splitters and
//! joiners on top, so `filter_count() >= n`).
//!
//! Every generated construct has an aggregate rate ratio of 1:1 — duplicate
//! split-joins are followed by a reducing filter, round-robin split-joins are
//! rate-neutral by construction — which keeps the repetition vector small no
//! matter how deep the nesting goes. Filter work values are drawn from a
//! small palette so singleton estimates dedupe well in the shared estimate
//! cache, mirroring real programs where many filters share a kernel shape.

use sgmap_graph::{GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Shape family of a synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Deep pipelines with occasional narrow split-joins.
    Pipeline,
    /// Wide split-joins with shallow branches (fan-out-heavy).
    SplitJoin,
    /// Pipelines, split-joins and feedback loops mixed.
    Mixed,
}

impl Family {
    fn tag(self) -> u64 {
        match self {
            Family::Pipeline => 1,
            Family::SplitJoin => 2,
            Family::Mixed => 3,
        }
    }

    /// Short lowercase tag used in generated graph names.
    pub fn name(self) -> &'static str {
        match self {
            Family::Pipeline => "pipe",
            Family::SplitJoin => "fan",
            Family::Mixed => "loop",
        }
    }
}

/// The default generator seed used by the `App` variants.
pub const DEFAULT_SEED: u64 = 0x5347_4d41_5053_594e; // "SGMAPSYN"

/// Work values (per token) filters draw from. A small palette keeps the
/// number of distinct partition characteristics low, so the shared estimate
/// cache dedupes singleton estimates the way it does for real programs.
const WORK_PALETTE: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Deterministic splitmix64 generator (no external RNG dependency).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (modulo bias is irrelevant here).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

struct Gen {
    rng: Rng,
    family: Family,
    next_id: u64,
}

impl Gen {
    fn filter(&mut self, pop: u32, push: u32) -> StreamSpec {
        let work = WORK_PALETTE[self.rng.below(WORK_PALETTE.len() as u64) as usize];
        let id = self.next_id;
        self.next_id += 1;
        StreamSpec::filter(format!("syn{id}"), pop, push, work)
    }

    /// A chain of `len` rate-neutral filters.
    fn chain(&mut self, len: usize) -> Vec<StreamSpec> {
        (0..len).map(|_| self.filter(1, 1)).collect()
    }

    /// A rate-neutral segment using at most `budget` leaf filters.
    fn segment(&mut self, budget: usize, depth: u32) -> StreamSpec {
        if budget < 6 || depth == 0 {
            return StreamSpec::pipeline(self.chain(budget.max(1)));
        }
        let roll = self.rng.below(100);
        match self.family {
            Family::Pipeline => {
                if roll < 70 {
                    self.run(budget)
                } else {
                    self.split_join(budget, depth, 3)
                }
            }
            Family::SplitJoin => {
                if roll < 25 {
                    self.run(budget)
                } else {
                    self.split_join(budget, depth, 8)
                }
            }
            Family::Mixed => {
                if roll < 40 {
                    self.run(budget)
                } else if roll < 75 {
                    self.split_join(budget, depth, 4)
                } else {
                    self.feedback(budget)
                }
            }
        }
    }

    /// A short plain pipeline run.
    fn run(&mut self, budget: usize) -> StreamSpec {
        let len = (2 + self.rng.below(6) as usize).min(budget);
        StreamSpec::pipeline(self.chain(len))
    }

    /// A split-join of 2..=`max_k` balanced branches. Duplicate splits are
    /// followed by a `k -> 1` reducer so the construct stays rate-neutral;
    /// round-robin splits already are.
    fn split_join(&mut self, budget: usize, depth: u32, max_k: u64) -> StreamSpec {
        let k = (2 + self.rng.below(max_k - 1)) as usize;
        let per = ((budget - 1) / k).max(1);
        let branches: Vec<StreamSpec> = (0..k).map(|_| self.segment(per, depth - 1)).collect();
        let duplicate = self.rng.below(2) == 0;
        let join = JoinKind::round_robin_uniform(k);
        if duplicate {
            let sj = StreamSpec::split_join(SplitKind::Duplicate, branches, join);
            let reducer = self.filter(k as u32, 1);
            StreamSpec::pipeline(vec![sj, reducer])
        } else {
            StreamSpec::split_join(SplitKind::round_robin_uniform(k), branches, join)
        }
    }

    /// A feedback loop around a short pipeline body.
    fn feedback(&mut self, budget: usize) -> StreamSpec {
        let body_len = (2 + self.rng.below(4) as usize).min(budget - 1);
        let body = StreamSpec::pipeline(self.chain(body_len));
        let loopback = self.filter(1, 1);
        let delay = 1 + self.rng.below(4) as u32;
        StreamSpec::feedback_loop(body, loopback, delay)
    }
}

/// Builds the specification for a synthetic program with ~`n` leaf filters.
///
/// Deterministic: the same `(family, n, seed)` yields the same spec (and
/// therefore, through the deterministic flattener, the same graph).
pub fn spec(family: Family, n: u32, seed: u64) -> StreamSpec {
    let mut gen = Gen {
        rng: Rng::new(seed ^ family.tag().wrapping_mul(0x9E37_79B9) ^ u64::from(n)),
        family,
        next_id: 0,
    };
    let mut stages = vec![StreamSpec::filter("synth_source", 0, 1, 1.0)];
    let mut remaining = n.max(2) as usize;
    while remaining > 0 {
        let chunk = (8 + gen.rng.below(56) as usize).min(remaining);
        let seg = gen.segment(chunk, 3);
        remaining -= seg.leaf_count().min(remaining);
        stages.push(seg);
    }
    stages.push(StreamSpec::filter("synth_sink", 1, 0, 1.0));
    StreamSpec::pipeline(stages)
}

/// Builds the flattened stream graph for a synthetic program, tracing graph
/// construction like every other app generator.
pub fn build_traced(
    family: Family,
    n: u32,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<StreamGraph, GraphError> {
    let program = spec(family, n, DEFAULT_SEED);
    GraphBuilder::new(format!("synth_{}_{n}", family.name())).build_traced(program, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn families() -> [Family; 3] {
        [Family::Pipeline, Family::SplitJoin, Family::Mixed]
    }

    #[test]
    fn every_family_builds_and_balances() {
        for family in families() {
            let g = build_traced(family, 500, None).unwrap();
            g.validate().unwrap();
            let reps = g.repetition_vector().unwrap();
            assert!(reps.iter().all(|&r| r >= 1));
            // The target counts leaves; flattening only adds filters.
            assert!(
                g.filter_count() >= 500,
                "{family:?}: {} filters",
                g.filter_count()
            );
            // ... but not unboundedly many (splitters/joiners stay a
            // fraction of the leaves).
            assert!(g.filter_count() < 1000, "{family:?}: {}", g.filter_count());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in families() {
            let a = build_traced(family, 300, None).unwrap();
            let b = build_traced(family, 300, None).unwrap();
            assert_eq!(a.filter_count(), b.filter_count());
            assert_eq!(a.channel_count(), b.channel_count());
            for (ia, ib) in a.filter_ids().zip(b.filter_ids()) {
                assert_eq!(a.filter(ia).name, b.filter(ib).name);
            }
            for ((_, ca), (_, cb)) in a.channels().zip(b.channels()) {
                assert_eq!(
                    (ca.src, ca.dst, ca.push, ca.pop),
                    (cb.src, cb.dst, cb.push, cb.pop)
                );
            }
            // A different seed produces a different program.
            let c = GraphBuilder::new("reseed")
                .build(spec(family, 300, DEFAULT_SEED ^ 1))
                .unwrap();
            assert!(
                c.filter_count() != a.filter_count()
                    || c.channels()
                        .zip(a.channels())
                        .any(|((_, x), (_, y))| (x.src, x.dst) != (y.src, y.dst)),
                "{family:?}: reseeding changed nothing"
            );
        }
    }

    #[test]
    fn mixed_family_contains_feedback_loops() {
        let g = build_traced(Family::Mixed, 1000, None).unwrap();
        let feedback = g.channels().filter(|(_, c)| c.feedback).count();
        assert!(feedback > 0, "mixed family should generate feedback loops");
    }

    #[test]
    fn scales_to_ten_thousand_filters() {
        let g = build_traced(Family::Pipeline, 10_000, None).unwrap();
        assert!(g.filter_count() >= 10_000);
        g.repetition_vector().unwrap();
    }
}
