//! Fast Fourier transform (the StreamIt coarse-grained FFT).
//!
//! An `N`-point FFT is expressed as a bit-reversal reorder stage, a single
//! split-join that processes the even/odd interleaved halves through chains
//! of `CombineDFT` butterfly filters, and a final combine of size `N`. The
//! graph deliberately contains exactly one splitter and one joiner,
//! matching the paper's observation ("FFT only has one splitter and one
//! joiner", Chapter V).

use sgmap_graph::{Filter, GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Work estimate (abstract ops) per complex point of one butterfly stage.
pub const BUTTERFLY_WORK_PER_POINT: f64 = 6.0;

/// Builds the `n`-point FFT graph.
///
/// # Errors
///
/// Returns [`GraphError::EmptyPipeline`] if `n` is not a power of two of at
/// least 8.
pub fn build(n: u32) -> Result<StreamGraph, GraphError> {
    build_traced(n, None)
}

/// [`build`] with an optional trace collector (see [`GraphBuilder::build_traced`]).
pub fn build_traced(n: u32, trace: sgmap_trace::TraceRef<'_>) -> Result<StreamGraph, GraphError> {
    if n < 8 || !n.is_power_of_two() {
        return Err(GraphError::EmptyPipeline);
    }
    // Tokens are complex samples: 8 bytes each.
    let token_bytes = 8;
    let mk = |name: String, pop: u32, push: u32, work: f64| {
        StreamSpec::from_filter(Filter::new(name, pop, push, work).with_token_bytes(token_bytes))
    };

    let mut stages = Vec::new();
    stages.push(mk("source".to_string(), 0, n, f64::from(n) * 0.5));
    // Bit-reversal reorder, done in two passes as in the StreamIt program.
    stages.push(mk("reorder_coarse".to_string(), n, n, f64::from(n)));
    stages.push(mk("reorder_fine".to_string(), n, n, f64::from(n)));

    // One split-join whose two branches run the butterfly cascade over the
    // interleaved halves: CombineDFT_2, _4, ..., _{n/2}.
    let branch = |side: &str| {
        let mut chain = Vec::new();
        let mut k = 2u32;
        while k <= n / 2 {
            chain.push(mk(
                format!("combine_{side}_{k}"),
                k,
                k,
                BUTTERFLY_WORK_PER_POINT * f64::from(k),
            ));
            k *= 2;
        }
        StreamSpec::pipeline(chain)
    };
    stages.push(StreamSpec::split_join(
        SplitKind::RoundRobin(vec![2, 2]),
        vec![branch("even"), branch("odd")],
        JoinKind::RoundRobin(vec![2, 2]),
    ));

    // Final combine over the full transform size.
    stages.push(mk(
        format!("combine_final_{n}"),
        n,
        n,
        BUTTERFLY_WORK_PER_POINT * f64::from(n),
    ));
    stages.push(mk("sink".to_string(), n, 0, f64::from(n) * 0.5));

    GraphBuilder::new(format!("FFT_N{n}"))
        .token_bytes(token_bytes)
        .build_traced(StreamSpec::pipeline(stages), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::FilterKind;

    #[test]
    fn fft_has_exactly_one_splitter_and_one_joiner() {
        for &n in &[8u32, 64, 1024] {
            let g = build(n).unwrap();
            let splitters = g
                .filters()
                .filter(|(_, f)| matches!(f.kind, FilterKind::Splitter(_)))
                .count();
            let joiners = g
                .filters()
                .filter(|(_, f)| matches!(f.kind, FilterKind::Joiner(_)))
                .count();
            assert_eq!((splitters, joiners), (1, 1), "N={n}");
        }
    }

    #[test]
    fn filter_count_grows_logarithmically() {
        let small = build(8).unwrap().filter_count();
        let large = build(1024).unwrap().filter_count();
        assert!(large > small);
        assert!(large < small + 20, "FFT grows with log2(N) only");
    }

    #[test]
    fn butterfly_stages_cover_all_sizes() {
        let g = build(64).unwrap();
        for k in [2u32, 4, 8, 16, 32] {
            assert!(
                g.filter_by_name(&format!("combine_even_{k}")).is_some(),
                "missing stage {k}"
            );
        }
        assert!(g.filter_by_name("combine_final_64").is_some());
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(build(4).is_err());
        assert!(build(100).is_err());
    }

    #[test]
    fn complex_tokens_are_eight_bytes() {
        let g = build(8).unwrap();
        let src = g.filter_by_name("source").unwrap();
        assert_eq!(g.filter(src).token_bytes, 8);
    }
}
