//! Two-dimensional discrete cosine transform over `N × N` blocks
//! (compute-bound benchmark).
//!
//! The block is transformed row-wise by a split-join of `N` one-dimensional
//! DCT filters, transposed, transformed again column-wise, and quantised.
//! Every 1-D DCT filter performs `O(N²)` multiply-accumulates on `N` input
//! samples, giving the high compute-to-IO ratio that puts DCT in the paper's
//! compute-bound class.

use sgmap_graph::{GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Work estimate of a 1-D DCT over `n` samples (direct `n²` formulation,
/// two ops per multiply-accumulate).
pub fn dct_1d_work(n: u32) -> f64 {
    2.0 * f64::from(n) * f64::from(n)
}

fn dct_pass(n: u32, axis: &str) -> StreamSpec {
    let lanes: Vec<StreamSpec> = (0..n)
        .map(|i| StreamSpec::filter(format!("dct_{axis}_{i}"), n, n, dct_1d_work(n)))
        .collect();
    StreamSpec::split_join(
        SplitKind::RoundRobin(vec![n; n as usize]),
        lanes,
        JoinKind::RoundRobin(vec![n; n as usize]),
    )
}

/// Builds the 2-D DCT graph for `n × n` blocks.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is below 2.
pub fn build(n: u32) -> Result<StreamGraph, GraphError> {
    build_traced(n, None)
}

/// [`build`] with an optional trace collector (see [`GraphBuilder::build_traced`]).
pub fn build_traced(n: u32, trace: sgmap_trace::TraceRef<'_>) -> Result<StreamGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::EmptySplitJoin);
    }
    let block = n * n;
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter("source", 0, block, f64::from(n)),
        dct_pass(n, "row"),
        StreamSpec::filter("transpose", block, block, f64::from(block)),
        dct_pass(n, "col"),
        StreamSpec::filter("quantize", block, block, 2.0 * f64::from(block)),
        StreamSpec::filter("sink", block, 0, f64::from(n)),
    ]);
    GraphBuilder::new(format!("DCT_N{n}")).build_traced(spec, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dct_passes_of_n_lanes_each() {
        let g = build(8).unwrap();
        let rows = g
            .filters()
            .filter(|(_, f)| f.name.starts_with("dct_row_"))
            .count();
        let cols = g
            .filters()
            .filter(|(_, f)| f.name.starts_with("dct_col_"))
            .count();
        assert_eq!((rows, cols), (8, 8));
        // source, transpose, quantize, sink + 2*(split+join) = 8 extra.
        assert_eq!(g.filter_count(), 16 + 8);
    }

    #[test]
    fn work_grows_cubically_with_n() {
        let small = build(4).unwrap();
        let large = build(8).unwrap();
        let rs = small.repetition_vector().unwrap();
        let rl = large.repetition_vector().unwrap();
        let ratio = large.iteration_work(&rl) / small.iteration_work(&rs);
        assert!(ratio > 6.0, "doubling N should ~8x the work, got {ratio}");
    }

    #[test]
    fn compute_to_io_ratio_is_high() {
        let g = build(16).unwrap();
        let reps = g.repetition_vector().unwrap();
        let work = g.iteration_work(&reps);
        let io = (g.primary_input_bytes(&reps) + g.primary_output_bytes(&reps)) as f64;
        assert!(work / io > 5.0, "work/io = {}", work / io);
    }

    #[test]
    fn tiny_blocks_are_rejected() {
        assert!(build(1).is_err());
        assert!(build(0).is_err());
    }

    #[test]
    fn all_paper_sizes_build() {
        for n in [2u32, 6, 10, 14, 18, 22, 26, 30] {
            assert!(build(n).is_ok(), "N={n}");
        }
    }
}
