//! FM radio receiver with a multi-band equaliser.
//!
//! The classic StreamIt FMRadio: a low-pass front end and an FM demodulator
//! feed an equaliser that duplicates the demodulated signal into `N` bands;
//! every band is itself a small split-join of two FIR low-pass filters whose
//! outputs are subtracted (a band-pass), and the bands are summed back
//! together. The FIR filters have large peek windows, which is what makes
//! this benchmark's buffers interesting for the shared-memory model.

use sgmap_graph::{Filter, GraphBuilder, GraphError, JoinKind, SplitKind, StreamGraph, StreamSpec};

/// Number of taps of each FIR filter (the StreamIt program uses 64).
pub const FIR_TAPS: u32 = 64;
/// Work estimate of one FIR firing (one multiply-accumulate per tap).
pub const FIR_WORK: f64 = 2.0 * FIR_TAPS as f64;

fn fir(name: String) -> StreamSpec {
    StreamSpec::from_filter(Filter::new(name, 1, 1, FIR_WORK).with_peek(FIR_TAPS))
}

/// One equaliser band: a band-pass built from two low-pass FIRs and a
/// subtractor.
fn band(index: u32) -> StreamSpec {
    StreamSpec::pipeline(vec![
        StreamSpec::split_join(
            SplitKind::Duplicate,
            vec![
                fir(format!("band{index}_low")),
                fir(format!("band{index}_high")),
            ],
            JoinKind::RoundRobin(vec![1, 1]),
        ),
        StreamSpec::filter(format!("band{index}_subtract"), 2, 1, 4.0),
        StreamSpec::filter(format!("band{index}_gain"), 1, 1, 2.0),
    ])
}

/// Builds the FM radio graph with an `n`-band equaliser.
///
/// # Errors
///
/// Returns [`GraphError::EmptySplitJoin`] if `n` is zero.
pub fn build(n: u32) -> Result<StreamGraph, GraphError> {
    build_traced(n, None)
}

/// [`build`] with an optional trace collector (see [`GraphBuilder::build_traced`]).
pub fn build_traced(n: u32, trace: sgmap_trace::TraceRef<'_>) -> Result<StreamGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::EmptySplitJoin);
    }
    let bands: Vec<StreamSpec> = (0..n).map(band).collect();
    let spec = StreamSpec::pipeline(vec![
        StreamSpec::filter("source", 0, 1, 2.0),
        fir("front_lowpass".to_string()),
        StreamSpec::from_filter(Filter::new("fm_demodulator", 1, 1, 24.0).with_peek(2)),
        StreamSpec::split_join(
            SplitKind::Duplicate,
            bands,
            JoinKind::RoundRobin(vec![1; n as usize]),
        ),
        StreamSpec::filter("adder", n, 1, f64::from(n)),
        StreamSpec::filter("sink", 1, 0, 2.0),
    ]);
    GraphBuilder::new(format!("FMRadio_N{n}")).build_traced(spec, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_count_scales_filter_count() {
        let g4 = build(4).unwrap();
        let g8 = build(8).unwrap();
        let per_band = (g8.filter_count() - g4.filter_count()) / 4;
        // splitter + 2 FIR + joiner + subtract + gain = 6 filters per band.
        assert_eq!(per_band, 6);
    }

    #[test]
    fn fir_filters_peek_beyond_their_pop_rate() {
        let g = build(4).unwrap();
        let f = g.filter_by_name("band0_low").unwrap();
        assert_eq!(g.filter(f).pop, 1);
        assert_eq!(g.filter(f).peek, FIR_TAPS);
    }

    #[test]
    fn all_paper_sizes_build_and_balance() {
        for n in [4u32, 8, 12, 16, 20, 24, 28, 32] {
            let g = build(n).unwrap();
            let reps = g.repetition_vector().unwrap();
            // Uniform rates: every filter fires once per iteration except the
            // sink side of the adder which also fires once.
            assert!(reps.iter().all(|&r| r == 1), "N={n}");
        }
    }

    #[test]
    fn zero_bands_is_rejected() {
        assert!(build(0).is_err());
    }
}
