//! Property tests for the multilevel partitioner: over random seeded
//! synthetic programs it must uphold exactly the invariants the flat
//! four-phase search guarantees (full disjoint cover, per-part forward
//! connectivity — so parts joined only by a feedback channel never merge —
//! and convexity), never end up worse than the all-singletons objective the
//! search starts from (coarsening, initial partitioning and refinement all
//! only accept improvements), and stay byte-deterministic across thread
//! counts.

use proptest::prelude::*;

use sgmap_apps::synthetic::{spec, Family};
use sgmap_gpusim::GpuSpec;
use sgmap_graph::{GraphBuilder, NodeSet, StreamGraph};
use sgmap_partition::{
    Algorithm, MultilevelOptions, PartitionRequest, PartitionSearchOptions, Partitioning,
};
use sgmap_pee::Estimator;

/// Random synthetic programs: any family, 30–120 target leaves, any seed.
/// Small enough that a proptest case stays in milliseconds, large enough
/// that coarsening has real work to do.
fn graph_strategy() -> BoxedStrategy<StreamGraph> {
    (0u8..3, 30u32..120, any::<u64>())
        .prop_map(|(family, n, seed)| {
            let family = match family {
                0 => Family::Pipeline,
                1 => Family::SplitJoin,
                _ => Family::Mixed,
            };
            GraphBuilder::new(format!("prop_{}_{n}_{seed:x}", family.name()))
                .build(spec(family, n, seed))
                .expect("synthetic specs build")
        })
        .boxed()
}

fn multilevel_options() -> BoxedStrategy<MultilevelOptions> {
    (4usize..40, 1usize..6, 1usize..5)
        .prop_map(|(target, levels, attempts)| {
            MultilevelOptions::new()
                .with_coarsen_target(target)
                .with_max_levels(levels)
                .with_matching_attempts(attempts)
        })
        .boxed()
}

fn run_multilevel(
    graph: &StreamGraph,
    options: MultilevelOptions,
    threads: usize,
) -> (Partitioning, f64) {
    let est = Estimator::new(graph, GpuSpec::m2090()).expect("synthetic rates are consistent");
    let p = PartitionRequest::new(&est)
        .with_algorithm(Algorithm::Multilevel(options))
        .with_search(PartitionSearchOptions::new().with_threads(threads))
        .run()
        .expect("multilevel partitioning succeeds");
    let singleton_total: f64 = graph
        .filter_ids()
        .map(|id| {
            est.estimate(&NodeSet::singleton(id))
                .expect("singletons fit")
                .normalized_us
        })
        .sum();
    (p, singleton_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multilevel_upholds_the_flat_invariants(
        graph in graph_strategy(),
        options in multilevel_options(),
    ) {
        let (p, _) = run_multilevel(&graph, options, 1);
        p.validate_cover(&graph).expect("disjoint full cover");
        prop_assert!(!p.is_empty());
        prop_assert!(p.len() <= graph.filter_count());
        for part in p.iter() {
            // Forward-channel connectivity: a part held together only by a
            // feedback channel would fail this, exactly as in the flat
            // search.
            prop_assert!(part.nodes.is_connected(&graph));
            prop_assert!(part.nodes.is_convex(&graph));
        }
    }

    #[test]
    fn multilevel_never_worsens_the_singleton_objective(
        graph in graph_strategy(),
        options in multilevel_options(),
    ) {
        // Every accepted coarsening merge and refinement move improves (or
        // for coarsening at least preserves feasibility of) the estimator
        // objective, so the final total can never exceed the all-singletons
        // starting point.
        let (p, singleton_total) = run_multilevel(&graph, options, 1);
        prop_assert!(
            p.total_estimated_time_us() <= singleton_total + 1e-6,
            "{} > {}",
            p.total_estimated_time_us(),
            singleton_total
        );
    }

    #[test]
    fn multilevel_is_byte_deterministic_across_threads(
        graph in graph_strategy(),
        options in multilevel_options(),
    ) {
        let (serial, _) = run_multilevel(&graph, options.clone(), 1);
        let (parallel, _) = run_multilevel(&graph, options, 4);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            prop_assert_eq!(&a.nodes, &b.nodes);
            prop_assert_eq!(
                a.estimate.normalized_us.to_bits(),
                b.estimate.normalized_us.to_bits()
            );
        }
    }
}
