//! The paper's four-phase partitioning heuristic (Algorithm 1).
//!
//! Phase 1 merges filters along innermost pipelines, phase 2 merges the
//! remaining (split/join side) filters, phase 3 merges whole partitions with
//! a priority on turning IO-bound partitions compute-bound, and phase 4
//! attempts larger simultaneous merges, including collapsing the whole graph
//! into one partition when that is predicted to be fastest. Every merge goes
//! through `Try-Merge`, which requires connectivity, convexity, shared-memory
//! feasibility and a strict improvement of the estimated total runtime.
//!
//! The search is parallel-capable: phase 1 farms out independent pipeline
//! chains and phases 3/4 evaluate their merge candidates in deterministic
//! fixed-size batches (see [`PartitionSearchOptions`]), so any thread count
//! produces the identical [`Partitioning`] the serial search produces.
//! Phase 2 grows partitions along a frontier whose shape depends on each
//! accepted merge, so it stays serial; its singleton estimates are prewarmed
//! in parallel instead.

use sgmap_graph::{FilterId, NodeSet, StreamGraph};
use sgmap_pee::{Estimate, Estimator};

use crate::error::PartitionError;
use crate::partitioning::{Partition, Partitioning};
use crate::search::{first_accepted, par_map, PartitionSearchOptions};

/// A partition under construction.
type Part = (NodeSet, Estimate);

/// Required relative improvement for a merge to be accepted: the merged
/// partition's estimated time must be below this fraction of the sum of the
/// parts. Compute-bound partitions gain almost nothing from merging (their
/// compute time is additive and only a sliver of boundary IO disappears), so
/// they fail this test and stay separate — the behaviour Section 4.0.3
/// describes — while IO-bound partitions, whose shared buffers shrink the
/// data-transfer time substantially, keep merging.
pub const MERGE_GAIN_FACTOR: f64 = 0.98;

/// Runs Algorithm 1 on the estimator's graph with the exact serial search
/// (the historical behaviour; equivalent to
/// [`partition_stream_graph_with`] under [`PartitionSearchOptions::serial`]).
///
/// # Errors
///
/// Returns [`PartitionError::FilterTooLarge`] if a filter does not fit in
/// shared memory on its own, or a graph error if the rates are inconsistent.
pub fn partition_stream_graph(est: &Estimator<'_>) -> Result<Partitioning, PartitionError> {
    partition_stream_graph_with(est, &PartitionSearchOptions::serial())
}

/// Runs Algorithm 1 with a configurable candidate search.
///
/// The result is identical — same partitions, same order, bit-equal
/// estimates — for every `options` value: candidate batches are evaluated
/// speculatively but the accepted merge is always the first one in serial
/// order, so threads only change how fast the answer arrives, never the
/// answer. With equal batch sizes, even the estimator-cache counters are
/// independent of the thread count.
///
/// # Errors
///
/// Returns [`PartitionError::FilterTooLarge`] if a filter does not fit in
/// shared memory on its own, or a graph error if the rates are inconsistent.
pub fn partition_stream_graph_with(
    est: &Estimator<'_>,
    options: &PartitionSearchOptions,
) -> Result<Partitioning, PartitionError> {
    let threads = options.resolved_threads();
    let batch = options.batch.max(1);
    let graph = est.graph();
    let mut parts: Vec<Part> = Vec::new();
    let mut assigned = vec![false; graph.filter_count()];

    // Unconditional, even on one thread: it pins the evaluated singleton set
    // to "every filter" regardless of thread count, so cache counters stay
    // thread-independent even when a later phase stops early on an error.
    prewarm_singletons(est, graph, threads);
    phase1_pipelines(est, graph, threads, &mut parts, &mut assigned)?;
    phase2_remaining(est, graph, &mut parts, &mut assigned)?;
    phase3_partition_merging(est, graph, threads, batch, &mut parts);
    phase4_simultaneous(est, graph, threads, batch, &mut parts);

    let partitioning: Partitioning = parts
        .into_iter()
        .map(|(nodes, estimate)| Partition::new(nodes, estimate))
        .collect();
    partitioning.validate_cover(graph)?;
    Ok(partitioning)
}

/// Evaluates every filter's singleton estimate up front (in parallel when
/// threads are available). The phases query all of these anyway on the
/// success path (phase 1 walks every chain filter, phase 2 every remaining
/// filter), so prewarming changes neither the evaluated key set nor any
/// error the phases later report — it moves the dominant parameter-search
/// cost onto the worker threads and keeps the evaluated set fixed even when
/// a phase aborts early on a too-large filter.
fn prewarm_singletons(est: &Estimator<'_>, graph: &StreamGraph, threads: usize) {
    let ids: Vec<FilterId> = graph.filter_ids().collect();
    par_map(threads, &ids, |&id| {
        est.estimate(&NodeSet::singleton(id));
    });
}

/// Creates the singleton partition of a filter, failing if it cannot fit in
/// shared memory on its own.
fn singleton(est: &Estimator<'_>, id: FilterId) -> Result<Part, PartitionError> {
    let set = NodeSet::singleton(id);
    match est.estimate(&set) {
        Some(e) => Ok((set, e)),
        None => Err(PartitionError::FilterTooLarge(id)),
    }
}

/// The conditional merge of Algorithm 1: the merge happens only if the two
/// sets are connected once unified, the union is convex, it fits in shared
/// memory, and its estimated time strictly improves on the sum of the parts.
fn try_merge(est: &Estimator<'_>, a: &Part, b: &Part) -> Option<Part> {
    let union = a.0.union(&b.0);
    let graph = est.graph();
    if !union.is_connected(graph) || !union.is_convex(graph) {
        return None;
    }
    let merged = est.estimate(&union)?;
    let combined = a.1.normalized_us + b.1.normalized_us;
    if merged.normalized_us < MERGE_GAIN_FACTOR * combined {
        Some((union, merged))
    } else {
        None
    }
}

/// Identifies the innermost pipelines of the flat graph: maximal chains of
/// filters with forward in-degree and out-degree at most one.
fn pipeline_chains(graph: &StreamGraph) -> Vec<Vec<FilterId>> {
    let qualifies =
        |id: FilterId| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1;
    let mut chains = Vec::new();
    let mut visited = vec![false; graph.filter_count()];
    for id in graph.filter_ids() {
        if visited[id.index()] || !qualifies(id) {
            continue;
        }
        // Walk back to the head of the chain.
        let mut head = id;
        loop {
            let preds = graph.predecessors(head);
            match preds.first() {
                Some(&p)
                    if qualifies(p) && !visited[p.index()] && graph.successors(p).len() == 1 =>
                {
                    head = p;
                }
                _ => break,
            }
        }
        // Walk forward collecting the chain.
        let mut chain = vec![head];
        visited[head.index()] = true;
        let mut cur = head;
        loop {
            let succs = graph.successors(cur);
            match succs.first() {
                Some(&s)
                    if qualifies(s) && !visited[s.index()] && graph.predecessors(s).len() == 1 =>
                {
                    chain.push(s);
                    visited[s.index()] = true;
                    cur = s;
                }
                _ => break,
            }
        }
        chains.push(chain);
    }
    chains
}

/// Greedily merges one pipeline chain, returning each resulting partition
/// with the chain-index range it covers. Chains are disjoint, so this runs
/// on worker threads with no shared state beyond the estimator.
fn merge_chain(
    est: &Estimator<'_>,
    chain: &[FilterId],
) -> Result<Vec<(Part, std::ops::Range<usize>)>, PartitionError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chain.len() {
        let mut current = singleton(est, chain[i])?;
        let mut j = i + 1;
        while j < chain.len() {
            let next = singleton(est, chain[j])?;
            match try_merge(est, &current, &next) {
                Some(m) => {
                    current = m;
                    j += 1;
                }
                None => break,
            }
        }
        out.push((current, i..j));
        i = j;
    }
    Ok(out)
}

/// Phase 1 (lines 2–10): merge within innermost pipelines. Chains are
/// independent, so they are farmed out whole; results are applied in chain
/// order, which keeps both the partition order and the first reported error
/// identical to the serial walk.
fn phase1_pipelines(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    threads: usize,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    let chains = pipeline_chains(graph);
    let merged = par_map(threads, &chains, |chain| merge_chain(est, chain));
    for (chain, result) in chains.iter().zip(merged) {
        for (part, range) in result? {
            for k in range {
                assigned[chain[k].index()] = true;
            }
            parts.push(part);
        }
    }
    Ok(())
}

/// Phase 2 (lines 13–20): merge the filters outside the pipelines.
fn phase2_remaining(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    for id in graph.filter_ids() {
        if assigned[id.index()] {
            continue;
        }
        let mut current = singleton(est, id)?;
        assigned[id.index()] = true;
        loop {
            let mut merged_any = false;
            // Neighbours of the partition that belong to no partition yet.
            let frontier: Vec<FilterId> = current
                .0
                .iter()
                .flat_map(|m| graph.neighbors(m))
                .filter(|k| !assigned[k.index()] && !current.0.contains(*k))
                .collect();
            for k in frontier {
                if assigned[k.index()] {
                    continue;
                }
                let next = singleton(est, k)?;
                if let Some(m) = try_merge(est, &current, &next) {
                    current = m;
                    assigned[k.index()] = true;
                    merged_any = true;
                }
            }
            if !merged_any {
                break;
            }
        }
        parts.push(current);
    }
    Ok(())
}

/// Returns `true` if some channel connects the two partitions (in either
/// direction).
fn adjacent(graph: &StreamGraph, a: &NodeSet, b: &NodeSet) -> bool {
    graph.channels().any(|(_, ch)| {
        (a.contains(ch.src) && b.contains(ch.dst)) || (b.contains(ch.src) && a.contains(ch.dst))
    })
}

/// Phase 3 (lines 23–31): merge partitions, prioritising IO-bound ones, in
/// three rounds of increasing scope. Candidate pairs are enumerated in the
/// serial scan order and evaluated in deterministic batches, so the accepted
/// merge is always the one the serial scan would accept first.
fn phase3_partition_merging(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    threads: usize,
    batch: usize,
    parts: &mut Vec<Part>,
) {
    // Round 1: IO-bound with IO-bound; round 2: IO-bound with anyone;
    // round 3: anyone with anyone.
    for round in 0..3 {
        loop {
            // Candidate sources in ascending order of execution time.
            let mut order: Vec<usize> = (0..parts.len())
                .filter(|&i| match round {
                    0 | 1 => parts[i].1.is_io_bound(),
                    _ => true,
                })
                .collect();
            order.sort_by(|&a, &b| {
                parts[a]
                    .1
                    .normalized_us
                    .total_cmp(&parts[b].1.normalized_us)
            });
            // Candidate pairs in the serial scan order, generated lazily —
            // only the batches up to the first accepted merge materialise.
            let parts_ref: &[Part] = parts;
            let candidates = order
                .iter()
                .flat_map(|&i| (0..parts_ref.len()).map(move |j| (i, j)))
                .filter(|&(i, j)| i != j);
            let found = first_accepted(threads, batch, candidates, |&(i, j)| {
                let partner_ok = match round {
                    0 => parts_ref[j].1.is_io_bound(),
                    _ => true,
                };
                if !partner_ok || !adjacent(graph, &parts_ref[i].0, &parts_ref[j].0) {
                    return None;
                }
                try_merge(est, &parts_ref[i], &parts_ref[j])
            });
            match found {
                Some(((i, j), m)) => {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    parts.swap_remove(hi);
                    // After swap_remove(hi), index lo is still valid because
                    // lo < hi.
                    parts[lo] = m;
                }
                None => break,
            }
        }
    }
}

/// Phase 4 (lines 34–35): simultaneous merges of partition triples around a
/// common neighbour, then the all-nodes merge. Triples are enumerated in the
/// serial scan order and evaluated in deterministic batches.
fn phase4_simultaneous(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    threads: usize,
    batch: usize,
    parts: &mut Vec<Part>,
) {
    // (1) Merge two neighbouring partitions of a common partition together
    // with it, which can pay off even when no pairwise merge does.
    if parts.len() <= 200 {
        loop {
            // Triples in the serial scan order, generated lazily: for each
            // common partition p (neighbour list computed when p is first
            // drawn), every unordered pair of its neighbours.
            let parts_ref: &[Part] = parts;
            let triples = (0..parts_ref.len()).flat_map(|p| {
                let neighbours: Vec<usize> = (0..parts_ref.len())
                    .filter(|&q| q != p && adjacent(graph, &parts_ref[p].0, &parts_ref[q].0))
                    .collect();
                let pairs: Vec<(usize, usize, usize)> = neighbours
                    .iter()
                    .enumerate()
                    .flat_map(|(x, &a)| neighbours.iter().skip(x + 1).map(move |&b| (p, a, b)))
                    .collect();
                pairs
            });
            let found = first_accepted(threads, batch, triples, |&(p, a, b)| {
                let union = parts_ref[p].0.union(&parts_ref[a].0).union(&parts_ref[b].0);
                if !union.is_connected(graph) || !union.is_convex(graph) {
                    return None;
                }
                let e = est.estimate(&union)?;
                let combined = parts_ref[p].1.normalized_us
                    + parts_ref[a].1.normalized_us
                    + parts_ref[b].1.normalized_us;
                (e.normalized_us < MERGE_GAIN_FACTOR * combined).then_some((union, e))
            });
            match found {
                Some(((p, a, b), m)) => {
                    let mut remove = [p, a, b];
                    remove.sort_unstable();
                    // Remove from the highest index down so indices stay valid.
                    parts.remove(remove[2]);
                    parts.remove(remove[1]);
                    parts.remove(remove[0]);
                    parts.push(m);
                }
                None => break,
            }
        }
    }

    // (2) The all-nodes merge: guarantees the multi-partition solution is no
    // worse than the single-partition solution.
    if parts.len() > 1 {
        let all = NodeSet::all(graph);
        if let Some(e) = est.estimate(&all) {
            let total: f64 = parts.iter().map(|p| p.1.normalized_us).sum();
            if e.normalized_us < MERGE_GAIN_FACTOR * total {
                parts.clear();
                parts.push((all, e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;

    fn run(app: App, n: u32) -> (Partitioning, usize) {
        let graph = app.build(n).unwrap();
        let filters = graph.filter_count();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        (p, filters)
    }

    #[test]
    fn des_partitioning_covers_the_graph_and_merges_filters() {
        let graph = App::Des.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        p.validate_cover(&graph).unwrap();
        assert!(!p.is_empty());
        assert!(
            p.len() < graph.filter_count(),
            "some merging must happen: {} partitions for {} filters",
            p.len(),
            graph.filter_count()
        );
    }

    #[test]
    fn small_apps_collapse_to_few_partitions() {
        let (p, filters) = run(App::MatMul2, 3);
        assert!(p.len() <= filters);
        assert!(
            p.len() <= 6,
            "MatMul2 N=3 should merge heavily: {}",
            p.len()
        );
    }

    #[test]
    fn fmradio_partitions_scale_with_bands() {
        let (small, _) = run(App::FmRadio, 4);
        let (large, _) = run(App::FmRadio, 16);
        assert!(large.len() >= small.len());
    }

    #[test]
    fn pipeline_chain_detection_matches_structure() {
        let graph = App::Des.build(2).unwrap();
        let chains = pipeline_chains(&graph);
        // Every filter with degree <= 1 on both sides is in exactly one chain.
        let covered: usize = chains.iter().map(Vec::len).sum();
        let eligible = graph
            .filter_ids()
            .filter(|&id| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1)
            .count();
        assert_eq!(covered, eligible);
    }

    #[test]
    fn batched_parallel_search_matches_serial_bit_for_bit() {
        for app in [App::Des, App::FmRadio, App::Fft] {
            let n = if app == App::Fft { 64 } else { 8 };
            let graph = app.build(n).unwrap();
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            let serial = partition_stream_graph(&est).unwrap();
            for (threads, batch) in [(1, 32), (2, 32), (4, 7), (4, 1)] {
                let opts = PartitionSearchOptions::new()
                    .with_threads(threads)
                    .with_batch(batch);
                let parallel = partition_stream_graph_with(&est, &opts).unwrap();
                assert_eq!(
                    serial.len(),
                    parallel.len(),
                    "{app:?} t={threads} b={batch}"
                );
                for (a, b) in serial.iter().zip(parallel.iter()) {
                    assert_eq!(a.nodes, b.nodes, "{app:?} t={threads} b={batch}");
                    assert_eq!(
                        a.estimate.normalized_us.to_bits(),
                        b.estimate.normalized_us.to_bits(),
                        "{app:?} t={threads} b={batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn total_time_never_exceeds_sum_of_singletons() {
        let graph = App::Fft.build(64).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        let singleton_total: f64 = graph
            .filter_ids()
            .map(|id| est.estimate(&NodeSet::singleton(id)).unwrap().normalized_us)
            .sum();
        assert!(p.total_estimated_time_us() <= singleton_total + 1e-6);
    }
}
