//! The paper's four-phase partitioning heuristic (Algorithm 1).
//!
//! Phase 1 merges filters along innermost pipelines, phase 2 merges the
//! remaining (split/join side) filters, phase 3 merges whole partitions with
//! a priority on turning IO-bound partitions compute-bound, and phase 4
//! attempts larger simultaneous merges, including collapsing the whole graph
//! into one partition when that is predicted to be fastest. Every merge goes
//! through `Try-Merge`, which requires connectivity, convexity, shared-memory
//! feasibility and a strict improvement of the estimated total runtime.
//!
//! The search is parallel-capable: phase 1 farms out independent pipeline
//! chains and phases 3/4 evaluate their merge candidates in deterministic
//! fixed-size batches (see [`PartitionSearchOptions`]), so any thread count
//! produces the identical [`Partitioning`] the serial search produces.
//! Phase 2 grows partitions along a frontier whose shape depends on each
//! accepted merge, so it stays serial; its singleton estimates are prewarmed
//! in parallel instead.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use sgmap_graph::{FilterId, NodeSet, StreamGraph};
use sgmap_pee::{Estimate, Estimator, SetChars};

use crate::adjacency::AdjacencyIndex;
use crate::error::PartitionError;
use crate::partitioning::{Partition, Partitioning};
use crate::search::{first_accepted, par_map, PartitionSearchOptions};

/// A partition under construction: its node set, the PEE's estimate, and the
/// characteristics bundle the estimator uses to derive union characteristics
/// incrementally when this part is a merge operand. Shared with the
/// multilevel partitioner, whose coarse clusters are `Part`s too.
#[derive(Debug, Clone)]
pub(crate) struct Part {
    pub(crate) nodes: NodeSet,
    pub(crate) estimate: Estimate,
    pub(crate) chars: Arc<SetChars>,
}

/// Memoised structural-feasibility answers (weak connectivity over forward
/// channels, then convexity — the exact guard every merge has always run),
/// shared across the whole search. The candidate enumeration re-visits the
/// same union sets on every merge iteration, and both predicates walk the
/// whole graph; for a fixed set they never change, so one answer per
/// distinct set suffices. The connectivity check matters even though merge
/// operands are always adjacent: adjacency counts feedback channels (as the
/// historical channel scan did), while connectivity deliberately ignores
/// them, so parts joined *only* by a feedback channel must stay rejected.
/// Benign racing (two threads computing the same pure predicate) cannot
/// change any decision.
#[derive(Debug, Default)]
pub(crate) struct FeasibilityCache<'t> {
    map: RwLock<HashMap<NodeSet, bool>>,
    /// Trace handle shared with the whole search; the cache carries it so
    /// `try_merge` and the phases can count without extra parameters.
    pub(crate) trace: sgmap_trace::TraceRef<'t>,
}

impl<'t> FeasibilityCache<'t> {
    pub(crate) fn new(trace: sgmap_trace::TraceRef<'t>) -> Self {
        FeasibilityCache {
            map: RwLock::new(HashMap::new()),
            trace,
        }
    }

    pub(crate) fn is_mergeable(&self, graph: &StreamGraph, set: &NodeSet) -> bool {
        if let Some(&known) = self
            .map
            .read()
            .expect("feasibility cache lock poisoned")
            .get(set)
        {
            sgmap_trace::add(self.trace, "partition.feasibility_hits", 1);
            return known;
        }
        sgmap_trace::add(self.trace, "partition.feasibility_misses", 1);
        let feasible = set.is_connected(graph) && set.is_convex(graph);
        self.map
            .write()
            .expect("feasibility cache lock poisoned")
            .insert(set.clone(), feasible);
        feasible
    }
}

/// Required relative improvement for a merge to be accepted: the merged
/// partition's estimated time must be below this fraction of the sum of the
/// parts. Compute-bound partitions gain almost nothing from merging (their
/// compute time is additive and only a sliver of boundary IO disappears), so
/// they fail this test and stay separate — the behaviour Section 4.0.3
/// describes — while IO-bound partitions, whose shared buffers shrink the
/// data-transfer time substantially, keep merging.
pub const MERGE_GAIN_FACTOR: f64 = 0.98;

/// Legacy entry point; use [`PartitionRequest`](crate::PartitionRequest).
///
/// Runs Algorithm 1 on the estimator's graph with the exact serial search.
///
/// # Errors
///
/// Returns [`PartitionError::FilterTooLarge`] if a filter does not fit in
/// shared memory on its own, or a graph error if the rates are inconsistent.
#[doc(hidden)]
pub fn partition_stream_graph(est: &Estimator<'_>) -> Result<Partitioning, PartitionError> {
    crate::PartitionRequest::new(est).run()
}

/// Legacy entry point; use
/// [`PartitionRequest::with_search`](crate::PartitionRequest::with_search).
///
/// # Errors
///
/// Same as [`partition_stream_graph`].
#[doc(hidden)]
pub fn partition_stream_graph_with(
    est: &Estimator<'_>,
    options: &PartitionSearchOptions,
) -> Result<Partitioning, PartitionError> {
    crate::PartitionRequest::new(est)
        .with_search(options.clone())
        .run()
}

/// Legacy entry point; use
/// [`PartitionRequest::with_trace`](crate::PartitionRequest::with_trace).
///
/// # Errors
///
/// Same as [`partition_stream_graph`].
#[doc(hidden)]
pub fn partition_stream_graph_traced<'t>(
    est: &Estimator<'_>,
    options: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'t>,
) -> Result<Partitioning, PartitionError> {
    crate::PartitionRequest::new(est)
        .with_search(options.clone())
        .with_trace(trace)
        .run()
}

/// The flat (non-multilevel) four-phase search: the historical Algorithm 1
/// driver behind [`Algorithm::Flat`](crate::Algorithm::Flat).
///
/// The result is identical — same partitions, same order, bit-equal
/// estimates — for every `options` value: candidate batches are evaluated
/// speculatively but the accepted merge is always the first one in serial
/// order, so threads only change how fast the answer arrives, never the
/// answer. With equal batch sizes, even the estimator-cache counters are
/// independent of the thread count. Each phase runs under its own span
/// (`partition.prewarm`, `partition.phase1`..`partition.phase4`) and the
/// search records candidate / merge / feasibility-cache counters; the
/// collector is write-only, so the resulting [`Partitioning`] is
/// bit-identical with and without it.
pub(crate) fn flat_partition(
    est: &Estimator<'_>,
    options: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Partitioning, PartitionError> {
    let threads = options.resolved_threads();
    let batch = options.batch.max(1);
    let graph = est.graph();
    let mut parts: Vec<Part> = Vec::new();
    let mut assigned = vec![false; graph.filter_count()];
    let feasible = FeasibilityCache::new(trace);

    // Unconditional, even on one thread: it pins the evaluated singleton set
    // to "every filter" regardless of thread count, so cache counters stay
    // thread-independent even when a later phase stops early on an error.
    {
        let _span = sgmap_trace::span(trace, "partition.prewarm");
        prewarm_singletons(est, graph, threads);
    }
    {
        let mut span = sgmap_trace::span(trace, "partition.phase1");
        phase1_pipelines(est, graph, &feasible, threads, &mut parts, &mut assigned)?;
        span.arg("parts", parts.len());
    }
    {
        let mut span = sgmap_trace::span(trace, "partition.phase2");
        phase2_remaining(est, graph, &feasible, &mut parts, &mut assigned)?;
        span.arg("parts", parts.len());
    }
    // From here on every filter is assigned, so the part-adjacency index
    // covers the graph; it replaces the per-candidate channel scans of
    // phases 3 and 4 and is maintained incrementally across merges — this
    // build is the only full construction of the flat search.
    sgmap_trace::add(trace, "partition.adjacency_rebuilds", 1);
    let mut adjacency = AdjacencyIndex::build(graph, parts.iter().map(|p| &p.nodes));
    {
        let mut span = sgmap_trace::span(trace, "partition.phase3");
        phase3_partition_merging(est, &feasible, threads, batch, &mut parts, &mut adjacency);
        span.arg("parts", parts.len());
    }
    {
        let mut span = sgmap_trace::span(trace, "partition.phase4");
        phase4_simultaneous(
            est,
            graph,
            &feasible,
            threads,
            batch,
            &mut parts,
            &mut adjacency,
        );
        span.arg("parts", parts.len());
    }

    let partitioning: Partitioning = parts
        .into_iter()
        .map(|p| Partition::new(p.nodes, p.estimate))
        .collect();
    partitioning.validate_cover(graph)?;
    Ok(partitioning)
}

/// Evaluates every filter's singleton estimate up front (in parallel when
/// threads are available). The phases query all of these anyway on the
/// success path (phase 1 walks every chain filter, phase 2 every remaining
/// filter), so prewarming changes neither the evaluated key set nor any
/// error the phases later report — it moves the dominant parameter-search
/// cost onto the worker threads and keeps the evaluated set fixed even when
/// a phase aborts early on a too-large filter.
pub(crate) fn prewarm_singletons(est: &Estimator<'_>, graph: &StreamGraph, threads: usize) {
    let ids: Vec<FilterId> = graph.filter_ids().collect();
    par_map(threads, &ids, |&id| {
        est.estimate(&NodeSet::singleton(id));
    });
}

/// Creates the singleton partition of a filter, failing if it cannot fit in
/// shared memory on its own.
pub(crate) fn singleton(est: &Estimator<'_>, id: FilterId) -> Result<Part, PartitionError> {
    let set = NodeSet::singleton(id);
    match est.estimate_with_chars(&set) {
        (Some(estimate), chars) => Ok(Part {
            nodes: set,
            estimate,
            chars,
        }),
        (None, _) => Err(PartitionError::FilterTooLarge(id)),
    }
}

/// The conditional merge of Algorithm 1: the merge happens only if the two
/// sets are connected once unified, the union is convex, it fits in shared
/// memory, and its estimated time strictly improves on the sum of the parts.
pub(crate) fn try_merge(
    est: &Estimator<'_>,
    feasible: &FeasibilityCache<'_>,
    a: &Part,
    b: &Part,
) -> Option<Part> {
    sgmap_trace::add(feasible.trace, "partition.candidates_evaluated", 1);
    let union = a.nodes.union(&b.nodes);
    if !feasible.is_mergeable(est.graph(), &union) {
        return None;
    }
    let (merged, chars) = est.estimate_union(&a.nodes, &a.chars, &b.nodes, &b.chars, &union);
    let merged = merged?;
    let combined = a.estimate.normalized_us + b.estimate.normalized_us;
    if merged.normalized_us < MERGE_GAIN_FACTOR * combined {
        Some(Part {
            nodes: union,
            estimate: merged,
            chars,
        })
    } else {
        None
    }
}

/// Identifies the innermost pipelines of the flat graph: maximal chains of
/// filters with forward in-degree and out-degree at most one.
fn pipeline_chains(graph: &StreamGraph) -> Vec<Vec<FilterId>> {
    let qualifies =
        |id: FilterId| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1;
    let mut chains = Vec::new();
    let mut visited = vec![false; graph.filter_count()];
    for id in graph.filter_ids() {
        if visited[id.index()] || !qualifies(id) {
            continue;
        }
        // Walk back to the head of the chain.
        let mut head = id;
        loop {
            let preds = graph.predecessors(head);
            match preds.first() {
                Some(&p)
                    if qualifies(p) && !visited[p.index()] && graph.successors(p).len() == 1 =>
                {
                    head = p;
                }
                _ => break,
            }
        }
        // Walk forward collecting the chain.
        let mut chain = vec![head];
        visited[head.index()] = true;
        let mut cur = head;
        loop {
            let succs = graph.successors(cur);
            match succs.first() {
                Some(&s)
                    if qualifies(s) && !visited[s.index()] && graph.predecessors(s).len() == 1 =>
                {
                    chain.push(s);
                    visited[s.index()] = true;
                    cur = s;
                }
                _ => break,
            }
        }
        chains.push(chain);
    }
    chains
}

/// Greedily merges one pipeline chain, returning each resulting partition
/// with the chain-index range it covers. Chains are disjoint, so this runs
/// on worker threads with no shared state beyond the estimator.
fn merge_chain(
    est: &Estimator<'_>,
    feasible: &FeasibilityCache<'_>,
    chain: &[FilterId],
) -> Result<Vec<(Part, std::ops::Range<usize>)>, PartitionError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chain.len() {
        let mut current = singleton(est, chain[i])?;
        let mut j = i + 1;
        while j < chain.len() {
            let next = singleton(est, chain[j])?;
            match try_merge(est, feasible, &current, &next) {
                Some(m) => {
                    sgmap_trace::add(feasible.trace, "partition.merges_accepted", 1);
                    current = m;
                    j += 1;
                }
                None => break,
            }
        }
        out.push((current, i..j));
        i = j;
    }
    Ok(out)
}

/// Phase 1 (lines 2–10): merge within innermost pipelines. Chains are
/// independent, so they are farmed out whole; results are applied in chain
/// order, which keeps both the partition order and the first reported error
/// identical to the serial walk.
fn phase1_pipelines(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    feasible: &FeasibilityCache<'_>,
    threads: usize,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    let chains = pipeline_chains(graph);
    let merged = par_map(threads, &chains, |chain| merge_chain(est, feasible, chain));
    for (chain, result) in chains.iter().zip(merged) {
        for (part, range) in result? {
            for k in range {
                assigned[chain[k].index()] = true;
            }
            parts.push(part);
        }
    }
    Ok(())
}

/// Phase 2 (lines 13–20): merge the filters outside the pipelines. The
/// frontier buffer is allocated once and reused across every growth pass and
/// every seed filter; candidates that an earlier merge of the same pass
/// already assigned are skipped at use time, exactly as the serial reference
/// did.
fn phase2_remaining(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    feasible: &FeasibilityCache<'_>,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    let mut frontier: Vec<FilterId> = Vec::new();
    for id in graph.filter_ids() {
        if assigned[id.index()] {
            continue;
        }
        let mut current = singleton(est, id)?;
        assigned[id.index()] = true;
        loop {
            let mut merged_any = false;
            // Neighbours of the partition that belong to no partition yet.
            frontier.clear();
            frontier.extend(
                current
                    .nodes
                    .iter()
                    .flat_map(|m| graph.neighbors(m))
                    .filter(|k| !assigned[k.index()] && !current.nodes.contains(*k)),
            );
            for &k in &frontier {
                if assigned[k.index()] {
                    continue;
                }
                let next = singleton(est, k)?;
                if let Some(m) = try_merge(est, feasible, &current, &next) {
                    sgmap_trace::add(feasible.trace, "partition.merges_accepted", 1);
                    current = m;
                    assigned[k.index()] = true;
                    merged_any = true;
                }
            }
            if !merged_any {
                break;
            }
        }
        parts.push(current);
    }
    Ok(())
}

/// Phase 3 (lines 23–31): merge partitions, prioritising IO-bound ones, in
/// three rounds of increasing scope. Candidate pairs are enumerated in the
/// serial scan order and evaluated in deterministic batches, so the accepted
/// merge is always the one the serial scan would accept first. Adjacency is
/// answered by the incrementally maintained index instead of a channel scan
/// per candidate pair.
pub(crate) fn phase3_partition_merging(
    est: &Estimator<'_>,
    feasible: &FeasibilityCache<'_>,
    threads: usize,
    batch: usize,
    parts: &mut Vec<Part>,
    adjacency: &mut AdjacencyIndex,
) {
    // Round 1: IO-bound with IO-bound; round 2: IO-bound with anyone;
    // round 3: anyone with anyone.
    for round in 0..3 {
        loop {
            // Candidate sources in ascending order of execution time.
            let mut order: Vec<usize> = (0..parts.len())
                .filter(|&i| match round {
                    0 | 1 => parts[i].estimate.is_io_bound(),
                    _ => true,
                })
                .collect();
            order.sort_by(|&a, &b| {
                parts[a]
                    .estimate
                    .normalized_us
                    .total_cmp(&parts[b].estimate.normalized_us)
            });
            // Candidate pairs in the serial scan order, generated lazily —
            // only the batches up to the first accepted merge materialise.
            let parts_ref: &[Part] = parts;
            let adjacency_ref: &AdjacencyIndex = adjacency;
            let candidates = order
                .iter()
                .flat_map(|&i| (0..parts_ref.len()).map(move |j| (i, j)))
                .filter(|&(i, j)| i != j);
            let found = first_accepted(threads, batch, candidates, |&(i, j)| {
                let partner_ok = match round {
                    0 => parts_ref[j].estimate.is_io_bound(),
                    _ => true,
                };
                if !partner_ok || !adjacency_ref.adjacent(i, j) {
                    return None;
                }
                try_merge(est, feasible, &parts_ref[i], &parts_ref[j])
            });
            match found {
                Some(((i, j), m)) => {
                    sgmap_trace::add(feasible.trace, "partition.merges_accepted", 1);
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    adjacency.merge_swap_remove(lo, hi);
                    parts.swap_remove(hi);
                    // After swap_remove(hi), index lo is still valid because
                    // lo < hi.
                    parts[lo] = m;
                }
                None => break,
            }
        }
    }
}

/// Phase 4 (lines 34–35): simultaneous merges of partition triples around a
/// common neighbour, then the all-nodes merge. Triples are enumerated in the
/// serial scan order and evaluated in deterministic batches. Neighbour lists
/// come from the adjacency index (whose iteration order is the ascending
/// part order the serial scan used); accepted triple merges compact the part
/// list with `Vec::remove`, and the index follows that exact bookkeeping
/// incrementally via [`AdjacencyIndex::merge_remove_push`] instead of a full
/// rebuild.
pub(crate) fn phase4_simultaneous(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    feasible: &FeasibilityCache<'_>,
    threads: usize,
    batch: usize,
    parts: &mut Vec<Part>,
    adjacency: &mut AdjacencyIndex,
) {
    // (1) Merge two neighbouring partitions of a common partition together
    // with it, which can pay off even when no pairwise merge does.
    if parts.len() <= 200 {
        loop {
            // Triples in the serial scan order, generated lazily: for each
            // common partition p (neighbour list read off the index when p
            // is first drawn), every unordered pair of its neighbours.
            let parts_ref: &[Part] = parts;
            let adjacency_ref: &AdjacencyIndex = adjacency;
            let triples = (0..parts_ref.len()).flat_map(|p| {
                let neighbours: Vec<usize> = adjacency_ref.neighbors(p).collect();
                let pairs: Vec<(usize, usize, usize)> = neighbours
                    .iter()
                    .enumerate()
                    .flat_map(|(x, &a)| neighbours.iter().skip(x + 1).map(move |&b| (p, a, b)))
                    .collect();
                pairs
            });
            let found = first_accepted(threads, batch, triples, |&(p, a, b)| {
                sgmap_trace::add(feasible.trace, "partition.candidates_evaluated", 1);
                let pa = parts_ref[p].nodes.union(&parts_ref[a].nodes);
                let union = pa.union(&parts_ref[b].nodes);
                if !feasible.is_mergeable(graph, &union) {
                    return None;
                }
                // Characteristics of the intermediate p ∪ a are derived
                // without estimating it (that would disturb the shared-cache
                // counters); the final union then goes through the caches as
                // a single query, exactly like the full-rescan path did.
                let pa_chars = est.merge_chars(
                    &parts_ref[p].nodes,
                    &parts_ref[p].chars,
                    &parts_ref[a].nodes,
                    &parts_ref[a].chars,
                    &pa,
                );
                let (e, chars) = est.estimate_union(
                    &pa,
                    &pa_chars,
                    &parts_ref[b].nodes,
                    &parts_ref[b].chars,
                    &union,
                );
                let e = e?;
                let combined = parts_ref[p].estimate.normalized_us
                    + parts_ref[a].estimate.normalized_us
                    + parts_ref[b].estimate.normalized_us;
                (e.normalized_us < MERGE_GAIN_FACTOR * combined).then_some(Part {
                    nodes: union,
                    estimate: e,
                    chars,
                })
            });
            match found {
                Some(((p, a, b), m)) => {
                    sgmap_trace::add(feasible.trace, "partition.merges_accepted", 1);
                    let mut remove = [p, a, b];
                    remove.sort_unstable();
                    // Remove from the highest index down so indices stay valid.
                    parts.remove(remove[2]);
                    parts.remove(remove[1]);
                    parts.remove(remove[0]);
                    parts.push(m);
                    adjacency.merge_remove_push(p, a, b);
                }
                None => break,
            }
        }
    }

    // (2) The all-nodes merge: guarantees the multi-partition solution is no
    // worse than the single-partition solution.
    if parts.len() > 1 {
        let all = NodeSet::all(graph);
        if let (Some(e), chars) = est.estimate_with_chars(&all) {
            let total: f64 = parts.iter().map(|p| p.estimate.normalized_us).sum();
            if e.normalized_us < MERGE_GAIN_FACTOR * total {
                sgmap_trace::add(feasible.trace, "partition.merges_accepted", 1);
                parts.clear();
                parts.push(Part {
                    nodes: all,
                    estimate: e,
                    chars,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;

    fn run(app: App, n: u32) -> (Partitioning, usize) {
        let graph = app.build(n).unwrap();
        let filters = graph.filter_count();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = crate::PartitionRequest::new(&est).run().unwrap();
        (p, filters)
    }

    #[test]
    fn des_partitioning_covers_the_graph_and_merges_filters() {
        let graph = App::Des.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = crate::PartitionRequest::new(&est).run().unwrap();
        p.validate_cover(&graph).unwrap();
        assert!(!p.is_empty());
        assert!(
            p.len() < graph.filter_count(),
            "some merging must happen: {} partitions for {} filters",
            p.len(),
            graph.filter_count()
        );
    }

    #[test]
    fn small_apps_collapse_to_few_partitions() {
        let (p, filters) = run(App::MatMul2, 3);
        assert!(p.len() <= filters);
        assert!(
            p.len() <= 6,
            "MatMul2 N=3 should merge heavily: {}",
            p.len()
        );
    }

    #[test]
    fn fmradio_partitions_scale_with_bands() {
        let (small, _) = run(App::FmRadio, 4);
        let (large, _) = run(App::FmRadio, 16);
        assert!(large.len() >= small.len());
    }

    #[test]
    fn pipeline_chain_detection_matches_structure() {
        let graph = App::Des.build(2).unwrap();
        let chains = pipeline_chains(&graph);
        // Every filter with degree <= 1 on both sides is in exactly one chain.
        let covered: usize = chains.iter().map(Vec::len).sum();
        let eligible = graph
            .filter_ids()
            .filter(|&id| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1)
            .count();
        assert_eq!(covered, eligible);
    }

    #[test]
    fn batched_parallel_search_matches_serial_bit_for_bit() {
        for app in [App::Des, App::FmRadio, App::Fft] {
            let n = if app == App::Fft { 64 } else { 8 };
            let graph = app.build(n).unwrap();
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            let serial = crate::PartitionRequest::new(&est).run().unwrap();
            for (threads, batch) in [(1, 32), (2, 32), (4, 7), (4, 1)] {
                let opts = PartitionSearchOptions::new()
                    .with_threads(threads)
                    .with_batch(batch);
                let parallel = crate::PartitionRequest::new(&est)
                    .with_search(opts)
                    .run()
                    .unwrap();
                assert_eq!(
                    serial.len(),
                    parallel.len(),
                    "{app:?} t={threads} b={batch}"
                );
                for (a, b) in serial.iter().zip(parallel.iter()) {
                    assert_eq!(a.nodes, b.nodes, "{app:?} t={threads} b={batch}");
                    assert_eq!(
                        a.estimate.normalized_us.to_bits(),
                        b.estimate.normalized_us.to_bits(),
                        "{app:?} t={threads} b={batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn total_time_never_exceeds_sum_of_singletons() {
        let graph = App::Fft.build(64).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = crate::PartitionRequest::new(&est).run().unwrap();
        let singleton_total: f64 = graph
            .filter_ids()
            .map(|id| est.estimate(&NodeSet::singleton(id)).unwrap().normalized_us)
            .sum();
        assert!(p.total_estimated_time_us() <= singleton_total + 1e-6);
    }
}
