//! The paper's four-phase partitioning heuristic (Algorithm 1).
//!
//! Phase 1 merges filters along innermost pipelines, phase 2 merges the
//! remaining (split/join side) filters, phase 3 merges whole partitions with
//! a priority on turning IO-bound partitions compute-bound, and phase 4
//! attempts larger simultaneous merges, including collapsing the whole graph
//! into one partition when that is predicted to be fastest. Every merge goes
//! through `Try-Merge`, which requires connectivity, convexity, shared-memory
//! feasibility and a strict improvement of the estimated total runtime.

use sgmap_graph::{FilterId, NodeSet, StreamGraph};
use sgmap_pee::{Estimate, Estimator};

use crate::error::PartitionError;
use crate::partitioning::{Partition, Partitioning};

/// A partition under construction.
type Part = (NodeSet, Estimate);

/// Required relative improvement for a merge to be accepted: the merged
/// partition's estimated time must be below this fraction of the sum of the
/// parts. Compute-bound partitions gain almost nothing from merging (their
/// compute time is additive and only a sliver of boundary IO disappears), so
/// they fail this test and stay separate — the behaviour Section 4.0.3
/// describes — while IO-bound partitions, whose shared buffers shrink the
/// data-transfer time substantially, keep merging.
pub const MERGE_GAIN_FACTOR: f64 = 0.98;

/// Runs Algorithm 1 on the estimator's graph.
///
/// # Errors
///
/// Returns [`PartitionError::FilterTooLarge`] if a filter does not fit in
/// shared memory on its own, or a graph error if the rates are inconsistent.
pub fn partition_stream_graph(est: &Estimator<'_>) -> Result<Partitioning, PartitionError> {
    let graph = est.graph();
    let mut parts: Vec<Part> = Vec::new();
    let mut assigned = vec![false; graph.filter_count()];

    phase1_pipelines(est, graph, &mut parts, &mut assigned)?;
    phase2_remaining(est, graph, &mut parts, &mut assigned)?;
    phase3_partition_merging(est, graph, &mut parts);
    phase4_simultaneous(est, graph, &mut parts);

    let partitioning: Partitioning = parts
        .into_iter()
        .map(|(nodes, estimate)| Partition::new(nodes, estimate))
        .collect();
    partitioning.validate_cover(graph)?;
    Ok(partitioning)
}

/// Creates the singleton partition of a filter, failing if it cannot fit in
/// shared memory on its own.
fn singleton(est: &Estimator<'_>, id: FilterId) -> Result<Part, PartitionError> {
    let set = NodeSet::singleton(id);
    match est.estimate(&set) {
        Some(e) => Ok((set, e)),
        None => Err(PartitionError::FilterTooLarge(id)),
    }
}

/// The conditional merge of Algorithm 1: the merge happens only if the two
/// sets are connected once unified, the union is convex, it fits in shared
/// memory, and its estimated time strictly improves on the sum of the parts.
fn try_merge(est: &Estimator<'_>, a: &Part, b: &Part) -> Option<Part> {
    let union = a.0.union(&b.0);
    let graph = est.graph();
    if !union.is_connected(graph) || !union.is_convex(graph) {
        return None;
    }
    let merged = est.estimate(&union)?;
    let combined = a.1.normalized_us + b.1.normalized_us;
    if merged.normalized_us < MERGE_GAIN_FACTOR * combined {
        Some((union, merged))
    } else {
        None
    }
}

/// Identifies the innermost pipelines of the flat graph: maximal chains of
/// filters with forward in-degree and out-degree at most one.
fn pipeline_chains(graph: &StreamGraph) -> Vec<Vec<FilterId>> {
    let qualifies =
        |id: FilterId| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1;
    let mut chains = Vec::new();
    let mut visited = vec![false; graph.filter_count()];
    for id in graph.filter_ids() {
        if visited[id.index()] || !qualifies(id) {
            continue;
        }
        // Walk back to the head of the chain.
        let mut head = id;
        loop {
            let preds = graph.predecessors(head);
            match preds.first() {
                Some(&p)
                    if qualifies(p) && !visited[p.index()] && graph.successors(p).len() == 1 =>
                {
                    head = p;
                }
                _ => break,
            }
        }
        // Walk forward collecting the chain.
        let mut chain = vec![head];
        visited[head.index()] = true;
        let mut cur = head;
        loop {
            let succs = graph.successors(cur);
            match succs.first() {
                Some(&s)
                    if qualifies(s) && !visited[s.index()] && graph.predecessors(s).len() == 1 =>
                {
                    chain.push(s);
                    visited[s.index()] = true;
                    cur = s;
                }
                _ => break,
            }
        }
        chains.push(chain);
    }
    chains
}

/// Phase 1 (lines 2–10): merge within innermost pipelines.
fn phase1_pipelines(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    for chain in pipeline_chains(graph) {
        let mut i = 0;
        while i < chain.len() {
            let mut current = singleton(est, chain[i])?;
            let mut j = i + 1;
            while j < chain.len() {
                let next = singleton(est, chain[j])?;
                match try_merge(est, &current, &next) {
                    Some(m) => {
                        current = m;
                        j += 1;
                    }
                    None => break,
                }
            }
            for k in i..j {
                assigned[chain[k].index()] = true;
            }
            parts.push(current);
            i = j;
        }
    }
    Ok(())
}

/// Phase 2 (lines 13–20): merge the filters outside the pipelines.
fn phase2_remaining(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    parts: &mut Vec<Part>,
    assigned: &mut [bool],
) -> Result<(), PartitionError> {
    for id in graph.filter_ids() {
        if assigned[id.index()] {
            continue;
        }
        let mut current = singleton(est, id)?;
        assigned[id.index()] = true;
        loop {
            let mut merged_any = false;
            // Neighbours of the partition that belong to no partition yet.
            let frontier: Vec<FilterId> = current
                .0
                .iter()
                .flat_map(|m| graph.neighbors(m))
                .filter(|k| !assigned[k.index()] && !current.0.contains(*k))
                .collect();
            for k in frontier {
                if assigned[k.index()] {
                    continue;
                }
                let next = singleton(est, k)?;
                if let Some(m) = try_merge(est, &current, &next) {
                    current = m;
                    assigned[k.index()] = true;
                    merged_any = true;
                }
            }
            if !merged_any {
                break;
            }
        }
        parts.push(current);
    }
    Ok(())
}

/// Returns `true` if some channel connects the two partitions (in either
/// direction).
fn adjacent(graph: &StreamGraph, a: &NodeSet, b: &NodeSet) -> bool {
    graph.channels().any(|(_, ch)| {
        (a.contains(ch.src) && b.contains(ch.dst)) || (b.contains(ch.src) && a.contains(ch.dst))
    })
}

/// Phase 3 (lines 23–31): merge partitions, prioritising IO-bound ones, in
/// three rounds of increasing scope.
fn phase3_partition_merging(est: &Estimator<'_>, graph: &StreamGraph, parts: &mut Vec<Part>) {
    // Round 1: IO-bound with IO-bound; round 2: IO-bound with anyone;
    // round 3: anyone with anyone.
    for round in 0..3 {
        loop {
            // Candidate sources in ascending order of execution time.
            let mut order: Vec<usize> = (0..parts.len())
                .filter(|&i| match round {
                    0 | 1 => parts[i].1.is_io_bound(),
                    _ => true,
                })
                .collect();
            order.sort_by(|&a, &b| {
                parts[a]
                    .1
                    .normalized_us
                    .total_cmp(&parts[b].1.normalized_us)
            });
            let mut merged_pair: Option<(usize, usize, Part)> = None;
            'outer: for &i in &order {
                for j in 0..parts.len() {
                    if i == j {
                        continue;
                    }
                    let partner_ok = match round {
                        0 => parts[j].1.is_io_bound(),
                        _ => true,
                    };
                    if !partner_ok || !adjacent(graph, &parts[i].0, &parts[j].0) {
                        continue;
                    }
                    if let Some(m) = try_merge(est, &parts[i], &parts[j]) {
                        merged_pair = Some((i, j, m));
                        break 'outer;
                    }
                }
            }
            match merged_pair {
                Some((i, j, m)) => {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    parts.swap_remove(hi);
                    // After swap_remove(hi), index lo is still valid because
                    // lo < hi.
                    parts[lo] = m;
                }
                None => break,
            }
        }
    }
}

/// Phase 4 (lines 34–35): simultaneous merges of partition triples around a
/// common neighbour, then the all-nodes merge.
fn phase4_simultaneous(est: &Estimator<'_>, graph: &StreamGraph, parts: &mut Vec<Part>) {
    // (1) Merge two neighbouring partitions of a common partition together
    // with it, which can pay off even when no pairwise merge does.
    if parts.len() <= 200 {
        loop {
            let mut best: Option<(usize, usize, usize, Part)> = None;
            'search: for p in 0..parts.len() {
                let neighbours: Vec<usize> = (0..parts.len())
                    .filter(|&q| q != p && adjacent(graph, &parts[p].0, &parts[q].0))
                    .collect();
                for (x, &a) in neighbours.iter().enumerate() {
                    for &b in neighbours.iter().skip(x + 1) {
                        let union = parts[p].0.union(&parts[a].0).union(&parts[b].0);
                        if !union.is_connected(graph) || !union.is_convex(graph) {
                            continue;
                        }
                        if let Some(e) = est.estimate(&union) {
                            let combined = parts[p].1.normalized_us
                                + parts[a].1.normalized_us
                                + parts[b].1.normalized_us;
                            if e.normalized_us < MERGE_GAIN_FACTOR * combined {
                                best = Some((p, a, b, (union, e)));
                                break 'search;
                            }
                        }
                    }
                }
            }
            match best {
                Some((p, a, b, m)) => {
                    let mut remove = [p, a, b];
                    remove.sort_unstable();
                    // Remove from the highest index down so indices stay valid.
                    parts.remove(remove[2]);
                    parts.remove(remove[1]);
                    parts.remove(remove[0]);
                    parts.push(m);
                }
                None => break,
            }
        }
    }

    // (2) The all-nodes merge: guarantees the multi-partition solution is no
    // worse than the single-partition solution.
    if parts.len() > 1 {
        let all = NodeSet::all(graph);
        if let Some(e) = est.estimate(&all) {
            let total: f64 = parts.iter().map(|p| p.1.normalized_us).sum();
            if e.normalized_us < MERGE_GAIN_FACTOR * total {
                parts.clear();
                parts.push((all, e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;

    fn run(app: App, n: u32) -> (Partitioning, usize) {
        let graph = app.build(n).unwrap();
        let filters = graph.filter_count();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        (p, filters)
    }

    #[test]
    fn des_partitioning_covers_the_graph_and_merges_filters() {
        let graph = App::Des.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        p.validate_cover(&graph).unwrap();
        assert!(!p.is_empty());
        assert!(
            p.len() < graph.filter_count(),
            "some merging must happen: {} partitions for {} filters",
            p.len(),
            graph.filter_count()
        );
    }

    #[test]
    fn small_apps_collapse_to_few_partitions() {
        let (p, filters) = run(App::MatMul2, 3);
        assert!(p.len() <= filters);
        assert!(
            p.len() <= 6,
            "MatMul2 N=3 should merge heavily: {}",
            p.len()
        );
    }

    #[test]
    fn fmradio_partitions_scale_with_bands() {
        let (small, _) = run(App::FmRadio, 4);
        let (large, _) = run(App::FmRadio, 16);
        assert!(large.len() >= small.len());
    }

    #[test]
    fn pipeline_chain_detection_matches_structure() {
        let graph = App::Des.build(2).unwrap();
        let chains = pipeline_chains(&graph);
        // Every filter with degree <= 1 on both sides is in exactly one chain.
        let covered: usize = chains.iter().map(Vec::len).sum();
        let eligible = graph
            .filter_ids()
            .filter(|&id| graph.predecessors(id).len() <= 1 && graph.successors(id).len() <= 1)
            .count();
        assert_eq!(covered, eligible);
    }

    #[test]
    fn total_time_never_exceeds_sum_of_singletons() {
        let graph = App::Fft.build(64).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_stream_graph(&est).unwrap();
        let singleton_total: f64 = graph
            .filter_ids()
            .map(|id| est.estimate(&NodeSet::singleton(id)).unwrap().normalized_us)
            .sum();
        assert!(p.total_estimated_time_us() <= singleton_total + 1e-6);
    }
}
