//! The prior work's partitioning heuristic (Huynh et al. [7]).
//!
//! The previous framework "uses a partitioning heuristic that keeps merging
//! filters until the SM requirement is violated" (Section 3.1.1): the only
//! merging criterion is that the merged partition still fits in shared
//! memory; predicted execution time plays no role. The result is fewer,
//! larger partitions than Algorithm 1 produces — which is exactly the
//! contrast the paper's Section 4.0.3 quantifies with the "kernel count
//! ratio".

use sgmap_graph::NodeSet;
use sgmap_pee::{Estimate, Estimator};

use crate::error::PartitionError;
use crate::partitioning::{Partition, Partitioning};

/// Runs the SM-requirement-only partitioner.
///
/// # Errors
///
/// Returns [`PartitionError::FilterTooLarge`] if a filter does not fit in
/// shared memory on its own, or a graph error if the rates are inconsistent.
pub fn partition_baseline(est: &Estimator<'_>) -> Result<Partitioning, PartitionError> {
    let graph = est.graph();
    let order = graph.topological_order().map_err(PartitionError::Graph)?;

    let mut partitions: Vec<Partition> = Vec::new();
    let mut current: Option<(NodeSet, Estimate)> = None;

    for id in order {
        let single = NodeSet::singleton(id);
        let single_est = est
            .estimate(&single)
            .ok_or(PartitionError::FilterTooLarge(id))?;
        current = match current.take() {
            None => Some((single, single_est)),
            Some((set, set_est)) => {
                let union = set.union(&single);
                let feasible = union.is_connected(graph)
                    && union.is_convex(graph)
                    && est.estimate(&union).is_some();
                if feasible {
                    let e = est.estimate(&union).expect("checked above");
                    Some((union, e))
                } else {
                    partitions.push(Partition::new(set, set_est));
                    Some((single, single_est))
                }
            }
        };
    }
    if let Some((set, e)) = current {
        partitions.push(Partition::new(set, e));
    }

    let partitioning = Partitioning::new(partitions);
    partitioning.validate_cover(graph)?;
    Ok(partitioning)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionRequest;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;

    #[test]
    fn baseline_covers_the_graph() {
        let graph = App::Des.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_baseline(&est).unwrap();
        p.validate_cover(&graph).unwrap();
        assert!(!p.is_empty());
    }

    #[test]
    fn baseline_produces_no_more_partitions_than_the_proposed_heuristic() {
        // Section 4.0.3: the proposed partitioner's counts are "almost always
        // greater than or equal to" the prior work's, because its merging
        // criteria are stricter.
        for (app, n) in [
            (App::Des, 8),
            (App::Dct, 6),
            (App::Fft, 64),
            (App::Bitonic, 8),
        ] {
            let graph = app.build(n).unwrap();
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            let baseline = partition_baseline(&est).unwrap();
            let proposed = PartitionRequest::new(&est).run().unwrap();
            assert!(
                baseline.len() <= proposed.len(),
                "{app} N={n}: baseline {} > proposed {}",
                baseline.len(),
                proposed.len()
            );
        }
    }

    #[test]
    fn baseline_partitions_fit_in_shared_memory() {
        let graph = App::FmRadio.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = partition_baseline(&est).unwrap();
        for part in p.iter() {
            assert!(part.estimate.sm_bytes <= u64::from(est.gpu().shared_mem_bytes));
        }
    }
}
