//! Stream graph partitioning (Section 3.1 of the paper).
//!
//! A *partition* is a connected, convex sub-graph of the stream graph that
//! will be compiled into a single GPU kernel. This crate provides:
//!
//! * [`Partition`] / [`Partitioning`] — the result types, each partition
//!   carrying the PEE's [`Estimate`](sgmap_pee::Estimate) for it,
//! * [`partition_stream_graph`] — the paper's four-phase heuristic
//!   (Algorithm 1), which merges filters only when the performance model
//!   predicts the merge reduces total runtime; its candidate search can run
//!   on worker threads via [`partition_stream_graph_with`] and
//!   [`PartitionSearchOptions`] while producing the identical result at any
//!   thread count,
//! * [`partition_baseline`] — the prior work's heuristic, which merges while
//!   the shared-memory requirement is satisfied and ignores time,
//! * [`single_partition`] — the single-partition (SPSG) mapping of the whole
//!   graph, with a global-memory spill fallback for graphs whose working set
//!   exceeds shared memory,
//! * [`Pdg`] — the Partition Dependence Graph (Figure 3.4) consumed by the
//!   multi-GPU mapping step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod baseline;
mod error;
mod partitioning;
mod pdg;
mod proposed;
mod search;
mod spsg;

pub use adjacency::AdjacencyIndex;
pub use baseline::partition_baseline;
pub use error::PartitionError;
pub use partitioning::{Partition, Partitioning};
pub use pdg::{build_pdg, Pdg, PdgEdge};
pub use proposed::{
    partition_stream_graph, partition_stream_graph_traced, partition_stream_graph_with,
};
pub use search::PartitionSearchOptions;
pub use spsg::single_partition;

use sgmap_pee::Estimator;

/// Which partitioning algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// The paper's four-phase, performance-model-driven heuristic.
    Proposed,
    /// The prior work's SM-requirement-only heuristic.
    Baseline,
    /// A single partition containing the whole graph (SPSG).
    Single,
}

/// Runs the selected partitioner with the serial candidate search.
///
/// # Errors
///
/// Returns an error if some filter cannot fit into shared memory even on its
/// own, or if the graph's rates are inconsistent.
pub fn partition_with(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
) -> Result<Partitioning, PartitionError> {
    partition_with_options(estimator, kind, &PartitionSearchOptions::serial())
}

/// Runs the selected partitioner with a configurable candidate search. The
/// options only apply to the proposed partitioner — the baseline and SPSG
/// partitioners have no candidate enumeration worth parallelising.
///
/// # Errors
///
/// Returns an error if some filter cannot fit into shared memory even on its
/// own, or if the graph's rates are inconsistent.
pub fn partition_with_options(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
    options: &PartitionSearchOptions,
) -> Result<Partitioning, PartitionError> {
    partition_with_options_traced(estimator, kind, options, None)
}

/// [`partition_with_options`] with an optional trace collector (spans per
/// phase and search counters; see [`partition_stream_graph_traced`]).
///
/// # Errors
///
/// Same as [`partition_with_options`].
pub fn partition_with_options_traced(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
    options: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Partitioning, PartitionError> {
    match kind {
        PartitionerKind::Proposed => partition_stream_graph_traced(estimator, options, trace),
        PartitionerKind::Baseline => partition_baseline(estimator),
        PartitionerKind::Single => Ok(Partitioning::new(vec![single_partition(estimator)])),
    }
}
