//! Stream graph partitioning (Section 3.1 of the paper).
//!
//! A *partition* is a connected, convex sub-graph of the stream graph that
//! will be compiled into a single GPU kernel. This crate provides:
//!
//! * [`Partition`] / [`Partitioning`] — the result types, each partition
//!   carrying the PEE's [`Estimate`](sgmap_pee::Estimate) for it,
//! * [`PartitionRequest`] — the single entry point: a builder selecting the
//!   partitioner ([`PartitionerKind`]), the proposed partitioner's
//!   [`Algorithm`] (the paper's four-phase search, or the multilevel
//!   coarsen-partition-refine scheme with [`MultilevelOptions`] for 10k+
//!   filter graphs), the candidate-search options
//!   ([`PartitionSearchOptions`] — identical result at any thread count) and
//!   an optional trace collector,
//! * [`partition_baseline`] — the prior work's heuristic, which merges while
//!   the shared-memory requirement is satisfied and ignores time,
//! * [`single_partition`] — the single-partition (SPSG) mapping of the whole
//!   graph, with a global-memory spill fallback for graphs whose working set
//!   exceeds shared memory,
//! * [`Pdg`] — the Partition Dependence Graph (Figure 3.4) consumed by the
//!   multi-GPU mapping step.
//!
//! The historical free functions (`partition_stream_graph*`,
//! `partition_with*`) remain as hidden thin wrappers over
//! [`PartitionRequest`] for source compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod baseline;
mod error;
mod multilevel;
mod partitioning;
mod pdg;
mod proposed;
mod request;
mod search;
mod spsg;

pub use adjacency::AdjacencyIndex;
pub use baseline::partition_baseline;
pub use error::PartitionError;
pub use multilevel::MultilevelOptions;
pub use partitioning::{Partition, Partitioning};
pub use pdg::{build_pdg, Pdg, PdgEdge};
pub use proposed::{
    partition_stream_graph, partition_stream_graph_traced, partition_stream_graph_with,
};
pub use request::{Algorithm, PartitionRequest};
pub use search::PartitionSearchOptions;
pub use spsg::single_partition;

use sgmap_pee::Estimator;

/// Which partitioning algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// The paper's four-phase, performance-model-driven heuristic.
    Proposed,
    /// The prior work's SM-requirement-only heuristic.
    Baseline,
    /// A single partition containing the whole graph (SPSG).
    Single,
}

/// Legacy entry point; use [`PartitionRequest::with_kind`].
///
/// # Errors
///
/// Returns an error if some filter cannot fit into shared memory even on its
/// own, or if the graph's rates are inconsistent.
#[doc(hidden)]
pub fn partition_with(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
) -> Result<Partitioning, PartitionError> {
    PartitionRequest::new(estimator).with_kind(kind).run()
}

/// Legacy entry point; use [`PartitionRequest::with_search`].
///
/// # Errors
///
/// Same as [`partition_with`].
#[doc(hidden)]
pub fn partition_with_options(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
    options: &PartitionSearchOptions,
) -> Result<Partitioning, PartitionError> {
    PartitionRequest::new(estimator)
        .with_kind(kind)
        .with_search(options.clone())
        .run()
}

/// Legacy entry point; use [`PartitionRequest::with_trace`].
///
/// # Errors
///
/// Same as [`partition_with`].
#[doc(hidden)]
pub fn partition_with_options_traced(
    estimator: &Estimator<'_>,
    kind: PartitionerKind,
    options: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Partitioning, PartitionError> {
    PartitionRequest::new(estimator)
        .with_kind(kind)
        .with_search(options.clone())
        .with_trace(trace)
        .run()
}
