//! The unified partition entry point: one builder, one `run()`.
//!
//! Historically the crate grew five public entry points (three
//! `partition_stream_graph*` variants plus two `partition_with_options*`
//! wrappers) that all said "partition this estimator's graph" with different
//! subsets of knobs. [`PartitionRequest`] collapses them: pick a
//! [`PartitionerKind`], an [`Algorithm`], a [`PartitionSearchOptions`] and an
//! optional trace collector, then call [`PartitionRequest::run`]. The old
//! functions survive as `#[doc(hidden)]` one-line wrappers so out-of-tree
//! code keeps compiling, but everything in this repository uses the builder.
//!
//! ```rust
//! use sgmap_apps::App;
//! use sgmap_gpusim::GpuSpec;
//! use sgmap_partition::{Algorithm, MultilevelOptions, PartitionRequest};
//! use sgmap_pee::Estimator;
//!
//! let graph = App::FmRadio.build(8).unwrap();
//! let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
//! let flat = PartitionRequest::new(&est).run().unwrap();
//! let ml = PartitionRequest::new(&est)
//!     .with_algorithm(Algorithm::Multilevel(MultilevelOptions::default()))
//!     .run()
//!     .unwrap();
//! assert!(!flat.is_empty() && !ml.is_empty());
//! ```

use sgmap_pee::Estimator;

use crate::error::PartitionError;
use crate::multilevel::{multilevel_partition, MultilevelOptions};
use crate::partitioning::Partitioning;
use crate::proposed::flat_partition;
use crate::search::PartitionSearchOptions;
use crate::{partition_baseline, single_partition, PartitionerKind};

/// How the proposed partitioner searches the merge space. The baseline and
/// SPSG partitioners ignore this (they have no search).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The paper's four-phase search over the full filter graph. Exact but
    /// quadratic-ish in the part count — the right choice up to a few
    /// hundred filters.
    #[default]
    Flat,
    /// Heavy-edge coarsening, four-phase search on the coarsest graph, then
    /// boundary-local refinement during uncoarsening. Scales to 10k+ filter
    /// graphs that the flat search cannot finish.
    Multilevel(MultilevelOptions),
}

/// A configured partitioning run, built incrementally and executed by
/// [`PartitionRequest::run`]. The single entry point behind every partition
/// call in the repository.
#[derive(Debug)]
pub struct PartitionRequest<'e, 'g, 't> {
    estimator: &'e Estimator<'g>,
    kind: PartitionerKind,
    algorithm: Algorithm,
    search: PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'t>,
}

impl<'e, 'g, 't> PartitionRequest<'e, 'g, 't> {
    /// Starts a request with the defaults: the proposed partitioner, the
    /// flat algorithm, the serial search, no tracing.
    pub fn new(estimator: &'e Estimator<'g>) -> Self {
        PartitionRequest {
            estimator,
            kind: PartitionerKind::Proposed,
            algorithm: Algorithm::Flat,
            search: PartitionSearchOptions::serial(),
            trace: None,
        }
    }

    /// Selects which partitioner runs (proposed / baseline / SPSG).
    pub fn with_kind(mut self, kind: PartitionerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the proposed partitioner's algorithm (flat or multilevel).
    /// Ignored by the baseline and SPSG partitioners.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the candidate-search options (threads, batch size). Any value
    /// produces the identical partitioning; see [`PartitionSearchOptions`].
    pub fn with_search(mut self, search: PartitionSearchOptions) -> Self {
        self.search = search;
        self
    }

    /// Attaches an optional trace collector (spans per phase / level and
    /// search counters). The collector is write-only: the result is
    /// bit-identical with and without it.
    pub fn with_trace(mut self, trace: sgmap_trace::TraceRef<'t>) -> Self {
        self.trace = trace;
        self
    }

    /// Runs the configured partitioner.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::FilterTooLarge`] if a filter cannot fit in
    /// shared memory even on its own, or a graph error if the stream rates
    /// are inconsistent.
    pub fn run(&self) -> Result<Partitioning, PartitionError> {
        match self.kind {
            PartitionerKind::Proposed => match &self.algorithm {
                Algorithm::Flat => flat_partition(self.estimator, &self.search, self.trace),
                Algorithm::Multilevel(options) => {
                    multilevel_partition(self.estimator, options, &self.search, self.trace)
                }
            },
            PartitionerKind::Baseline => partition_baseline(self.estimator),
            PartitionerKind::Single => {
                Ok(Partitioning::new(vec![single_partition(self.estimator)]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;

    #[test]
    fn request_defaults_match_the_legacy_entry_points() {
        let graph = App::Des.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let via_request = PartitionRequest::new(&est).run().unwrap();
        #[allow(deprecated)]
        let via_legacy = crate::partition_stream_graph(&est).unwrap();
        assert_eq!(via_request.len(), via_legacy.len());
        for (a, b) in via_request.iter().zip(via_legacy.iter()) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(
                a.estimate.normalized_us.to_bits(),
                b.estimate.normalized_us.to_bits()
            );
        }
    }

    #[test]
    fn every_kind_runs_through_the_request() {
        let graph = App::FmRadio.build(4).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        for kind in [
            PartitionerKind::Proposed,
            PartitionerKind::Baseline,
            PartitionerKind::Single,
        ] {
            let p = PartitionRequest::new(&est).with_kind(kind).run().unwrap();
            p.validate_cover(&graph).unwrap();
        }
    }
}
