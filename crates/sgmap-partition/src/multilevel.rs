//! Multilevel partitioning: coarsen, partition the coarse graph, refine.
//!
//! The flat four-phase search evaluates O(|parts|²) merge candidates per
//! accepted merge, which is fine at the paper's scale (≤ ~100 filters) and
//! hopeless at 10k+. The multilevel scheme brings large graphs into range
//! while reusing the exact machinery the flat search trusts:
//!
//! 1. **Coarsening** — repeated heavy-edge matching over the cluster
//!    adjacency graph ([`AdjacencyIndex`] supplies the edge weights). Two
//!    clusters merge when their union stays connected, convex and
//!    shared-memory feasible — no estimate-improvement requirement, because
//!    coarsening is structural, not a search; SM feasibility alone bounds
//!    cluster growth. Union estimates and characteristics are derived
//!    incrementally with [`Estimator::estimate_union`], so coarse-node
//!    estimates stay cache-exact.
//! 2. **Initial partitioning** — the flat search's phases 3 and 4 run
//!    unchanged on the coarsest clusters (a few dozen to a few hundred
//!    `Part`s, the regime they were built for).
//! 3. **Uncoarsening + refinement** — walking back down the level stack,
//!    boundary clusters of the finer level move between parts whenever the
//!    move *strictly* lowers the summed estimated time of the two parts it
//!    touches. Strict improvement guarantees refinement never worsens the
//!    estimator objective and (since the state space is finite) terminates.
//!
//! Every stage is deterministic for every thread count: matching is a serial
//! ascending scan, and refinement evaluates its candidates through the same
//! [`first_accepted`] batching discipline the flat phases use, so the
//! accepted move is always the first one in serial order.

use sgmap_graph::StreamGraph;
use sgmap_pee::Estimator;

use crate::adjacency::AdjacencyIndex;
use crate::error::PartitionError;
use crate::partitioning::{Partition, Partitioning};
use crate::proposed::{
    phase3_partition_merging, phase4_simultaneous, prewarm_singletons, singleton, FeasibilityCache,
    Part,
};
use crate::search::{first_accepted, PartitionSearchOptions};

/// Tuning knobs for [`Algorithm::Multilevel`](crate::Algorithm::Multilevel).
/// Integer-only so the options can sit inside hashable / comparable sweep
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultilevelOptions {
    /// Coarsening stops once the cluster count drops to this value (or no
    /// matching round accepts a merge). The coarsest graph is handed to the
    /// flat phases, so this is the part count the O(n²) search sees.
    pub coarsen_target: usize,
    /// Upper bound on coarsening levels; a safety stop, since matching
    /// roughly halves the cluster count per level.
    pub max_levels: usize,
    /// How many heavy neighbours a cluster tries to match with before
    /// staying single for the level (candidates in descending edge-weight
    /// order, index ascending on ties).
    pub matching_attempts: usize,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            coarsen_target: 96,
            max_levels: 20,
            matching_attempts: 4,
        }
    }
}

impl MultilevelOptions {
    /// Default options (target 96 coarse clusters, ≤ 20 levels, 4 matching
    /// attempts per cluster).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the coarsest cluster-count target (clamped to ≥ 2).
    pub fn with_coarsen_target(mut self, target: usize) -> Self {
        self.coarsen_target = target.max(2);
        self
    }

    /// Sets the maximum number of coarsening levels (clamped to ≥ 1).
    pub fn with_max_levels(mut self, levels: usize) -> Self {
        self.max_levels = levels.max(1);
        self
    }

    /// Sets the matching attempts per cluster (clamped to ≥ 1).
    pub fn with_matching_attempts(mut self, attempts: usize) -> Self {
        self.matching_attempts = attempts.max(1);
        self
    }
}

/// The multilevel driver behind
/// [`Algorithm::Multilevel`](crate::Algorithm::Multilevel). Same contract as
/// the flat driver: identical output for every `search` value, write-only
/// tracing (`partition.coarsen` / `partition.initial` / `partition.refine`
/// spans, `partition.coarsen_levels` / `partition.refine_moves` /
/// `partition.adjacency_rebuilds` counters).
pub(crate) fn multilevel_partition(
    est: &Estimator<'_>,
    options: &MultilevelOptions,
    search: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<Partitioning, PartitionError> {
    let threads = search.resolved_threads();
    let batch = search.batch.max(1);
    let graph = est.graph();
    let feasible = FeasibilityCache::new(trace);

    {
        let _span = sgmap_trace::span(trace, "partition.prewarm");
        prewarm_singletons(est, graph, threads);
    }

    // Level 0: every filter is its own cluster.
    let mut clusters: Vec<Part> = graph
        .filter_ids()
        .map(|id| singleton(est, id))
        .collect::<Result<_, _>>()?;

    // Coarsen until the target is reached or matching dries up. `levels`
    // keeps the finer cluster sets, finest first, for the way back down.
    let target = options.coarsen_target.max(2);
    let mut levels: Vec<Vec<Part>> = Vec::new();
    while clusters.len() > target && levels.len() < options.max_levels.max(1) {
        let mut span = sgmap_trace::span(trace, "partition.coarsen");
        span.arg("level", levels.len());
        span.arg("clusters_in", clusters.len());
        match coarsen_level(est, graph, &feasible, options, &clusters, trace) {
            Some(coarser) => {
                span.arg("clusters_out", coarser.len());
                sgmap_trace::add(trace, "partition.coarsen_levels", 1);
                levels.push(std::mem::replace(&mut clusters, coarser));
            }
            None => {
                span.arg("clusters_out", clusters.len());
                break;
            }
        }
    }

    // Initial partitioning: the flat phases 3 + 4 on the coarsest clusters.
    let mut parts = clusters;
    {
        let mut span = sgmap_trace::span(trace, "partition.initial");
        sgmap_trace::add(trace, "partition.adjacency_rebuilds", 1);
        let mut adjacency = AdjacencyIndex::build(graph, parts.iter().map(|p| &p.nodes));
        phase3_partition_merging(est, &feasible, threads, batch, &mut parts, &mut adjacency);
        phase4_simultaneous(
            est,
            graph,
            &feasible,
            threads,
            batch,
            &mut parts,
            &mut adjacency,
        );
        span.arg("parts", parts.len());
    }

    // Uncoarsen: refine against each finer level, coarsest-stored first.
    for (level, level_clusters) in levels.iter().enumerate().rev() {
        let mut span = sgmap_trace::span(trace, "partition.refine");
        span.arg("level", level);
        let moves = refine_level(
            est,
            graph,
            &feasible,
            threads,
            batch,
            level_clusters,
            &mut parts,
            trace,
        );
        span.arg("moves", moves);
    }

    let partitioning: Partitioning = parts
        .into_iter()
        .map(|p| Partition::new(p.nodes, p.estimate))
        .collect();
    partitioning.validate_cover(graph)?;
    Ok(partitioning)
}

/// One heavy-edge matching round. Clusters are visited in ascending order;
/// each unmatched cluster tries its unmatched neighbours in descending
/// edge-weight order (ties broken by ascending index) and merges with the
/// first one whose union is connected, convex and SM-feasible. Returns the
/// coarser cluster set, or `None` if no merge was accepted.
fn coarsen_level(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    feasible: &FeasibilityCache<'_>,
    options: &MultilevelOptions,
    clusters: &[Part],
    trace: sgmap_trace::TraceRef<'_>,
) -> Option<Vec<Part>> {
    sgmap_trace::add(trace, "partition.adjacency_rebuilds", 1);
    let adjacency = AdjacencyIndex::build(graph, clusters.iter().map(|p| &p.nodes));
    let mut matched = vec![false; clusters.len()];
    let mut next: Vec<Part> = Vec::with_capacity(clusters.len());
    let mut merges = 0usize;
    for i in 0..clusters.len() {
        if matched[i] {
            continue;
        }
        matched[i] = true;
        let mut candidates: Vec<(u32, usize)> = adjacency
            .neighbors(i)
            .filter(|&j| !matched[j])
            .map(|j| (adjacency.weight(i, j), j))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut made = None;
        for &(_, j) in candidates.iter().take(options.matching_attempts.max(1)) {
            sgmap_trace::add(trace, "partition.candidates_evaluated", 1);
            let union = clusters[i].nodes.union(&clusters[j].nodes);
            if !feasible.is_mergeable(graph, &union) {
                continue;
            }
            let (estimate, chars) = est.estimate_union(
                &clusters[i].nodes,
                &clusters[i].chars,
                &clusters[j].nodes,
                &clusters[j].chars,
                &union,
            );
            let Some(estimate) = estimate else { continue };
            made = Some((
                j,
                Part {
                    nodes: union,
                    estimate,
                    chars,
                },
            ));
            break;
        }
        match made {
            Some((j, part)) => {
                matched[j] = true;
                merges += 1;
                next.push(part);
            }
            None => next.push(clusters[i].clone()),
        }
    }
    (merges > 0).then_some(next)
}

/// A refinement move under evaluation: what the source part becomes and what
/// the target part becomes if the cluster changes sides.
struct MovePlan {
    remain: Part,
    target: Part,
}

/// Boundary-local refinement at one level: repeatedly move a cluster to an
/// adjacent part while that strictly lowers the summed estimated time of the
/// two parts involved. Candidates are enumerated in ascending (cluster,
/// target-part) order and evaluated through [`first_accepted`], so any
/// thread count applies the serial move sequence. A move never empties its
/// source part, so the part count is stable. Returns the number of moves.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_level(
    est: &Estimator<'_>,
    graph: &StreamGraph,
    feasible: &FeasibilityCache<'_>,
    threads: usize,
    batch: usize,
    clusters: &[Part],
    parts: &mut [Part],
    trace: sgmap_trace::TraceRef<'_>,
) -> usize {
    // Filter → part position, maintained across moves.
    let mut assignment = vec![usize::MAX; graph.filter_count()];
    for (p, part) in parts.iter().enumerate() {
        for id in part.nodes.iter() {
            assignment[id.index()] = p;
        }
    }
    let mut moves = 0usize;
    // Strict improvement of a finite state space already terminates; the cap
    // only bounds pathological churn.
    let cap = clusters.len().max(16) * 2;
    while moves < cap {
        let parts_ref: &[Part] = parts;
        let assignment_ref: &[usize] = &assignment;
        // Interior clusters (every neighbour in the home part) fall out with
        // an empty target list, so only boundary clusters reach evaluation.
        let candidates = (0..clusters.len()).flat_map(|c| {
            let home = assignment_ref[clusters[c].nodes.as_slice()[0].index()];
            let mut targets: Vec<usize> = clusters[c]
                .nodes
                .iter()
                .flat_map(|id| graph.neighbors(id))
                .map(|nb| assignment_ref[nb.index()])
                .filter(|&q| q != home)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            targets.into_iter().map(move |q| (c, home, q))
        });
        let found = first_accepted(threads, batch, candidates, |&(c, p, q)| {
            sgmap_trace::add(trace, "partition.candidates_evaluated", 1);
            let remain = parts_ref[p].nodes.difference(&clusters[c].nodes);
            if remain.is_empty() || !feasible.is_mergeable(graph, &remain) {
                return None;
            }
            let union = parts_ref[q].nodes.union(&clusters[c].nodes);
            if !feasible.is_mergeable(graph, &union) {
                return None;
            }
            let (remain_est, remain_chars) = est.estimate_with_chars(&remain);
            let remain_est = remain_est?;
            let (target_est, target_chars) = est.estimate_union(
                &parts_ref[q].nodes,
                &parts_ref[q].chars,
                &clusters[c].nodes,
                &clusters[c].chars,
                &union,
            );
            let target_est = target_est?;
            let before = parts_ref[p].estimate.normalized_us + parts_ref[q].estimate.normalized_us;
            let after = remain_est.normalized_us + target_est.normalized_us;
            (after < before).then_some(MovePlan {
                remain: Part {
                    nodes: remain,
                    estimate: remain_est,
                    chars: remain_chars,
                },
                target: Part {
                    nodes: union,
                    estimate: target_est,
                    chars: target_chars,
                },
            })
        });
        match found {
            Some(((c, p, q), plan)) => {
                parts[p] = plan.remain;
                parts[q] = plan.target;
                for id in clusters[c].nodes.iter() {
                    assignment[id.index()] = q;
                }
                sgmap_trace::add(trace, "partition.refine_moves", 1);
                moves += 1;
            }
            None => break,
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;
    use sgmap_graph::NodeSet;

    fn multilevel(app: App, n: u32, options: MultilevelOptions) -> (Partitioning, StreamGraph) {
        let graph = app.build(n).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = crate::PartitionRequest::new(&est)
            .with_algorithm(crate::Algorithm::Multilevel(options))
            .run()
            .unwrap();
        (p, app.build(n).unwrap())
    }

    #[test]
    fn multilevel_covers_and_merges_on_paper_apps() {
        for app in [App::Des, App::Fft] {
            let n = if app == App::Fft { 64 } else { 8 };
            let (p, graph) = multilevel(app, n, MultilevelOptions::default());
            p.validate_cover(&graph).unwrap();
            assert!(p.len() < graph.filter_count(), "{app:?}: no merging");
            for part in p.iter() {
                assert!(part.nodes.is_connected(&graph));
                assert!(part.nodes.is_convex(&graph));
            }
        }
    }

    #[test]
    fn multilevel_never_beats_the_sum_of_singletons_bound() {
        let graph = App::Fft.build(128).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = crate::PartitionRequest::new(&est)
            .with_algorithm(crate::Algorithm::Multilevel(MultilevelOptions::default()))
            .run()
            .unwrap();
        let singleton_total: f64 = graph
            .filter_ids()
            .map(|id| est.estimate(&NodeSet::singleton(id)).unwrap().normalized_us)
            .sum();
        assert!(p.total_estimated_time_us() <= singleton_total + 1e-6);
    }

    #[test]
    fn coarsening_respects_the_target_and_forced_levels() {
        let graph = App::SynthPipe.build(300).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        // A tiny target forces several levels; the result must still cover.
        let p = crate::PartitionRequest::new(&est)
            .with_algorithm(crate::Algorithm::Multilevel(
                MultilevelOptions::new()
                    .with_coarsen_target(8)
                    .with_max_levels(3),
            ))
            .run()
            .unwrap();
        p.validate_cover(&graph).unwrap();
    }

    #[test]
    fn multilevel_is_thread_count_invariant() {
        let graph = App::SynthPipe.build(300).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let run = |threads: usize| {
            crate::PartitionRequest::new(&est)
                .with_algorithm(crate::Algorithm::Multilevel(MultilevelOptions::default()))
                .with_search(PartitionSearchOptions::new().with_threads(threads))
                .run()
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(
                a.estimate.normalized_us.to_bits(),
                b.estimate.normalized_us.to_bits()
            );
        }
    }

    #[test]
    fn refinement_strictly_improves_or_leaves_alone() {
        // A deliberately bad split of a chain: the first two filters in one
        // part, the rest in the other. Refinement may move the boundary but
        // must never raise the total estimate and must keep parts valid.
        let graph = App::SynthPipe.build(60).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let feasible = FeasibilityCache::new(None);
        let ids: Vec<_> = graph.filter_ids().collect();
        let split = 2usize;
        let make_part = |ids: &[sgmap_graph::FilterId]| {
            let nodes = NodeSet::from_ids(ids.iter().copied());
            let (e, chars) = est.estimate_with_chars(&nodes);
            Part {
                nodes,
                estimate: e.expect("part fits"),
                chars,
            }
        };
        let mut parts = vec![make_part(&ids[..split]), make_part(&ids[split..])];
        // Only refine if the handmade split is actually feasible (the chain
        // prefix of a pipeline-family graph is).
        for part in &parts {
            assert!(part.nodes.is_connected(&graph) && part.nodes.is_convex(&graph));
        }
        let clusters: Vec<Part> = graph
            .filter_ids()
            .map(|id| singleton(&est, id).unwrap())
            .collect();
        let before: f64 = parts.iter().map(|p| p.estimate.normalized_us).sum();
        refine_level(&est, &graph, &feasible, 1, 32, &clusters, &mut parts, None);
        let after: f64 = parts.iter().map(|p| p.estimate.normalized_us).sum();
        assert!(
            after <= before + 1e-9,
            "refinement worsened: {before} -> {after}"
        );
        assert_eq!(parts.len(), 2, "refinement must not change the part count");
        let p: Partitioning = parts
            .into_iter()
            .map(|p| Partition::new(p.nodes, p.estimate))
            .collect();
        p.validate_cover(&graph).unwrap();
    }
}
