//! The partitioning result types.

use sgmap_graph::{FilterId, NodeSet, StreamGraph};
use sgmap_pee::Estimate;

use crate::error::PartitionError;

/// One partition: a set of filters plus the PEE's estimate for it.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// The filters in this partition.
    pub nodes: NodeSet,
    /// The performance estimate (including the selected kernel parameters).
    pub estimate: Estimate,
}

impl Partition {
    /// Creates a partition.
    pub fn new(nodes: NodeSet, estimate: Estimate) -> Self {
        Partition { nodes, estimate }
    }

    /// The normalised execution-time estimate `T(p)` in microseconds.
    pub fn time_us(&self) -> f64 {
        self.estimate.normalized_us
    }

    /// Number of filters in the partition.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the partition contains no filters.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A complete partitioning of a stream graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Partitioning {
    partitions: Vec<Partition>,
}

impl Partitioning {
    /// Creates a partitioning from a list of partitions.
    pub fn new(partitions: Vec<Partition>) -> Self {
        Partitioning { partitions }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Returns `true` if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partitions, in creation order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Iterates over the partitions.
    pub fn iter(&self) -> impl Iterator<Item = &Partition> + '_ {
        self.partitions.iter()
    }

    /// Sum of the partitions' estimated times (the quantity Algorithm 1
    /// minimises), in microseconds.
    pub fn total_estimated_time_us(&self) -> f64 {
        self.partitions.iter().map(Partition::time_us).sum()
    }

    /// Index of the partition containing `id`, if any.
    pub fn partition_of(&self, id: FilterId) -> Option<usize> {
        self.partitions.iter().position(|p| p.nodes.contains(id))
    }

    /// Number of partitions classified as compute-bound by the PEE.
    pub fn compute_bound_count(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.estimate.is_compute_bound())
            .count()
    }

    /// Checks that every filter of `graph` belongs to exactly one partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidCover`] otherwise.
    pub fn validate_cover(&self, graph: &StreamGraph) -> Result<(), PartitionError> {
        let mut seen = vec![false; graph.filter_count()];
        for p in &self.partitions {
            for id in p.nodes.iter() {
                if id.index() >= seen.len() || seen[id.index()] {
                    return Err(PartitionError::InvalidCover);
                }
                seen[id.index()] = true;
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(PartitionError::InvalidCover)
        }
    }
}

impl FromIterator<Partition> for Partitioning {
    fn from_iter<T: IntoIterator<Item = Partition>>(iter: T) -> Self {
        Partitioning::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_gpusim::KernelParams;

    fn dummy_estimate(t: f64) -> Estimate {
        Estimate {
            params: KernelParams { w: 1, s: 1, f: 32 },
            t_comp_us: t,
            t_dt_us: t / 2.0,
            t_db_us: 0.1,
            t_exec_us: t + 0.1,
            normalized_us: t + 0.1,
            sm_bytes: 1024,
            io_bytes_per_exec: 64,
        }
    }

    #[test]
    fn totals_and_lookup() {
        let p0 = Partition::new(
            NodeSet::from_ids([FilterId::from_index(0), FilterId::from_index(1)]),
            dummy_estimate(10.0),
        );
        let p1 = Partition::new(
            NodeSet::singleton(FilterId::from_index(2)),
            dummy_estimate(5.0),
        );
        let part = Partitioning::new(vec![p0, p1]);
        assert_eq!(part.len(), 2);
        assert!((part.total_estimated_time_us() - 15.2).abs() < 1e-9);
        assert_eq!(part.partition_of(FilterId::from_index(1)), Some(0));
        assert_eq!(part.partition_of(FilterId::from_index(2)), Some(1));
        assert_eq!(part.partition_of(FilterId::from_index(9)), None);
        assert_eq!(part.compute_bound_count(), 2);
    }

    #[test]
    fn cover_validation_detects_gaps_and_overlaps() {
        use sgmap_graph::{Filter, StreamGraph};
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 0, 1, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 0, 1.0));
        g.add_channel(a, b, 1, 1).unwrap();

        let full = Partitioning::new(vec![Partition::new(
            NodeSet::from_ids([a, b]),
            dummy_estimate(1.0),
        )]);
        assert!(full.validate_cover(&g).is_ok());

        let gap = Partitioning::new(vec![Partition::new(
            NodeSet::singleton(a),
            dummy_estimate(1.0),
        )]);
        assert_eq!(gap.validate_cover(&g), Err(PartitionError::InvalidCover));

        let overlap = Partitioning::new(vec![
            Partition::new(NodeSet::from_ids([a, b]), dummy_estimate(1.0)),
            Partition::new(NodeSet::singleton(b), dummy_estimate(1.0)),
        ]);
        assert_eq!(
            overlap.validate_cover(&g),
            Err(PartitionError::InvalidCover)
        );
    }
}
