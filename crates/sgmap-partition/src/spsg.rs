//! Single-Partition Single-GPU (SPSG) mapping.
//!
//! The SOSP metric of the paper's evaluation (Section 4.0.4) is defined
//! relative to the single-partition mapping of Udupa et al. [10]: the whole
//! stream graph compiled into one kernel and run on one GPU. For graphs whose
//! working set exceeds shared memory, the single kernel must spill its
//! inter-filter buffers to global memory; this module models that spill by
//! charging the internal channel traffic to the kernel's IO volume.

use sgmap_graph::NodeSet;
use sgmap_pee::{select_parameters, Estimate, Estimator, ParamSearchSpace};

use crate::partitioning::Partition;

/// Builds the single whole-graph partition, spilling to global memory when
/// shared memory is insufficient.
pub fn single_partition(est: &Estimator<'_>) -> Partition {
    let graph = est.graph();
    let all = NodeSet::all(graph);
    if let Some(e) = est.estimate(&all) {
        return Partition::new(all, e);
    }

    // Spill path: the working set no longer lives in shared memory, so every
    // internal channel's traffic goes through global memory and is charged to
    // the data-transfer threads, while the shared-memory footprint shrinks to
    // the IO staging area alone.
    let reps = est.repetition_vector();
    let mut chars = est.characteristics(&all);
    let internal_bytes: u64 = all
        .internal_channels(graph)
        .into_iter()
        .map(|cid| graph.channel_iteration_bytes(cid, reps))
        .sum();
    chars.io_bytes_per_exec += 2 * internal_bytes; // written once, read once
    chars.sm_bytes_per_exec = chars.io_bytes_per_exec.clamp(256, 4096);

    let gpu = est.gpu();
    let model = est.model();
    let (params, normalized_us) =
        select_parameters(&chars, model, gpu, &ParamSearchSpace::default()).unwrap_or_else(|| {
            // Even the staging buffer does not fit: fall back to a
            // minimal, heavily serialised configuration.
            let p = sgmap_gpusim::KernelParams { w: 1, s: 1, f: 32 };
            (p, model.t_exec_us(&chars, p))
        });
    let estimate = Estimate {
        params,
        t_comp_us: model.t_comp_us(&chars, params),
        t_dt_us: model.t_dt_us(&chars, params),
        t_db_us: model.t_db_us(&chars, params),
        t_exec_us: model.t_exec_us(&chars, params),
        normalized_us,
        sm_bytes: chars.kernel_sm_bytes(params.w),
        io_bytes_per_exec: chars.io_bytes_per_exec,
    };
    Partition::new(all, estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;
    use sgmap_pee::Estimator;

    #[test]
    fn small_graphs_fit_without_spilling() {
        let graph = App::Des.build(4).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = single_partition(&est);
        assert_eq!(p.nodes.len(), graph.filter_count());
        assert!(p.estimate.sm_bytes <= u64::from(est.gpu().shared_mem_bytes));
    }

    #[test]
    fn oversized_graphs_spill_and_get_slower() {
        // A duplicate split of a 16 KiB block into four branches keeps
        // 64 KiB of branch buffers alive at once — more than the 48 KiB of
        // shared memory — so the whole-graph kernel must spill.
        use sgmap_graph::{GraphBuilder, JoinKind, SplitKind, StreamSpec};
        let tokens = 4096u32;
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, tokens, 1.0),
            StreamSpec::split_join(
                SplitKind::Duplicate,
                (0..4)
                    .map(|i| StreamSpec::filter(format!("b{i}"), tokens, tokens, 10.0))
                    .collect(),
                JoinKind::RoundRobin(vec![tokens; 4]),
            ),
            StreamSpec::filter("sink", 4 * tokens, 0, 1.0),
        ]);
        let graph = GraphBuilder::new("huge").build(spec).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        assert!(
            est.estimate(&NodeSet::all(&graph)).is_none(),
            "should not fit"
        );
        let spilled = single_partition(&est);
        // The spilled kernel is IO bound: its DT volume includes the internal
        // traffic.
        assert!(spilled.estimate.io_bytes_per_exec > 8 * 1024);
        assert!(spilled.time_us() > 0.0);

        // A small FFT fits (no spill) and is faster per execution.
        let small_graph = App::Fft.build(64).unwrap();
        let small_est = Estimator::new(&small_graph, GpuSpec::m2090()).unwrap();
        let small = single_partition(&small_est);
        assert!(small.time_us() < spilled.time_us());
    }

    #[test]
    fn spsg_always_covers_every_filter() {
        for (app, n) in [(App::Bitonic, 32), (App::MatMul3, 4), (App::FmRadio, 12)] {
            let graph = app.build(n).unwrap();
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            let p = single_partition(&est);
            assert_eq!(p.nodes.len(), graph.filter_count(), "{app}");
        }
    }
}
