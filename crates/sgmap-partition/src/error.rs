//! Error type for the partitioning stage.

use std::fmt;

use sgmap_graph::{FilterId, GraphError};

/// Errors produced while partitioning a stream graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A single filter does not fit into the device's shared memory even as
    /// its own partition; the graph cannot be compiled with the
    /// one-kernel-for-graph approach.
    FilterTooLarge(FilterId),
    /// The underlying graph analysis failed (inconsistent rates, cycles, ...).
    Graph(GraphError),
    /// The produced partitioning does not cover every filter exactly once
    /// (internal invariant violation).
    InvalidCover,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::FilterTooLarge(id) => write!(
                f,
                "filter {} exceeds shared memory even as a singleton partition",
                id.index()
            ),
            PartitionError::Graph(e) => write!(f, "graph analysis failed: {e}"),
            PartitionError::InvalidCover => {
                write!(f, "partitioning does not cover all filters exactly once")
            }
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PartitionError {
    fn from(e: GraphError) -> Self {
        PartitionError::Graph(e)
    }
}
