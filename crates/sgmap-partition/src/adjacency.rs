//! An incremental partition-adjacency index.
//!
//! Phases 3 and 4 of the proposed partitioner repeatedly ask "does any
//! channel connect partitions *i* and *j*?". Answering that with a scan over
//! every channel of the graph costs O(|channels|) per candidate pair, and
//! the candidate enumeration visits O(|parts|²) pairs per accepted merge.
//! This index answers the question in O(log degree): it keeps a filter→part
//! map plus, for every part, an ordered map from neighbouring part to the
//! number of channels crossing between the two. Merges maintain the index
//! incrementally, mirroring the partitioner's `swap_remove` bookkeeping.

use std::collections::BTreeMap;

use sgmap_graph::{FilterId, NodeSet, StreamGraph};

/// Partition adjacency, indexed by the partitioner's part positions.
///
/// The index is a pure acceleration structure: its answers are equal to
/// scanning the graph's channels against the current node sets (the property
/// suite enforces this on random graphs and merge sequences), so swapping it
/// in changes no partitioning decision.
#[derive(Debug, Clone)]
pub struct AdjacencyIndex {
    /// Filter index → part index (`usize::MAX` for unassigned filters).
    part_of: Vec<usize>,
    /// Per part: neighbouring part → number of crossing channels (in either
    /// direction, feedback included — the same channels a full scan counts).
    rows: Vec<BTreeMap<usize, u32>>,
}

impl AdjacencyIndex {
    /// Builds the index for the given parts over `graph`. Filters not
    /// covered by any part are ignored; each filter may appear in at most
    /// one part.
    pub fn build<'p>(graph: &StreamGraph, parts: impl IntoIterator<Item = &'p NodeSet>) -> Self {
        let mut part_of = vec![usize::MAX; graph.filter_count()];
        let mut rows = Vec::new();
        for (p, nodes) in parts.into_iter().enumerate() {
            for id in nodes.iter() {
                debug_assert_eq!(part_of[id.index()], usize::MAX, "overlapping parts");
                part_of[id.index()] = p;
            }
            rows.push(BTreeMap::new());
        }
        let mut index = AdjacencyIndex { part_of, rows };
        for (_, ch) in graph.channels() {
            index.record_channel(ch.src, ch.dst);
        }
        index
    }

    fn record_channel(&mut self, src: FilterId, dst: FilterId) {
        let (a, b) = (self.part_of[src.index()], self.part_of[dst.index()]);
        if a == usize::MAX || b == usize::MAX || a == b {
            return;
        }
        *self.rows[a].entry(b).or_insert(0) += 1;
        *self.rows[b].entry(a).or_insert(0) += 1;
    }

    /// Number of parts currently indexed.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no part is indexed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The part a filter belongs to, if any.
    pub fn part_of(&self, id: FilterId) -> Option<usize> {
        match self.part_of[id.index()] {
            usize::MAX => None,
            p => Some(p),
        }
    }

    /// `true` if some channel connects parts `i` and `j` (in either
    /// direction).
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains_key(&j)
    }

    /// The parts adjacent to `p`, in ascending part order — the same order a
    /// serial scan over part positions produces.
    pub fn neighbors(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        self.rows[p].keys().copied()
    }

    /// Number of channels crossing between parts `i` and `j` (either
    /// direction, feedback included); 0 when not adjacent. This is the edge
    /// weight the multilevel coarsener's heavy-edge matching maximises.
    pub fn weight(&self, i: usize, j: usize) -> u32 {
        self.rows[i].get(&j).copied().unwrap_or(0)
    }

    /// Applies the partitioner's merge bookkeeping to the index: part `hi`
    /// is merged into part `lo` (`lo < hi`), then the part list is compacted
    /// with `swap_remove(hi)` — the last part moves into position `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `hi` is out of bounds.
    pub fn merge_swap_remove(&mut self, lo: usize, hi: usize) {
        assert!(lo < hi && hi < self.rows.len(), "bad merge {lo} <- {hi}");
        // Filters of `hi` now belong to `lo`.
        for p in &mut self.part_of {
            if *p == hi {
                *p = lo;
            }
        }
        // Fold hi's adjacency row into lo's; channels between the two become
        // internal and disappear from the index.
        let row_hi = std::mem::take(&mut self.rows[hi]);
        for (q, c) in row_hi {
            if q == lo {
                self.rows[lo].remove(&hi);
                continue;
            }
            let q_row = &mut self.rows[q];
            q_row.remove(&hi);
            *q_row.entry(lo).or_insert(0) += c;
            *self.rows[lo].entry(q).or_insert(0) += c;
        }
        // Mirror `swap_remove`: the last part takes position hi. Its row can
        // no longer mention hi (folded away above), so re-keying is safe.
        let last = self.rows.len() - 1;
        if hi != last {
            let row_last = std::mem::take(&mut self.rows[last]);
            for &q in row_last.keys() {
                let q_row = &mut self.rows[q];
                if let Some(c) = q_row.remove(&last) {
                    q_row.insert(hi, c);
                }
            }
            self.rows[hi] = row_last;
            for p in &mut self.part_of {
                if *p == last {
                    *p = hi;
                }
            }
        }
        self.rows.pop();
    }

    /// Applies the phase-4 triple-merge bookkeeping to the index: the three
    /// distinct parts are merged into one, the part list is compacted with
    /// `Vec::remove` from the highest index down (shifting every later part
    /// two or three positions towards the front), and the merged part is
    /// pushed at the end — exactly the order-preserving sequence
    /// `remove(r2); remove(r1); remove(r0); push(merged)` the partitioner
    /// performs on its part vector. Replaces the full index rebuild that
    /// used to follow every accepted triple merge.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not distinct or out of bounds.
    pub fn merge_remove_push(&mut self, a: usize, b: usize, c: usize) {
        let mut removed = [a, b, c];
        removed.sort_unstable();
        assert!(
            removed[0] < removed[1] && removed[1] < removed[2] && removed[2] < self.rows.len(),
            "bad triple merge {a}, {b}, {c}"
        );
        let new_last = self.rows.len() - 3;
        // Old index → new index for surviving parts.
        let shift = |k: usize| k - removed.iter().filter(|&&r| r < k).count();
        // The merged part's row: the union of the three rows, internal links
        // dropped, survivor keys remapped, parallel link counts summed.
        let mut merged: BTreeMap<usize, u32> = BTreeMap::new();
        for &r in &removed {
            for (&k, &w) in &self.rows[r] {
                if !removed.contains(&k) {
                    *merged.entry(shift(k)).or_insert(0) += w;
                }
            }
        }
        // Every surviving row: drop links to the removed parts (re-pointing
        // their summed weight at the merged part), remap the rest.
        let old_rows = std::mem::take(&mut self.rows);
        self.rows.reserve(new_last + 1);
        for (idx, row) in old_rows.into_iter().enumerate() {
            if removed.contains(&idx) {
                continue;
            }
            let mut out = BTreeMap::new();
            let mut to_merged = 0u32;
            for (k, w) in row {
                if removed.contains(&k) {
                    to_merged += w;
                } else {
                    out.insert(shift(k), w);
                }
            }
            if to_merged > 0 {
                out.insert(new_last, to_merged);
            }
            self.rows.push(out);
        }
        self.rows.push(merged);
        for p in &mut self.part_of {
            if *p == usize::MAX {
                continue;
            }
            *p = if removed.contains(p) {
                new_last
            } else {
                shift(*p)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::Filter;

    /// Scan-based reference the index must agree with.
    fn naive_adjacent(graph: &StreamGraph, a: &NodeSet, b: &NodeSet) -> bool {
        graph.channels().any(|(_, ch)| {
            (a.contains(ch.src) && b.contains(ch.dst)) || (b.contains(ch.src) && a.contains(ch.dst))
        })
    }

    fn assert_matches_naive(graph: &StreamGraph, parts: &[NodeSet], index: &AdjacencyIndex) {
        assert_eq!(index.len(), parts.len());
        for i in 0..parts.len() {
            for j in 0..parts.len() {
                if i == j {
                    continue;
                }
                assert_eq!(
                    index.adjacent(i, j),
                    naive_adjacent(graph, &parts[i], &parts[j]),
                    "parts {i} and {j}"
                );
            }
            let from_index: Vec<usize> = index.neighbors(i).collect();
            let from_scan: Vec<usize> = (0..parts.len())
                .filter(|&q| q != i && naive_adjacent(graph, &parts[i], &parts[q]))
                .collect();
            assert_eq!(from_index, from_scan, "neighbour order of part {i}");
        }
    }

    /// a -> b -> c -> d plus a -> e -> d and a feedback d -> a.
    fn fixture() -> (StreamGraph, Vec<FilterId>) {
        let mut g = StreamGraph::new("adjacency");
        let a = g.add_filter(Filter::new("a", 0, 2, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 2.0));
        let c = g.add_filter(Filter::new("c", 1, 1, 3.0));
        let d = g.add_filter(Filter::new("d", 2, 1, 4.0));
        let e = g.add_filter(Filter::new("e", 1, 1, 5.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(b, c, 1, 1).unwrap();
        g.add_channel(c, d, 1, 1).unwrap();
        g.add_channel(a, e, 1, 1).unwrap();
        g.add_channel(e, d, 1, 1).unwrap();
        g.add_feedback_channel(d, a, 1, 1, 1).unwrap();
        (g, vec![a, b, c, d, e])
    }

    #[test]
    fn build_matches_the_channel_scan_including_feedback() {
        let (g, ids) = fixture();
        let parts = vec![
            NodeSet::from_ids([ids[0]]),
            NodeSet::from_ids([ids[1], ids[2]]),
            NodeSet::from_ids([ids[3]]),
            NodeSet::from_ids([ids[4]]),
        ];
        let index = AdjacencyIndex::build(&g, &parts);
        assert_matches_naive(&g, &parts, &index);
        // The feedback channel d -> a makes parts 0 and 2 adjacent even
        // though no forward channel connects them.
        assert!(index.adjacent(0, 2));
        assert_eq!(index.part_of(ids[2]), Some(1));
    }

    #[test]
    fn merge_swap_remove_tracks_the_partitioner_bookkeeping() {
        let (g, ids) = fixture();
        let mut parts = vec![
            NodeSet::from_ids([ids[0]]),
            NodeSet::from_ids([ids[1]]),
            NodeSet::from_ids([ids[2]]),
            NodeSet::from_ids([ids[3]]),
            NodeSet::from_ids([ids[4]]),
        ];
        let mut index = AdjacencyIndex::build(&g, &parts);
        assert_matches_naive(&g, &parts, &index);
        // Merge part 3 (d) into part 1 (b): parts[1] = b ∪ d, last part (e)
        // moves into position 3.
        let union = parts[1].union(&parts[3]);
        index.merge_swap_remove(1, 3);
        parts.swap_remove(3);
        parts[1] = union;
        assert_matches_naive(&g, &parts, &index);
        // Merge the last pair too (a into position 0 stays, c at 2 merges
        // into 0? — exercise hi == last as well).
        let hi = parts.len() - 1;
        let union = parts[0].union(&parts[hi]);
        index.merge_swap_remove(0, hi);
        parts.swap_remove(hi);
        parts[0] = union;
        assert_matches_naive(&g, &parts, &index);
    }

    #[test]
    fn merge_remove_push_tracks_the_triple_merge_bookkeeping() {
        let (g, ids) = fixture();
        let mut parts: Vec<NodeSet> = ids.iter().map(|&id| NodeSet::from_ids([id])).collect();
        let mut index = AdjacencyIndex::build(&g, &parts);
        // Merge {a, b, e} (indices 0, 1, 4) the way phase 4 does.
        let union = parts[0].union(&parts[1]).union(&parts[4]);
        index.merge_remove_push(0, 1, 4);
        parts.remove(4);
        parts.remove(1);
        parts.remove(0);
        parts.push(union);
        assert_matches_naive(&g, &parts, &index);
        assert_eq!(index.part_of(ids[0]), Some(parts.len() - 1));
        // The incremental result equals a fresh build.
        let rebuilt = AdjacencyIndex::build(&g, &parts);
        for i in 0..parts.len() {
            assert_eq!(
                index.neighbors(i).collect::<Vec<_>>(),
                rebuilt.neighbors(i).collect::<Vec<_>>()
            );
            for j in 0..parts.len() {
                assert_eq!(index.weight(i, j), rebuilt.weight(i, j), "({i},{j})");
            }
        }
        // A second triple merge including the freshly pushed part.
        let union = parts[0].union(&parts[1]).union(&parts[2]);
        index.merge_remove_push(2, 0, 1);
        parts.remove(2);
        parts.remove(1);
        parts.remove(0);
        parts.push(union);
        assert_matches_naive(&g, &parts, &index);
    }

    /// Asserts the incremental index equals one rebuilt from scratch,
    /// weights included (`assert_matches_naive` only checks adjacency).
    fn assert_matches_rebuild(graph: &StreamGraph, parts: &[NodeSet], index: &AdjacencyIndex) {
        let rebuilt = AdjacencyIndex::build(graph, parts);
        assert_eq!(index.len(), rebuilt.len());
        for i in 0..parts.len() {
            assert_eq!(
                index.neighbors(i).collect::<Vec<_>>(),
                rebuilt.neighbors(i).collect::<Vec<_>>(),
                "neighbours of part {i}"
            );
            for j in 0..parts.len() {
                assert_eq!(index.weight(i, j), rebuilt.weight(i, j), "({i},{j})");
            }
        }
        for id in graph.filter_ids() {
            assert_eq!(index.part_of(id), rebuilt.part_of(id));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Random interleavings of pair merges (`merge_swap_remove`, phase
        /// 3's bookkeeping) and triple merges (`merge_remove_push`, phase
        /// 4's) on a random synthetic graph always leave the incremental
        /// index identical to a from-scratch rebuild.
        #[test]
        fn random_merge_sequences_match_a_fresh_rebuild(
            seed in proptest::prelude::any::<u64>(),
            n in 20u32..60,
            picks in proptest::prop::collection::vec((0usize..1000, 0usize..1000, 0usize..1000), 1..12),
        ) {
            let graph = sgmap_graph::GraphBuilder::new("prop")
                .build(sgmap_apps::synthetic::spec(
                    sgmap_apps::synthetic::Family::Mixed,
                    n,
                    seed,
                ))
                .expect("synthetic specs build");
            let mut parts: Vec<NodeSet> = graph
                .filter_ids()
                .map(|id| NodeSet::from_ids([id]))
                .collect();
            let mut index = AdjacencyIndex::build(&graph, &parts);
            for (a, b, triple) in picks {
                if parts.len() < 4 {
                    break;
                }
                let a = a % parts.len();
                let b = b % parts.len();
                if a == b {
                    continue;
                }
                if triple % 2 == 0 {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let union = parts[lo].union(&parts[hi]);
                    index.merge_swap_remove(lo, hi);
                    parts.swap_remove(hi);
                    parts[lo] = union;
                } else {
                    let c = triple % parts.len();
                    if c == a || c == b {
                        continue;
                    }
                    let union = parts[a].union(&parts[b]).union(&parts[c]);
                    index.merge_remove_push(a, b, c);
                    let mut removed = [a, b, c];
                    removed.sort_unstable();
                    for r in removed.into_iter().rev() {
                        parts.remove(r);
                    }
                    parts.push(union);
                }
                assert_matches_rebuild(&graph, &parts, &index);
            }
        }
    }
}
