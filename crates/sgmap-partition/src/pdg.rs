//! The Partition Dependence Graph (Figure 3.4).
//!
//! Once the stream graph is partitioned, the mapping step only needs to know
//! each partition's workload `T_i` and, for every pair of partitions with at
//! least one stream-graph channel between them, the total data volume `D_ij`
//! crossing that boundary per steady-state iteration. Partitions that contain
//! source (sink) filters additionally exchange the primary input (output)
//! with the host.

use sgmap_graph::{FilterKind, RepetitionVector, StreamGraph};

use crate::partitioning::Partitioning;

/// One edge of the PDG: data flowing from partition `from` to partition `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdgEdge {
    /// Producing partition index.
    pub from: usize,
    /// Consuming partition index.
    pub to: usize,
    /// Bytes crossing this boundary per steady-state iteration (`D_ij`).
    pub bytes_per_iteration: u64,
}

/// The Partition Dependence Graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Pdg {
    /// Workload `T_i` of each partition (normalised microseconds per
    /// execution), indexed like the partitioning.
    pub times_us: Vec<f64>,
    /// Inter-partition edges with their data volumes.
    pub edges: Vec<PdgEdge>,
    /// Primary input bytes per iteration entering each partition from the
    /// host.
    pub primary_input_bytes: Vec<u64>,
    /// Primary output bytes per iteration leaving each partition to the host.
    pub primary_output_bytes: Vec<u64>,
}

impl Pdg {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.times_us.len()
    }

    /// Returns `true` if the PDG has no partitions.
    pub fn is_empty(&self) -> bool {
        self.times_us.is_empty()
    }

    /// Total workload of all partitions, microseconds.
    pub fn total_time_us(&self) -> f64 {
        self.times_us.iter().sum()
    }

    /// Total inter-partition traffic per iteration, bytes.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes_per_iteration).sum()
    }

    /// A topological order of the partitions (the PDG of a convex
    /// partitioning is a DAG).
    ///
    /// # Panics
    ///
    /// Panics if the PDG contains a cycle, which a valid convex partitioning
    /// cannot produce.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for e in self.edges.iter().filter(|e| e.from == u) {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        assert_eq!(order.len(), n, "partition dependence graph has a cycle");
        order
    }
}

/// Builds the PDG of a partitioning.
///
/// # Panics
///
/// Panics if the partitioning does not cover the graph (use
/// [`Partitioning::validate_cover`] first).
pub fn build_pdg(graph: &StreamGraph, reps: &RepetitionVector, partitioning: &Partitioning) -> Pdg {
    let n = partitioning.len();
    let times_us = partitioning.iter().map(|p| p.time_us()).collect();
    let owner: Vec<usize> = graph
        .filter_ids()
        .map(|id| {
            partitioning
                .partition_of(id)
                .expect("partitioning covers every filter")
        })
        .collect();

    let mut edge_bytes = std::collections::HashMap::<(usize, usize), u64>::new();
    for (cid, ch) in graph.channels() {
        let from = owner[ch.src.index()];
        let to = owner[ch.dst.index()];
        if from != to {
            *edge_bytes.entry((from, to)).or_insert(0) += graph.channel_iteration_bytes(cid, reps);
        }
    }
    let mut edges: Vec<PdgEdge> = edge_bytes
        .into_iter()
        .map(|((from, to), bytes_per_iteration)| PdgEdge {
            from,
            to,
            bytes_per_iteration,
        })
        .collect();
    edges.sort_by_key(|e| (e.from, e.to));

    let mut primary_input_bytes = vec![0u64; n];
    let mut primary_output_bytes = vec![0u64; n];
    for (id, f) in graph.filters() {
        let p = owner[id.index()];
        match f.kind {
            FilterKind::Source => {
                primary_input_bytes[p] +=
                    reps[id.index()] * u64::from(f.push) * u64::from(f.token_bytes);
            }
            FilterKind::Sink => {
                primary_output_bytes[p] +=
                    reps[id.index()] * u64::from(f.pop) * u64::from(f.token_bytes);
            }
            _ => {}
        }
    }

    Pdg {
        times_us,
        edges,
        primary_input_bytes,
        primary_output_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsg::single_partition;
    use crate::PartitionRequest;
    use crate::Partitioning;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;
    use sgmap_pee::Estimator;

    #[test]
    fn pdg_of_a_single_partition_has_no_edges() {
        let graph = App::Des.build(4).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let partitioning = Partitioning::new(vec![single_partition(&est)]);
        let pdg = build_pdg(&graph, &reps, &partitioning);
        assert_eq!(pdg.len(), 1);
        assert!(pdg.edges.is_empty());
        assert!(pdg.primary_input_bytes[0] > 0);
        assert!(pdg.primary_output_bytes[0] > 0);
        assert_eq!(pdg.topological_order(), vec![0]);
    }

    #[test]
    fn pdg_edges_connect_adjacent_partitions_and_respect_dataflow() {
        let graph = App::FmRadio.build(8).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let partitioning = PartitionRequest::new(&est).run().unwrap();
        let pdg = build_pdg(&graph, &reps, &partitioning);
        assert_eq!(pdg.len(), partitioning.len());
        // Edge volumes equal the sum of crossing channel volumes.
        let crossing: u64 = graph
            .channels()
            .filter(|(_, ch)| {
                partitioning.partition_of(ch.src) != partitioning.partition_of(ch.dst)
            })
            .map(|(cid, _)| graph.channel_iteration_bytes(cid, &reps))
            .sum();
        assert_eq!(pdg.total_edge_bytes(), crossing);
        // Topological order covers every partition once.
        let order = pdg.topological_order();
        assert_eq!(order.len(), pdg.len());
        // The total workload matches the partitioning's estimate sum.
        assert!((pdg.total_time_us() - partitioning.total_estimated_time_us()).abs() < 1e-9);
    }
}
