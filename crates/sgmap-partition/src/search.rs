//! Deterministic parallel evaluation of partition-search candidates.
//!
//! The proposed partitioner spends nearly all of its time asking the PEE to
//! evaluate merge candidates. Those evaluations are pure — an estimate
//! depends only on the candidate node set — so they can run on scoped worker
//! threads. Determinism is preserved by two rules:
//!
//! 1. Candidates are evaluated in fixed-size *batches* whose size is
//!    independent of the thread count, and the accepted candidate is always
//!    the first one in serial order within the earliest batch containing a
//!    success. The search therefore picks exactly the merge the serial
//!    algorithm would pick, and the set of evaluated candidates (hence every
//!    cache counter downstream) is a function of the batch size alone.
//! 2. Results are written back by candidate index, so neither scheduling nor
//!    thread count can reorder them.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs of the proposed partitioner's candidate search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSearchOptions {
    /// Worker threads evaluating merge candidates. `0` resolves to the
    /// machine's available parallelism (capped at 8); `1` evaluates inline.
    pub threads: usize,
    /// Candidates evaluated per speculative batch. The batch size — not the
    /// thread count — determines which candidates get evaluated, so two runs
    /// with equal batch sizes produce identical cache statistics regardless
    /// of `threads`. `1` reproduces the serial search's early-exit behaviour
    /// exactly.
    pub batch: usize,
}

impl PartitionSearchOptions {
    /// The default speculative batch size. Large enough to keep a few worker
    /// threads busy between merge decisions, small enough that the wasted
    /// evaluations past the accepted candidate stay negligible (and they are
    /// cached for later iterations anyway).
    pub const DEFAULT_BATCH: usize = 32;

    /// Inline evaluation with the default batch size.
    pub fn new() -> Self {
        PartitionSearchOptions {
            threads: 1,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// The exact serial search: one candidate at a time, evaluated inline,
    /// stopping at the first success — byte-for-byte the historical
    /// behaviour. This is the reference the property tests compare the
    /// batched parallel search against.
    pub fn serial() -> Self {
        PartitionSearchOptions {
            threads: 1,
            batch: 1,
        }
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the speculative batch size (clamped to at least 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The actual number of worker threads to use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        } else {
            self.threads
        }
    }
}

impl Default for PartitionSearchOptions {
    fn default() -> Self {
        PartitionSearchOptions::new()
    }
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning the
/// results in item order. Falls back to an inline loop for a single thread
/// or a single item.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().expect("search results lock poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("search results lock poisoned")
        .into_iter()
        .map(|r| r.expect("every item is mapped"))
        .collect()
}

/// Draws candidates lazily from `items` in batches of `batch` and returns
/// the first (in item order) accepted candidate together with its result.
/// Once a batch is drawn, every item in it is evaluated — even on one
/// thread — so the evaluated set depends only on the batch size, never on
/// the thread count; but candidates past the accepting batch are neither
/// generated nor evaluated, preserving the serial search's early-exit
/// enumeration cost.
pub(crate) fn first_accepted<T, R, F, I>(
    threads: usize,
    batch: usize,
    items: I,
    eval: F,
) -> Option<(T, R)>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
    I: Iterator<Item = T>,
{
    let batch = batch.max(1);
    let mut items = items.peekable();
    let mut chunk = Vec::with_capacity(batch);
    while items.peek().is_some() {
        chunk.clear();
        chunk.extend(items.by_ref().take(batch));
        let results = par_map(threads, &chunk, &eval);
        if let Some(offset) = results.iter().position(Option::is_some) {
            let r = results
                .into_iter()
                .nth(offset)
                .flatten()
                .expect("position() found an accepted candidate");
            return Some((chunk.swap_remove(offset), r));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(par_map(threads, &items, |&x| x * x), expected, "{threads}");
        }
    }

    #[test]
    fn first_accepted_matches_serial_scan_for_every_batch_and_thread_count() {
        let items: Vec<u32> = vec![7, 3, 9, 4, 1, 4, 8];
        let serial = items.iter().find(|&&x| x % 2 == 0).map(|&x| (x, x * 10));
        for batch in [1, 2, 3, 64] {
            for threads in [1, 3] {
                let got = first_accepted(threads, batch, items.iter().copied(), |&x| {
                    (x % 2 == 0).then_some(x * 10)
                });
                assert_eq!(got, serial, "batch={batch} threads={threads}");
            }
        }
        assert_eq!(
            first_accepted(2, 2, items.iter().copied(), |&x| (x > 100).then_some(x)),
            None
        );
    }

    #[test]
    fn first_accepted_stops_drawing_candidates_after_the_accepting_batch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let generated = AtomicUsize::new(0);
        let candidates = (0..1_000_000usize).inspect(|_| {
            generated.fetch_add(1, Ordering::Relaxed);
        });
        let got = first_accepted(1, 4, candidates, |&x| (x == 2).then_some(x));
        assert_eq!(got, Some((2, 2)));
        // One batch of 4 (plus the peeked element) — not the whole range.
        assert!(generated.load(Ordering::Relaxed) <= 8);
    }

    #[test]
    fn options_resolve_and_clamp() {
        assert_eq!(PartitionSearchOptions::serial().resolved_threads(), 1);
        assert!(
            PartitionSearchOptions::new()
                .with_threads(0)
                .resolved_threads()
                >= 1
        );
        assert_eq!(PartitionSearchOptions::new().with_batch(0).batch, 1);
        assert_eq!(
            PartitionSearchOptions::default().batch,
            PartitionSearchOptions::DEFAULT_BATCH
        );
    }
}
