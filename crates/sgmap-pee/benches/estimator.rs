//! Micro-benchmarks of the estimator's hot paths: cache hits vs misses, and
//! the incremental characteristics algebra vs the reference rescan.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sgmap_apps::App;
use sgmap_gpusim::profile::profile_graph;
use sgmap_gpusim::GpuSpec;
use sgmap_graph::NodeSet;
use sgmap_pee::{merge_characteristics, CharsIndex, Estimator, PartitionCharacteristics};

fn bench_estimate_paths(c: &mut Criterion) {
    let graph = App::FmRadio.build(12).unwrap();
    let all = NodeSet::all(&graph);

    // Hit path: the same set queried over and over (the partition search's
    // common case — every merge iteration re-evaluates known candidates).
    let warm = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
    warm.estimate(&all);
    c.bench_function("estimator/hit/fmradio12-all", |b| {
        b.iter(|| warm.estimate(black_box(&all)))
    });

    // Miss path: a fresh estimator per iteration, so the query pays
    // characteristics + parameter search (profile construction included;
    // it is the same for both and dominated by the parameter search).
    c.bench_function("estimator/miss/fmradio12-all", |b| {
        b.iter(|| {
            let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
            est.estimate(black_box(&all))
        })
    });
}

fn bench_characteristics(c: &mut Criterion) {
    let graph = App::FmRadio.build(12).unwrap();
    let reps = graph.repetition_vector().unwrap();
    let profile = profile_graph(&graph, &GpuSpec::m2090());
    let index = CharsIndex::new(&graph, &reps, &profile);

    // A typical merge candidate: two small adjacent pieces of a much larger
    // graph. The reference rescan pays O(|graph|) regardless of the set
    // size; the indexed and merged paths pay O(|set|).
    let ids: Vec<_> = graph.filter_ids().collect();
    let mid = ids.len() / 2;
    let front = NodeSet::from_ids(ids[mid - 3..mid].iter().copied());
    let back = NodeSet::from_ids(ids[mid..mid + 3].iter().copied());
    let union = front.union(&back);
    let front_chars = index.for_set(&graph, &front, false);
    let back_chars = index.for_set(&graph, &back, false);

    c.bench_function("chars/from_set/fmradio12-union", |b| {
        b.iter(|| {
            PartitionCharacteristics::from_set(
                black_box(&graph),
                black_box(&union),
                &reps,
                &profile,
                false,
            )
        })
    });
    c.bench_function("chars/indexed_for_set/fmradio12-union", |b| {
        b.iter(|| index.for_set(black_box(&graph), black_box(&union), false))
    });
    c.bench_function("chars/merge/fmradio12-union", |b| {
        b.iter(|| {
            merge_characteristics(
                &index,
                black_box(&graph),
                false,
                &front_chars,
                &front,
                &back_chars,
                &back,
                &union,
            )
        })
    });
}

criterion_group!(benches, bench_estimate_paths, bench_characteristics);
criterion_main!(benches);
