//! Calibration of the performance-model constants by linear regression.
//!
//! The paper fits `C1` and `C2` "empirically ... from a linear regression of
//! the profiled data" (Section 4.0.1). This module provides the same
//! facility against the simulator: run a set of probe kernels, record the
//! observed data-transfer and buffer-swap times together with the model's
//! regressors (`D/F` and `D/(F + W·S)`), and fit the slopes.
//!
//! The [`r_squared`] helper is also used by the Figure 4.1 harness to report
//! the accuracy of the full model.

use sgmap_gpusim::{simulate_kernel, GpuSpec, KernelFilter, KernelParams, KernelSpec};

use crate::model::PerfModel;

/// One calibration observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Total IO bytes of the probe kernel (`D`).
    pub io_bytes: f64,
    /// Data-transfer threads (`F`).
    pub f: u32,
    /// Executions (`W`).
    pub w: u32,
    /// Compute threads per execution (`S`).
    pub s: u32,
    /// Observed data-transfer time, microseconds.
    pub measured_dt_us: f64,
    /// Observed buffer-swap time, microseconds.
    pub measured_db_us: f64,
}

/// Ordinary least-squares fit of `y = slope * x` (through the origin).
///
/// Returns zero when the inputs are degenerate.
pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> f64 {
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx <= f64::EPSILON {
        return 0.0;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    sxy / sxx
}

/// Ordinary least-squares fit of `y = a * x + b`, returning `(a, b)`.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx <= f64::EPSILON {
        return (0.0, mean_y);
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let a = sxy / sxx;
    (a, mean_y - a * mean_x)
}

/// Coefficient of determination between predictions and observations.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if actual.is_empty() {
        return 1.0;
    }
    let mean: f64 = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, y)| (y - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        return if ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Fits `C1` and `C2` from calibration samples and returns an updated model.
pub fn fit_constants(base: PerfModel, samples: &[CalibrationSample]) -> PerfModel {
    let dt_x: Vec<f64> = samples
        .iter()
        .map(|s| s.io_bytes / f64::from(s.f.max(1)))
        .collect();
    let dt_y: Vec<f64> = samples.iter().map(|s| s.measured_dt_us).collect();
    let db_x: Vec<f64> = samples
        .iter()
        .map(|s| s.io_bytes / f64::from((s.f + s.w * s.s).max(1)))
        .collect();
    let db_y: Vec<f64> = samples.iter().map(|s| s.measured_db_us).collect();
    let c1 = fit_through_origin(&dt_x, &dt_y);
    let c2 = fit_through_origin(&db_x, &db_y);
    if c1 > 0.0 && c2 > 0.0 {
        base.with_constants(c1, c2)
    } else {
        base
    }
}

/// Runs a sweep of synthetic probe kernels on the simulated device and fits
/// the model constants from the observations — the reproduction of the
/// paper's profiling-plus-regression step.
pub fn calibrate_against_simulator(gpu: &GpuSpec) -> PerfModel {
    let mut samples = Vec::new();
    for &f in &[16u32, 32, 64, 128, 256] {
        for &io in &[1_024u64, 4_096, 16_384, 65_536] {
            for &w in &[1u32, 2, 4] {
                let spec = KernelSpec {
                    name: format!("probe_f{f}_io{io}_w{w}"),
                    filters: vec![KernelFilter {
                        firing_time_us: 0.05,
                        firings: 1,
                    }],
                    io_bytes_per_exec: io,
                    sm_bytes_per_exec: 1024,
                    params: KernelParams { w, s: 1, f },
                };
                let m = simulate_kernel(&spec, gpu, u64::from(f) * 1_000 + io + u64::from(w));
                samples.push(CalibrationSample {
                    io_bytes: spec.total_io_bytes() as f64,
                    f,
                    w,
                    s: 1,
                    measured_dt_us: m.data_transfer_us,
                    measured_db_us: m.buffer_swap_us,
                });
            }
        }
    }
    fit_constants(PerfModel::for_gpu(gpu), &samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_known_coefficients() {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x + 2.0).collect();
        let (a, b) = fit_linear(&xs, &ys);
        assert!((a - 3.5).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        let slope = fit_through_origin(&xs, &xs.iter().map(|x| 2.0 * x).collect::<Vec<_>>());
        assert!((slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_is_one_for_perfect_predictions() {
        let y = vec![1.0, 2.0, 5.0, 9.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let bad = vec![9.0, 5.0, 2.0, 1.0];
        assert!(r_squared(&bad, &y) < 0.5);
    }

    #[test]
    fn calibration_against_the_simulator_matches_the_analytic_constants() {
        let gpu = GpuSpec::m2090();
        let analytic = PerfModel::for_gpu(&gpu);
        let fitted = calibrate_against_simulator(&gpu);
        // The simulator's DT cost is the same latency model the analytic
        // constants are derived from (plus a bandwidth ceiling that the probe
        // kernels do not hit), so the fitted constants land close by.
        assert!(
            (fitted.c1 - analytic.c1).abs() / analytic.c1 < 0.25,
            "c1 fitted {} vs analytic {}",
            fitted.c1,
            analytic.c1
        );
        assert!(fitted.c2 > 0.0);
    }

    #[test]
    fn degenerate_samples_leave_the_model_unchanged() {
        let base = PerfModel::default();
        let fitted = fit_constants(base, &[]);
        assert_eq!(fitted.c1, base.c1);
        assert_eq!(fitted.c2, base.c2);
    }
}
