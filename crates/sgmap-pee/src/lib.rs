//! The GPU Performance Estimation Engine (PEE) of the paper (Section 3.3).
//!
//! Given any sub-graph (candidate partition) of a stream graph, the PEE
//! answers two questions:
//!
//! 1. With which kernel parameters — `W` executions, `S` compute threads per
//!    execution and `F` data-transfer threads — should this partition be
//!    compiled into a kernel?
//! 2. How long will that kernel take?
//!
//! The execution-time model implements the paper's equations III.8–III.12:
//!
//! ```text
//! Texec = max(Tcomp, Tdt) + Tdb            (III.8)
//! Tcomp = Σ_i  t_i / min(f_i, S)           (III.9)
//! Tdt   = C1 · D / F                       (III.10)
//! Tdb   = C2 · D / (F + W·S)               (III.11)
//! T     = Texec / W                        (III.12)
//! ```
//!
//! where `t_i` is the profiled single-thread time of all firings of filter
//! `i` in one execution, `f_i` its firing rate, and `D` the primary IO bytes
//! of the kernel. `C1` and `C2` are calibrated constants ([`calibrate`]).
//!
//! One documented deviation from the thesis text: because our substrate is a
//! simulator with an explicit SM issue-throughput limit, `Tcomp` optionally
//! includes the saturation term `W·Σt_i / warp_size` (on real Fermi hardware
//! the thread-count cap keeps kernels out of that regime, which is why the
//! paper's simpler formula is accurate there). This keeps the estimator and
//! the "measured" kernel times consistent, exactly as the paper requires of
//! its PEE ("the PEE includes the same optimization done by the GPU code
//! generator").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
mod chars;
mod estimator;
mod model;
mod params;
mod shared_cache;

pub use chars::{merge_characteristics, CharsIndex, PartitionCharacteristics, SetChars};
pub use estimator::{Estimate, Estimator};
pub use model::{PerfModel, PAPER_C1, PAPER_C2};
pub use params::{select_parameters, ParamSearchSpace};
pub use shared_cache::{CacheStats, EstimateCache, EstimateKey, ESTIMATOR_ALGORITHM_VERSION};
