//! The abstract characteristics of a partition that the performance model
//! consumes.

use sgmap_gpusim::profile::ProfileTable;
use sgmap_gpusim::sm_layout;
use sgmap_graph::{NodeSet, RepetitionVector, StreamGraph};

/// Everything the performance model needs to know about a partition,
/// independent of the kernel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCharacteristics {
    /// Per member filter: `(t_i, f_i)` — single-thread time of all firings in
    /// one execution (microseconds) and the firing rate.
    pub filters: Vec<(f64, u64)>,
    /// Primary IO bytes per execution (`D / W`).
    pub io_bytes_per_exec: u64,
    /// Shared-memory bytes needed by one execution.
    pub sm_bytes_per_exec: u64,
    /// Highest firing rate among the member filters (bounds useful values of
    /// `S`).
    pub max_firing_rate: u64,
}

impl PartitionCharacteristics {
    /// Builds the characteristics of partition `set` of `graph`.
    ///
    /// `enhanced` applies the splitter/joiner elimination of Chapter V:
    /// splitters and joiners contribute neither compute time nor extra
    /// shared-memory buffers.
    pub fn from_set(
        graph: &StreamGraph,
        set: &NodeSet,
        reps: &RepetitionVector,
        profile: &ProfileTable,
        enhanced: bool,
    ) -> Self {
        let mut filters = Vec::with_capacity(set.len());
        let mut max_firing_rate = 1u64;
        for id in set.iter() {
            if enhanced && graph.filter(id).is_reorder_only() {
                continue;
            }
            let firings = reps[id.index()];
            let t_i = profile.iteration_time_us(id, reps);
            filters.push((t_i, firings));
            max_firing_rate = max_firing_rate.max(firings);
        }
        let fp = sm_layout::footprint(graph, set, reps, enhanced);
        PartitionCharacteristics {
            filters,
            io_bytes_per_exec: fp.io_bytes(),
            sm_bytes_per_exec: fp.per_execution_bytes(),
            max_firing_rate,
        }
    }

    /// Sum of the filters' single-thread times per execution (microseconds).
    pub fn serial_compute_us(&self) -> f64 {
        self.filters.iter().map(|(t, _)| *t).sum()
    }

    /// Shared-memory bytes of a kernel running `w` executions plus the double
    /// buffer.
    pub fn kernel_sm_bytes(&self, w: u32) -> u64 {
        u64::from(w) * self.sm_bytes_per_exec + self.io_bytes_per_exec
    }

    /// Returns `true` if the partition contains no compute work at all.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_gpusim::profile::profile_graph;
    use sgmap_gpusim::GpuSpec;
    use sgmap_graph::{GraphBuilder, JoinKind, SplitKind, StreamSpec};

    fn graph_with_split() -> StreamGraph {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 2, 1.0),
            StreamSpec::split_join(
                SplitKind::RoundRobin(vec![1, 1]),
                vec![
                    StreamSpec::filter("a", 1, 1, 40.0),
                    StreamSpec::filter("b", 1, 1, 40.0),
                ],
                JoinKind::RoundRobin(vec![1, 1]),
            ),
            StreamSpec::filter("sink", 2, 0, 1.0),
        ]);
        GraphBuilder::new("t").build(spec).unwrap()
    }

    #[test]
    fn characteristics_aggregate_profile_times() {
        let g = graph_with_split();
        let reps = g.repetition_vector().unwrap();
        let gpu = GpuSpec::m2090();
        let prof = profile_graph(&g, &gpu);
        let all = NodeSet::all(&g);
        let chars = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, false);
        assert_eq!(chars.filters.len(), g.filter_count());
        assert!(chars.serial_compute_us() > 0.0);
        assert!(chars.io_bytes_per_exec > 0);
        assert!(chars.kernel_sm_bytes(2) > chars.kernel_sm_bytes(1));
    }

    #[test]
    fn enhanced_mode_drops_splitters_and_joiners() {
        let g = graph_with_split();
        let reps = g.repetition_vector().unwrap();
        let gpu = GpuSpec::m2090();
        let prof = profile_graph(&g, &gpu);
        let all = NodeSet::all(&g);
        let plain = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, false);
        let enhanced = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, true);
        assert_eq!(plain.filters.len(), enhanced.filters.len() + 2);
        assert!(enhanced.serial_compute_us() < plain.serial_compute_us());
        assert!(enhanced.sm_bytes_per_exec <= plain.sm_bytes_per_exec);
    }
}
