//! The abstract characteristics of a partition that the performance model
//! consumes.
//!
//! [`PartitionCharacteristics::from_set`] is the reference definition: it
//! re-walks the whole graph (a topological sort plus three full channel
//! scans) for every query. The partition search asks for characteristics
//! thousands of times per compile, so this module also provides an
//! incremental path that is bit-identical to the reference:
//!
//! * [`CharsIndex`] — per-graph precomputation (topological positions,
//!   per-channel byte volumes, per-filter facts) built once per estimator,
//! * [`CharsIndex::for_set`] — characteristics of an arbitrary set in
//!   O(|set| · degree) instead of O(|graph|),
//! * [`merge_characteristics`] — characteristics of a *union* derived from
//!   the two operands plus the channels crossing between them; only the
//!   internal-buffer peak is rescanned (it depends on the interleaved firing
//!   schedule), everything else is pure integer algebra.
//!
//! All three produce identical `f64` bit patterns and identical integers
//! (the property suite enforces this on random graphs), so cache keys and
//! estimates are independent of which path computed them.

use std::collections::HashMap;

use sgmap_gpusim::profile::ProfileTable;
use sgmap_gpusim::sm_layout;
use sgmap_graph::{FilterId, FilterKind, NodeSet, RepetitionVector, StreamGraph};

/// Everything the performance model needs to know about a partition,
/// independent of the kernel parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCharacteristics {
    /// Per member filter: `(t_i, f_i)` — single-thread time of all firings in
    /// one execution (microseconds) and the firing rate.
    pub filters: Vec<(f64, u64)>,
    /// Primary IO bytes per execution (`D / W`).
    pub io_bytes_per_exec: u64,
    /// Shared-memory bytes needed by one execution.
    pub sm_bytes_per_exec: u64,
    /// Highest firing rate among the member filters (bounds useful values of
    /// `S`).
    pub max_firing_rate: u64,
}

impl PartitionCharacteristics {
    /// Builds the characteristics of partition `set` of `graph`.
    ///
    /// `enhanced` applies the splitter/joiner elimination of Chapter V:
    /// splitters and joiners contribute neither compute time nor extra
    /// shared-memory buffers.
    pub fn from_set(
        graph: &StreamGraph,
        set: &NodeSet,
        reps: &RepetitionVector,
        profile: &ProfileTable,
        enhanced: bool,
    ) -> Self {
        let mut filters = Vec::with_capacity(set.len());
        let mut max_firing_rate = 1u64;
        for id in set.iter() {
            if enhanced && graph.filter(id).is_reorder_only() {
                continue;
            }
            let firings = reps[id.index()];
            let t_i = profile.iteration_time_us(id, reps);
            filters.push((t_i, firings));
            max_firing_rate = max_firing_rate.max(firings);
        }
        let fp = sm_layout::footprint(graph, set, reps, enhanced);
        PartitionCharacteristics {
            filters,
            io_bytes_per_exec: fp.io_bytes(),
            sm_bytes_per_exec: fp.per_execution_bytes(),
            max_firing_rate,
        }
    }

    /// Sum of the filters' single-thread times per execution (microseconds).
    pub fn serial_compute_us(&self) -> f64 {
        self.filters.iter().map(|(t, _)| *t).sum()
    }

    /// Shared-memory bytes of a kernel running `w` executions plus the double
    /// buffer.
    pub fn kernel_sm_bytes(&self, w: u32) -> u64 {
        u64::from(w) * self.sm_bytes_per_exec + self.io_bytes_per_exec
    }

    /// Returns `true` if the partition contains no compute work at all.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

/// Everything about one filter that characteristics computations read,
/// resolved once per graph.
#[derive(Debug, Clone)]
struct FilterFacts {
    /// Single-thread time of all firings in one execution (`t_i`), µs.
    t_us: f64,
    /// Firing rate (`f_i`).
    firings: u64,
    /// `true` for splitters/joiners the enhanced mode elides.
    reorder_only: bool,
    /// Persistent per-filter state bytes.
    state_bytes: u64,
    /// Extra bytes retained by peeking (`(peek - pop) · token_bytes`).
    peek_extra_bytes: u64,
    /// Primary input bytes per execution (sources only).
    primary_input_bytes: u64,
    /// Primary output bytes per execution (sinks only).
    primary_output_bytes: u64,
}

/// Per-graph precomputation for the incremental characteristics path.
///
/// Holds the deterministic scan order (topological positions, or filter-id
/// order for cyclic graphs — the same fallback [`sm_layout::footprint`]
/// uses), per-channel byte volumes and per-filter facts, so a
/// characteristics query touches only the queried set and its incident
/// channels.
#[derive(Debug, Clone)]
pub struct CharsIndex {
    /// Filter index → position in the deterministic firing-scan order.
    topo_pos: Vec<u32>,
    /// Channel index → bytes moved per steady-state iteration.
    chan_bytes: Vec<u64>,
    facts: Vec<FilterFacts>,
}

impl CharsIndex {
    /// Precomputes the index for `graph` under `reps` and `profile`.
    pub fn new(graph: &StreamGraph, reps: &RepetitionVector, profile: &ProfileTable) -> Self {
        let mut topo_pos: Vec<u32> = (0..graph.filter_count() as u32).collect();
        if let Ok(order) = graph.topological_order() {
            for (pos, id) in order.into_iter().enumerate() {
                topo_pos[id.index()] = pos as u32;
            }
        }
        let chan_bytes = graph
            .channels()
            .map(|(cid, _)| graph.channel_iteration_bytes(cid, reps))
            .collect();
        let facts = graph
            .filters()
            .map(|(id, f)| {
                let firings = reps[id.index()];
                FilterFacts {
                    t_us: profile.iteration_time_us(id, reps),
                    firings,
                    reorder_only: f.is_reorder_only(),
                    state_bytes: u64::from(f.state_bytes),
                    peek_extra_bytes: if f.peek > f.pop {
                        u64::from(f.peek - f.pop) * u64::from(f.token_bytes)
                    } else {
                        0
                    },
                    primary_input_bytes: match f.kind {
                        FilterKind::Source => {
                            firings * u64::from(f.push) * u64::from(f.token_bytes)
                        }
                        _ => 0,
                    },
                    primary_output_bytes: match f.kind {
                        FilterKind::Sink => firings * u64::from(f.pop) * u64::from(f.token_bytes),
                        _ => 0,
                    },
                }
            })
            .collect();
        CharsIndex {
            topo_pos,
            chan_bytes,
            facts,
        }
    }

    /// Builds the characteristics of `set` by walking only the set and its
    /// incident channels. Bit-identical to
    /// [`PartitionCharacteristics::from_set`].
    pub fn for_set(&self, graph: &StreamGraph, set: &NodeSet, enhanced: bool) -> SetChars {
        let mut filters = Vec::with_capacity(set.len());
        let mut ids = Vec::with_capacity(set.len());
        let mut max_firing_rate = 1u64;
        let mut input_bytes = 0u64;
        let mut output_bytes = 0u64;
        let mut state_bytes = 0u64;
        let mut peek_bytes = 0u64;
        for id in set.iter() {
            let fx = &self.facts[id.index()];
            if !(enhanced && fx.reorder_only) {
                filters.push((fx.t_us, fx.firings));
                ids.push(id);
                max_firing_rate = max_firing_rate.max(fx.firings);
            }
            input_bytes += fx.primary_input_bytes;
            output_bytes += fx.primary_output_bytes;
            state_bytes += fx.state_bytes;
            peek_bytes += fx.peek_extra_bytes;
            for &c in graph.in_channels(id) {
                if !set.contains(graph.channel(c).src) {
                    input_bytes += self.chan_bytes[c.index()];
                }
            }
            for &c in graph.out_channels(id) {
                if !set.contains(graph.channel(c).dst) {
                    output_bytes += self.chan_bytes[c.index()];
                }
            }
        }
        let internal_peak_bytes = self.internal_peak(graph, set, enhanced);
        SetChars::assemble(
            filters,
            ids,
            max_firing_rate,
            input_bytes,
            output_bytes,
            state_bytes,
            peek_bytes,
            internal_peak_bytes,
        )
    }

    /// The peak of the internal channel buffers that are live simultaneously
    /// under the deterministic firing scan, restricted to `set`. This is the
    /// one component of a union's characteristics that cannot be derived
    /// from the operands (it depends on the interleaved schedule), so both
    /// [`CharsIndex::for_set`] and [`merge_characteristics`] recompute it
    /// with exactly the arithmetic of [`sm_layout::footprint`].
    fn internal_peak(&self, graph: &StreamGraph, set: &NodeSet, enhanced: bool) -> u64 {
        let mut order: Vec<FilterId> = set.iter().collect();
        order.sort_unstable_by_key(|id| self.topo_pos[id.index()]);
        // Like the reference scan, the consumed-bytes map starts out holding
        // every internal channel at its full volume; producing a channel
        // overwrites the entry (with zero for elided splitters/joiners).
        let mut consumed_remaining: HashMap<usize, u64> = HashMap::new();
        for &fid in &order {
            for &c in graph.out_channels(fid) {
                if set.contains(graph.channel(c).dst) {
                    consumed_remaining.insert(c.index(), self.chan_bytes[c.index()]);
                }
            }
        }
        let mut live = 0u64;
        let mut peak = 0u64;
        for &fid in &order {
            for &c in graph.out_channels(fid) {
                let ch = graph.channel(c);
                if ch.feedback || !set.contains(ch.dst) {
                    continue;
                }
                let bytes = if enhanced && self.facts[fid.index()].reorder_only {
                    0
                } else {
                    self.chan_bytes[c.index()]
                };
                live += bytes;
                consumed_remaining.insert(c.index(), bytes);
            }
            peak = peak.max(live);
            for &c in graph.in_channels(fid) {
                let ch = graph.channel(c);
                if ch.feedback || !set.contains(ch.src) {
                    continue;
                }
                if let Some(bytes) = consumed_remaining.remove(&c.index()) {
                    live = live.saturating_sub(bytes);
                }
            }
        }
        peak
    }
}

/// [`PartitionCharacteristics`] plus the decomposition needed to derive a
/// union's characteristics from its operands.
#[derive(Debug, Clone, PartialEq)]
pub struct SetChars {
    /// The characteristics the performance model consumes.
    pub chars: PartitionCharacteristics,
    /// Filter ids aligned with `chars.filters` (reorder-only filters are
    /// absent in enhanced mode, exactly as in `chars.filters`).
    ids: Vec<FilterId>,
    /// Boundary + primary input bytes per execution.
    input_bytes: u64,
    /// Boundary + primary output bytes per execution.
    output_bytes: u64,
    /// Persistent state bytes of the members.
    state_bytes: u64,
    /// Peek-retention bytes of the members.
    peek_bytes: u64,
    /// Peak of simultaneously live internal buffers.
    internal_peak_bytes: u64,
}

impl SetChars {
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        filters: Vec<(f64, u64)>,
        ids: Vec<FilterId>,
        max_firing_rate: u64,
        input_bytes: u64,
        output_bytes: u64,
        state_bytes: u64,
        peek_bytes: u64,
        internal_peak_bytes: u64,
    ) -> Self {
        let io_bytes_per_exec = input_bytes + output_bytes;
        SetChars {
            chars: PartitionCharacteristics {
                filters,
                io_bytes_per_exec,
                sm_bytes_per_exec: internal_peak_bytes
                    + io_bytes_per_exec
                    + state_bytes
                    + peek_bytes,
                max_firing_rate,
            },
            ids,
            input_bytes,
            output_bytes,
            state_bytes,
            peek_bytes,
            internal_peak_bytes,
        }
    }
}

/// Derives the characteristics of `a ∪ b` from the operands' [`SetChars`]
/// plus the channels crossing between the two (disjoint) sets, instead of
/// re-walking the union: the per-filter list is a sorted merge, the IO
/// volumes lose exactly the crossing bytes on each side, state and peek
/// bytes add, and only the internal-buffer peak is rescanned over the union.
/// Bit-identical to [`PartitionCharacteristics::from_set`] on the union.
#[allow(clippy::too_many_arguments)]
pub fn merge_characteristics(
    index: &CharsIndex,
    graph: &StreamGraph,
    enhanced: bool,
    a: &SetChars,
    a_set: &NodeSet,
    b: &SetChars,
    b_set: &NodeSet,
    union: &NodeSet,
) -> SetChars {
    // Sorted merge of the per-filter lists (both ascend by filter id; the
    // sets are disjoint, so no key appears twice).
    let mut filters = Vec::with_capacity(a.ids.len() + b.ids.len());
    let mut ids = Vec::with_capacity(a.ids.len() + b.ids.len());
    let (mut i, mut j) = (0, 0);
    while i < a.ids.len() && j < b.ids.len() {
        if a.ids[i] < b.ids[j] {
            filters.push(a.chars.filters[i]);
            ids.push(a.ids[i]);
            i += 1;
        } else {
            filters.push(b.chars.filters[j]);
            ids.push(b.ids[j]);
            j += 1;
        }
    }
    filters.extend_from_slice(&a.chars.filters[i..]);
    ids.extend_from_slice(&a.ids[i..]);
    filters.extend_from_slice(&b.chars.filters[j..]);
    ids.extend_from_slice(&b.ids[j..]);

    // Bytes of the channels crossing between the operands: each such channel
    // was boundary input of exactly one operand and boundary output of the
    // other, and is internal to the union. Scanning the smaller side's
    // incident channels sees every crossing channel exactly once.
    let (small, other) = if a_set.len() <= b_set.len() {
        (a_set, b_set)
    } else {
        (b_set, a_set)
    };
    let mut cross_bytes = 0u64;
    for id in small.iter() {
        for &c in graph.in_channels(id) {
            if other.contains(graph.channel(c).src) {
                cross_bytes += index.chan_bytes[c.index()];
            }
        }
        for &c in graph.out_channels(id) {
            if other.contains(graph.channel(c).dst) {
                cross_bytes += index.chan_bytes[c.index()];
            }
        }
    }

    SetChars::assemble(
        filters,
        ids,
        a.chars.max_firing_rate.max(b.chars.max_firing_rate),
        a.input_bytes + b.input_bytes - cross_bytes,
        a.output_bytes + b.output_bytes - cross_bytes,
        a.state_bytes + b.state_bytes,
        a.peek_bytes + b.peek_bytes,
        index.internal_peak(graph, union, enhanced),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_gpusim::profile::profile_graph;
    use sgmap_gpusim::GpuSpec;
    use sgmap_graph::{GraphBuilder, JoinKind, SplitKind, StreamSpec};

    fn graph_with_split() -> StreamGraph {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 2, 1.0),
            StreamSpec::split_join(
                SplitKind::RoundRobin(vec![1, 1]),
                vec![
                    StreamSpec::filter("a", 1, 1, 40.0),
                    StreamSpec::filter("b", 1, 1, 40.0),
                ],
                JoinKind::RoundRobin(vec![1, 1]),
            ),
            StreamSpec::filter("sink", 2, 0, 1.0),
        ]);
        GraphBuilder::new("t").build(spec).unwrap()
    }

    #[test]
    fn characteristics_aggregate_profile_times() {
        let g = graph_with_split();
        let reps = g.repetition_vector().unwrap();
        let gpu = GpuSpec::m2090();
        let prof = profile_graph(&g, &gpu);
        let all = NodeSet::all(&g);
        let chars = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, false);
        assert_eq!(chars.filters.len(), g.filter_count());
        assert!(chars.serial_compute_us() > 0.0);
        assert!(chars.io_bytes_per_exec > 0);
        assert!(chars.kernel_sm_bytes(2) > chars.kernel_sm_bytes(1));
    }

    #[test]
    fn indexed_and_merged_characteristics_match_from_set_bit_for_bit() {
        let g = graph_with_split();
        let reps = g.repetition_vector().unwrap();
        let gpu = GpuSpec::m2090();
        let prof = profile_graph(&g, &gpu);
        let index = CharsIndex::new(&g, &reps, &prof);
        let assert_same = |a: &PartitionCharacteristics, b: &PartitionCharacteristics| {
            assert_eq!(a.filters.len(), b.filters.len());
            for ((ta, fa), (tb, fb)) in a.filters.iter().zip(&b.filters) {
                assert_eq!(ta.to_bits(), tb.to_bits());
                assert_eq!(fa, fb);
            }
            assert_eq!(a.io_bytes_per_exec, b.io_bytes_per_exec);
            assert_eq!(a.sm_bytes_per_exec, b.sm_bytes_per_exec);
            assert_eq!(a.max_firing_rate, b.max_firing_rate);
        };
        for enhanced in [false, true] {
            // Every singleton and the whole graph.
            for id in g.filter_ids() {
                let set = NodeSet::singleton(id);
                let reference =
                    PartitionCharacteristics::from_set(&g, &set, &reps, &prof, enhanced);
                assert_same(&index.for_set(&g, &set, enhanced).chars, &reference);
            }
            let all = NodeSet::all(&g);
            let reference = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, enhanced);
            assert_same(&index.for_set(&g, &all, enhanced).chars, &reference);
            // A union derived incrementally from a front/back split.
            let ids: Vec<_> = g.filter_ids().collect();
            for split_at in 1..ids.len() {
                let front = NodeSet::from_ids(ids[..split_at].iter().copied());
                let back = NodeSet::from_ids(ids[split_at..].iter().copied());
                let merged = merge_characteristics(
                    &index,
                    &g,
                    enhanced,
                    &index.for_set(&g, &front, enhanced),
                    &front,
                    &index.for_set(&g, &back, enhanced),
                    &back,
                    &all,
                );
                assert_same(&merged.chars, &reference);
                assert_eq!(merged, index.for_set(&g, &all, enhanced));
            }
        }
    }

    #[test]
    fn enhanced_mode_drops_splitters_and_joiners() {
        let g = graph_with_split();
        let reps = g.repetition_vector().unwrap();
        let gpu = GpuSpec::m2090();
        let prof = profile_graph(&g, &gpu);
        let all = NodeSet::all(&g);
        let plain = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, false);
        let enhanced = PartitionCharacteristics::from_set(&g, &all, &reps, &prof, true);
        assert_eq!(plain.filters.len(), enhanced.filters.len() + 2);
        assert!(enhanced.serial_compute_us() < plain.serial_compute_us());
        assert!(enhanced.sm_bytes_per_exec <= plain.sm_bytes_per_exec);
    }
}
