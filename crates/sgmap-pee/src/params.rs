//! Kernel parameter selection: choosing `W`, `S` and `F`.
//!
//! The paper stresses that all three parameters must be chosen
//! *simultaneously*: more executions (`W`) amortise the fixed costs but eat
//! shared memory; more compute threads per execution (`S`) only help filters
//! with firing rates above one; more data-transfer threads (`F`) speed up the
//! IO streaming but compete for the thread budget. The PEE performs the same
//! search the code generator performs, which is what keeps the "static
//! discrepancy" between estimation and generated code small.

use sgmap_gpusim::{GpuSpec, KernelParams};

use crate::chars::PartitionCharacteristics;
use crate::model::PerfModel;

/// The candidate values enumerated for each parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSearchSpace {
    /// Candidate compute-thread counts per execution.
    pub s_candidates: Vec<u32>,
    /// Candidate data-transfer thread counts.
    pub f_candidates: Vec<u32>,
    /// Upper bound on the number of executions per kernel.
    pub max_w: u32,
}

impl Default for ParamSearchSpace {
    fn default() -> Self {
        ParamSearchSpace {
            s_candidates: vec![1, 2, 4, 8, 16, 32],
            f_candidates: vec![16, 32, 64, 128, 256],
            max_w: 64,
        }
    }
}

/// Selects the kernel parameters minimising the normalised execution time
/// `T = Texec / W` under the shared-memory and thread-count constraints of
/// the device.
///
/// Returns `None` if even the smallest configuration does not fit in shared
/// memory (the partition violates the SM constraint and must not be formed).
pub fn select_parameters(
    chars: &PartitionCharacteristics,
    model: &PerfModel,
    gpu: &GpuSpec,
    space: &ParamSearchSpace,
) -> Option<(KernelParams, f64)> {
    let shared_mem = u64::from(gpu.shared_mem_bytes);
    if chars.kernel_sm_bytes(1) > shared_mem {
        return None;
    }
    let mut best: Option<(KernelParams, f64)> = None;
    for &s in &space.s_candidates {
        // S beyond the maximum firing rate wastes threads (min(f_i, S)).
        if u64::from(s) > chars.max_firing_rate.max(1) && s != 1 {
            continue;
        }
        for &f in &space.f_candidates {
            // Largest W that satisfies both the shared-memory and the
            // thread-count budgets.
            let mut w_max = space.max_w;
            if let Some(by_sm) = shared_mem
                .saturating_sub(chars.io_bytes_per_exec)
                .checked_div(chars.sm_bytes_per_exec)
            {
                w_max = w_max.min(by_sm.min(u64::from(u32::MAX)) as u32);
            }
            let by_threads = (gpu.max_threads_per_block.saturating_sub(f)) / s.max(1);
            w_max = w_max.min(by_threads);
            if w_max == 0 {
                continue;
            }
            // The normalised time is monotone enough that checking a handful
            // of W values (1, 2, 4, ..., w_max) finds the minimum; include
            // w_max itself.
            let mut candidates: Vec<u32> = std::iter::successors(Some(1u32), |w| {
                let next = w * 2;
                (next < w_max).then_some(next)
            })
            .collect();
            candidates.push(w_max);
            for &w in &candidates {
                let params = KernelParams { w, s, f };
                let t = model.normalized_us(chars, params);
                let better = match &best {
                    None => true,
                    Some((_, bt)) => t < *bt - 1e-12,
                };
                if better {
                    best = Some((params, t));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_gpusim::GpuSpec;

    fn chars(serial_us: f64, firing: u64, io: u64, sm_per_exec: u64) -> PartitionCharacteristics {
        PartitionCharacteristics {
            filters: vec![(serial_us, firing)],
            io_bytes_per_exec: io,
            sm_bytes_per_exec: sm_per_exec,
            max_firing_rate: firing,
        }
    }

    #[test]
    fn oversized_partitions_are_rejected() {
        let gpu = GpuSpec::m2090();
        let c = chars(10.0, 1, 1024, 100_000); // > 48 KiB per execution
        assert!(
            select_parameters(&c, &PerfModel::for_gpu(&gpu), &gpu, &Default::default()).is_none()
        );
    }

    #[test]
    fn high_firing_rates_attract_more_compute_threads() {
        let gpu = GpuSpec::m2090();
        let model = PerfModel::for_gpu(&gpu);
        let sequential = chars(50.0, 1, 256, 2048);
        let parallel = chars(50.0, 32, 256, 2048);
        let (p_seq, _) = select_parameters(&sequential, &model, &gpu, &Default::default()).unwrap();
        let (p_par, t_par) =
            select_parameters(&parallel, &model, &gpu, &Default::default()).unwrap();
        assert_eq!(p_seq.s, 1, "a firing rate of 1 cannot use more threads");
        assert!(p_par.s > 1);
        let (_, t_seq) = select_parameters(&sequential, &model, &gpu, &Default::default()).unwrap();
        assert!(t_par < t_seq);
    }

    #[test]
    fn io_heavy_partitions_get_many_dt_threads() {
        let gpu = GpuSpec::m2090();
        let model = PerfModel::for_gpu(&gpu);
        let io_heavy = chars(1.0, 1, 16 * 1024, 20_000);
        let (p, _) = select_parameters(&io_heavy, &model, &gpu, &Default::default()).unwrap();
        assert!(p.f >= 128, "selected F = {}", p.f);
    }

    #[test]
    fn shared_memory_limits_w() {
        let gpu = GpuSpec::m2090();
        let model = PerfModel::for_gpu(&gpu);
        // 20 KiB per execution: at most 2 executions fit in 48 KiB.
        let big = chars(50.0, 1, 1024, 20 * 1024);
        let (p, _) = select_parameters(&big, &model, &gpu, &Default::default()).unwrap();
        assert!(p.w <= 2);
        // A small partition can use many executions.
        let small = chars(50.0, 1, 64, 512);
        let (p_small, _) = select_parameters(&small, &model, &gpu, &Default::default()).unwrap();
        assert!(p_small.w > p.w);
    }

    #[test]
    fn selection_respects_the_thread_budget() {
        let gpu = GpuSpec::m2090();
        let model = PerfModel::for_gpu(&gpu);
        let c = chars(10.0, 64, 512, 256);
        let (p, _) = select_parameters(&c, &model, &gpu, &Default::default()).unwrap();
        assert!(p.total_threads() <= gpu.max_threads_per_block);
    }
}
