//! The estimator façade: per-partition time estimates with caching.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use sgmap_gpusim::profile::{profile_graph, ProfileTable};
use sgmap_gpusim::{GpuSpec, KernelParams};
use sgmap_graph::{GraphError, NodeSet, RepetitionVector, StreamGraph};

use crate::chars::{merge_characteristics, CharsIndex, PartitionCharacteristics, SetChars};
use crate::model::PerfModel;
use crate::params::{select_parameters, ParamSearchSpace};
use crate::shared_cache::{EstimateCache, EstimateKey};

/// The PEE's answer for one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The kernel parameters the code generator should use.
    pub params: KernelParams,
    /// Compute time of the kernel (equation III.9), microseconds.
    pub t_comp_us: f64,
    /// Data-transfer time (III.10), microseconds.
    pub t_dt_us: f64,
    /// Buffer-swap time (III.11), microseconds.
    pub t_db_us: f64,
    /// Total kernel time (III.8), microseconds.
    pub t_exec_us: f64,
    /// Normalised per-execution time `T` (III.12), microseconds. This is the
    /// `T(p)` used by the partitioning heuristic and the `T_i` workload of
    /// the ILP mapping.
    pub normalized_us: f64,
    /// Shared-memory bytes of the kernel (all executions plus double buffer).
    pub sm_bytes: u64,
    /// Primary IO bytes per execution.
    pub io_bytes_per_exec: u64,
}

impl Estimate {
    /// A partition is compute-bound when its compute time dominates its
    /// data-transfer time (Section 3.1.1).
    pub fn is_compute_bound(&self) -> bool {
        self.t_comp_us >= self.t_dt_us
    }

    /// A partition is IO-bound when data transfer dominates.
    pub fn is_io_bound(&self) -> bool {
        !self.is_compute_bound()
    }
}

/// What the local cache remembers per node set: the estimate plus the
/// characteristics bundle, so later merges involving this set derive their
/// union characteristics incrementally instead of re-walking the graph.
#[derive(Debug, Clone)]
struct CachedEstimate {
    estimate: Option<Estimate>,
    chars: Arc<SetChars>,
}

/// The local cache: single-flight cells keyed by node set. (The enhancement
/// flag is no longer part of the key; flipping it clears the cache instead.)
/// Lookups borrow the caller's set — the key is cloned only when a fresh
/// entry is inserted, so cache hits pay neither a clone nor a rehash beyond
/// the set's precomputed hash.
type LocalCache = HashMap<NodeSet, Arc<OnceLock<CachedEstimate>>>;

/// The Performance Estimation Engine: profiles a stream graph once, then
/// produces [`Estimate`]s for arbitrary sub-graphs, caching results because
/// the partitioning heuristic queries the same candidate sets repeatedly.
///
/// The estimator is `Sync`: the parallel partition search shares one
/// estimator across its scoped worker threads. The local cache uses per-key
/// single-flight entries (like [`EstimateCache`]), so each distinct node set
/// is computed — and forwarded to the shared cache — exactly once no matter
/// how concurrent queries interleave, which keeps cache counters
/// deterministic across thread counts.
pub struct Estimator<'g> {
    graph: &'g StreamGraph,
    reps: RepetitionVector,
    profile: ProfileTable,
    index: CharsIndex,
    gpu: GpuSpec,
    model: PerfModel,
    space: ParamSearchSpace,
    enhanced: bool,
    cache: RwLock<LocalCache>,
    shared: Option<Arc<EstimateCache>>,
    trace: Option<Arc<sgmap_trace::Collector>>,
}

impl<'g> Estimator<'g> {
    /// Creates an estimator for `graph` targeting `gpu`.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph's balance equations are inconsistent.
    pub fn new(graph: &'g StreamGraph, gpu: GpuSpec) -> Result<Self, GraphError> {
        let reps = graph.repetition_vector()?;
        let profile = profile_graph(graph, &gpu);
        let index = CharsIndex::new(graph, &reps, &profile);
        let model = PerfModel::for_gpu(&gpu);
        Ok(Estimator {
            graph,
            reps,
            profile,
            index,
            gpu,
            model,
            space: ParamSearchSpace::default(),
            enhanced: false,
            cache: RwLock::new(HashMap::new()),
            shared: None,
            trace: None,
        })
    }

    /// Replaces the performance-model constants (e.g. after calibration).
    pub fn with_model(mut self, model: PerfModel) -> Self {
        self.model = model;
        self.cache
            .get_mut()
            .expect("estimator cache lock poisoned")
            .clear();
        self
    }

    /// Enables or disables the splitter/joiner elimination of Chapter V for
    /// all subsequent estimates.
    pub fn with_enhancement(mut self, enhanced: bool) -> Self {
        if self.enhanced != enhanced {
            // The local cache is keyed by node set alone; entries computed
            // under the other flag would be stale.
            self.cache
                .get_mut()
                .expect("estimator cache lock poisoned")
                .clear();
        }
        self.enhanced = enhanced;
        self
    }

    /// Attaches a shared, thread-safe estimate cache. Queries are answered
    /// from (and recorded into) the shared cache keyed by partition
    /// characteristics and platform parameters, so estimators for different
    /// graphs — including estimators on other threads — reuse each other's
    /// work. Cached answers are bit-identical to fresh computations.
    pub fn with_shared_cache(mut self, cache: Arc<EstimateCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Attaches a trace collector. The estimator records `pee.estimate_hits`
    /// / `pee.estimate_misses` counters (local single-flight cache) plus
    /// per-path counters and set-size histograms for the two ways
    /// characteristics are obtained (`pee.chars_from_set` vs
    /// `pee.chars_merged`). The collector is write-only: estimates are
    /// bit-identical with and without it.
    pub fn with_trace(mut self, trace: Option<Arc<sgmap_trace::Collector>>) -> Self {
        self.trace = trace;
        self
    }

    /// The stream graph being estimated.
    pub fn graph(&self) -> &StreamGraph {
        self.graph
    }

    /// The steady-state repetition vector of the graph.
    pub fn repetition_vector(&self) -> &RepetitionVector {
        &self.reps
    }

    /// The per-filter profile.
    pub fn profile(&self) -> &ProfileTable {
        &self.profile
    }

    /// The target device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The analytic model in use.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// Whether Chapter-V enhancement is applied.
    pub fn enhanced(&self) -> bool {
        self.enhanced
    }

    /// Characteristics of a partition (uncached helper, mostly for tests and
    /// the code generator). Computed through the per-graph [`CharsIndex`],
    /// bit-identical to [`PartitionCharacteristics::from_set`].
    pub fn characteristics(&self, set: &NodeSet) -> PartitionCharacteristics {
        self.index.for_set(self.graph, set, self.enhanced).chars
    }

    /// Estimates the execution time of partition `set`, or returns `None`
    /// when the partition cannot fit in shared memory with any parameter
    /// choice (i.e. it must not be formed).
    pub fn estimate(&self, set: &NodeSet) -> Option<Estimate> {
        self.estimate_with_chars(set).0
    }

    /// Like [`Estimator::estimate`], but also returns the partition's
    /// characteristics bundle so the caller can later derive union
    /// characteristics incrementally via [`Estimator::estimate_union`].
    pub fn estimate_with_chars(&self, set: &NodeSet) -> (Option<Estimate>, Arc<SetChars>) {
        self.estimate_impl(set, || {
            // Path counters live inside the compute closure: they only fire
            // on the single-flight compute, so the counts are deterministic
            // across thread counts.
            sgmap_trace::add(self.trace.as_ref(), "pee.chars_from_set", 1);
            sgmap_trace::record(
                self.trace.as_ref(),
                "pee.chars_from_set_size",
                set.len() as u64,
            );
            Arc::new(self.index.for_set(self.graph, set, self.enhanced))
        })
    }

    /// Estimates the union of two disjoint, already-characterised sets.
    ///
    /// `union` must equal `a_set ∪ b_set` and the bundles must come from
    /// this estimator (under its current enhancement flag). When the union
    /// is not already cached, its characteristics are derived from the
    /// operands via [`merge_characteristics`] instead of re-walking the
    /// graph; the result — estimate, cache key, counters — is bit-identical
    /// to [`Estimator::estimate`] on `union` either way.
    pub fn estimate_union(
        &self,
        a_set: &NodeSet,
        a_chars: &SetChars,
        b_set: &NodeSet,
        b_chars: &SetChars,
        union: &NodeSet,
    ) -> (Option<Estimate>, Arc<SetChars>) {
        self.estimate_impl(union, || {
            sgmap_trace::add(self.trace.as_ref(), "pee.chars_merged", 1);
            sgmap_trace::record(
                self.trace.as_ref(),
                "pee.chars_merged_size",
                union.len() as u64,
            );
            Arc::new(merge_characteristics(
                &self.index,
                self.graph,
                self.enhanced,
                a_chars,
                a_set,
                b_chars,
                b_set,
                union,
            ))
        })
    }

    /// Derives union characteristics without touching any cache; used by
    /// callers that need characteristics of an intermediate union they do
    /// not want estimated (estimating it would disturb the shared-cache
    /// counters the sweep reports).
    pub fn merge_chars(
        &self,
        a_set: &NodeSet,
        a_chars: &SetChars,
        b_set: &NodeSet,
        b_chars: &SetChars,
        union: &NodeSet,
    ) -> SetChars {
        merge_characteristics(
            &self.index,
            self.graph,
            self.enhanced,
            a_chars,
            a_set,
            b_chars,
            b_set,
            union,
        )
    }

    fn estimate_impl(
        &self,
        set: &NodeSet,
        make_chars: impl FnOnce() -> Arc<SetChars>,
    ) -> (Option<Estimate>, Arc<SetChars>) {
        let existing = {
            let map = self.cache.read().expect("estimator cache lock poisoned");
            map.get(set).cloned()
        };
        let cell = match existing {
            Some(cell) => cell,
            None => {
                let mut map = self.cache.write().expect("estimator cache lock poisoned");
                match map.entry(set.clone()) {
                    Entry::Occupied(e) => e.get().clone(),
                    Entry::Vacant(v) => {
                        let cell = Arc::new(OnceLock::new());
                        v.insert(cell.clone());
                        cell
                    }
                }
            }
        };
        // Single-flight: the computation (and any query it forwards to the
        // shared cache) runs exactly once per distinct key, outside the map
        // lock so concurrent queries for other sets proceed.
        let mut computed = false;
        let cached = cell.get_or_init(|| {
            computed = true;
            let chars = make_chars();
            let estimate = match &self.shared {
                Some(shared) => {
                    let shared_key =
                        EstimateKey::new(&chars.chars, &self.model, &self.gpu, &self.space);
                    shared.get_or_compute(shared_key, || self.estimate_from_chars(&chars.chars))
                }
                None => self.estimate_from_chars(&chars.chars),
            };
            CachedEstimate { estimate, chars }
        });
        if computed {
            sgmap_trace::add(self.trace.as_ref(), "pee.estimate_misses", 1);
        } else {
            sgmap_trace::add(self.trace.as_ref(), "pee.estimate_hits", 1);
        }
        (cached.estimate, cached.chars.clone())
    }

    fn estimate_from_chars(&self, chars: &PartitionCharacteristics) -> Option<Estimate> {
        let (params, normalized_us) =
            select_parameters(chars, &self.model, &self.gpu, &self.space)?;
        let t_comp_us = self.model.t_comp_us(chars, params);
        let t_dt_us = self.model.t_dt_us(chars, params);
        let t_db_us = self.model.t_db_us(chars, params);
        let t_exec_us = self.model.t_exec_us(chars, params);
        Some(Estimate {
            params,
            t_comp_us,
            t_dt_us,
            t_db_us,
            t_exec_us,
            normalized_us,
            sm_bytes: chars.kernel_sm_bytes(params.w),
            io_bytes_per_exec: chars.io_bytes_per_exec,
        })
    }
}

impl std::fmt::Debug for Estimator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Estimator")
            .field("graph", &self.graph.name())
            .field("gpu", &self.gpu.name)
            .field("enhanced", &self.enhanced)
            .field(
                "cached",
                &self
                    .cache
                    .read()
                    .expect("estimator cache lock poisoned")
                    .len(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_graph::{Filter, FilterId};

    fn chain(works: &[f64]) -> StreamGraph {
        let mut g = StreamGraph::new("chain");
        let n = works.len();
        let ids: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                g.add_filter(Filter::new(
                    format!("f{i}"),
                    if i == 0 { 0 } else { 1 },
                    if i + 1 == n { 0 } else { 1 },
                    w,
                ))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_channel(pair[0], pair[1], 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn estimates_are_cached_and_consistent() {
        let g = chain(&[1.0, 500.0, 500.0, 1.0]);
        let est = Estimator::new(&g, GpuSpec::m2090()).unwrap();
        let all = NodeSet::all(&g);
        let a = est.estimate(&all).unwrap();
        let b = est.estimate(&all).unwrap();
        assert_eq!(a, b);
        assert!(a.t_exec_us > 0.0);
        assert!(a.normalized_us <= a.t_exec_us);
        assert!(a.sm_bytes <= u64::from(est.gpu().shared_mem_bytes));
    }

    #[test]
    fn merging_whole_graph_beats_tiny_fragments_for_compute_bound_chains() {
        // For a compute-heavy chain the whole-graph partition amortises IO
        // better than the single middle filter alone plus its IO.
        let g = chain(&[1.0, 2000.0, 2000.0, 1.0]);
        let est = Estimator::new(&g, GpuSpec::m2090()).unwrap();
        let whole = est.estimate(&NodeSet::all(&g)).unwrap();
        let single = est
            .estimate(&NodeSet::singleton(FilterId::from_index(1)))
            .unwrap();
        assert!(whole.is_compute_bound());
        // The sum of the parts' normalised times exceeds the whole's.
        let parts: f64 = (0..4)
            .map(|i| {
                est.estimate(&NodeSet::singleton(FilterId::from_index(i)))
                    .unwrap()
                    .normalized_us
            })
            .sum();
        assert!(whole.normalized_us < parts);
        assert!(single.normalized_us > 0.0);
    }

    #[test]
    fn io_heavy_graphs_are_classified_io_bound() {
        // Filters that do almost nothing but move lots of bytes.
        let mut g = StreamGraph::new("io");
        let a = g.add_filter(Filter::new("src", 0, 256, 1.0).with_token_bytes(16));
        let b = g.add_filter(Filter::new("sink", 256, 0, 1.0).with_token_bytes(16));
        g.add_channel(a, b, 256, 256).unwrap();
        let est = Estimator::new(&g, GpuSpec::m2090()).unwrap();
        let e = est.estimate(&NodeSet::all(&g)).unwrap();
        assert!(e.is_io_bound());
    }

    #[test]
    fn one_estimator_shared_across_threads_queries_the_shared_cache_once_per_key() {
        use crate::EstimateCache;

        let g = chain(&[3.0, 40.0, 80.0, 120.0, 7.0]);
        let cache = EstimateCache::shared();
        let est = Estimator::new(&g, GpuSpec::m2090())
            .unwrap()
            .with_shared_cache(cache.clone());
        std::thread::scope(|s| {
            for t in 0..8 {
                let est = &est;
                s.spawn(move || {
                    for round in 0..25 {
                        for i in 0..5 {
                            let idx = (i + t + round) % 5;
                            est.estimate(&NodeSet::singleton(FilterId::from_index(idx)));
                        }
                    }
                });
            }
        });
        // The single-flight local cache forwards each of the 5 distinct keys
        // to the shared cache exactly once, however the threads interleaved.
        let stats = cache.stats();
        assert_eq!(stats.queries(), 5);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn enhancement_flag_changes_the_cache_key() {
        let g = chain(&[1.0, 10.0, 1.0]);
        let est = Estimator::new(&g, GpuSpec::m2090())
            .unwrap()
            .with_enhancement(true);
        assert!(est.enhanced());
        let e = est.estimate(&NodeSet::all(&g)).unwrap();
        assert!(e.t_exec_us > 0.0);
    }
}
