//! A thread-safe estimate cache shared across estimators.
//!
//! The per-[`Estimator`](crate::Estimator) cache is keyed by node set and
//! only helps within one graph. Sweeps over (application, N, GPU count,
//! mapper, ...) grids re-partition closely related graphs over and over, and
//! the expensive part of every query — the kernel-parameter search — depends
//! only on the *characteristics* of the candidate partition and the device
//! model, not on which graph the partition came from. This module provides a
//! process-wide cache keyed by exactly those inputs, so any two sweep points
//! that ask the same physical question share one answer.
//!
//! The cache is `RwLock`-guarded and uses per-key single-flight entries: when
//! several threads race on the same fresh key, one computes while the others
//! block on the entry, so each unique key is computed exactly once. A useful
//! consequence is that the hit/miss totals are deterministic for a fixed
//! query multiset — misses equal the number of distinct keys regardless of
//! thread interleaving — which lets sweep reports include cache statistics
//! while staying byte-identical across thread counts.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use sgmap_gpusim::GpuSpec;

use crate::chars::PartitionCharacteristics;
use crate::estimator::Estimate;
use crate::model::PerfModel;
use crate::params::ParamSearchSpace;

/// Everything an estimate depends on, in hashable form.
///
/// `f64` inputs are keyed by their IEEE-754 bit patterns, so two keys are
/// equal exactly when the estimation pipeline would be handed bit-identical
/// inputs — the cached answer is then bit-identical to a fresh computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EstimateKey {
    /// Per member filter `(t_i bits, f_i)` of the partition characteristics.
    pub filters: Vec<(u64, u64)>,
    /// Primary IO bytes per execution.
    pub io_bytes_per_exec: u64,
    /// Shared-memory bytes per execution.
    pub sm_bytes_per_exec: u64,
    /// Highest firing rate among member filters.
    pub max_firing_rate: u64,
    /// Performance-model constants `(c1 bits, c2 bits, warp size,
    /// issue-throughput correction)`.
    pub model: (u64, u64, u32, bool),
    /// Device limits that constrain the parameter search: `(shared-memory
    /// bytes, max threads per block)`.
    pub device: (u32, u32),
    /// The enumerated parameter search space: `(S candidates, F candidates,
    /// max W)`.
    pub space: (Vec<u32>, Vec<u32>, u32),
}

impl EstimateKey {
    /// Builds the key for estimating a partition with the given
    /// characteristics under the given model, device and search space.
    pub fn new(
        chars: &PartitionCharacteristics,
        model: &PerfModel,
        gpu: &GpuSpec,
        space: &ParamSearchSpace,
    ) -> Self {
        EstimateKey {
            filters: chars
                .filters
                .iter()
                .map(|&(t, f)| (t.to_bits(), f))
                .collect(),
            io_bytes_per_exec: chars.io_bytes_per_exec,
            sm_bytes_per_exec: chars.sm_bytes_per_exec,
            max_firing_rate: chars.max_firing_rate,
            model: (
                model.c1.to_bits(),
                model.c2.to_bits(),
                model.warp_size,
                model.issue_throughput_correction,
            ),
            device: (gpu.shared_mem_bytes, gpu.max_threads_per_block),
            space: (
                space.s_candidates.clone(),
                space.f_candidates.clone(),
                space.max_w,
            ),
        }
    }
}

/// Version of the estimation *algorithm* (model equations, parameter-search
/// procedure) whose answers an [`EstimateCache`] holds. [`EstimateKey`]
/// captures every numeric input, but not the code that consumes them: bump
/// this whenever `estimate_from_chars`/`select_parameters` logic changes, so
/// persisted caches from older binaries are rejected instead of silently
/// replaying stale estimates.
pub const ESTIMATOR_ALGORITHM_VERSION: u32 = 1;

/// Hit/miss/size counters of an [`EstimateCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache (including queries that waited for an
    /// in-flight computation of the same key).
    pub hits: u64,
    /// Queries that had to compute a fresh entry.
    pub misses: u64,
    /// Number of distinct keys stored.
    pub entries: u64,
}

impl CacheStats {
    /// Total number of queries served.
    pub fn queries(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of queries answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            self.hits as f64 / q as f64
        }
    }
}

/// A shared, thread-safe estimate cache.
///
/// Cloneable handles are obtained by wrapping the cache in an [`Arc`] and
/// passing it to [`Estimator::with_shared_cache`](crate::Estimator::with_shared_cache).
#[derive(Default)]
pub struct EstimateCache {
    map: RwLock<HashMap<EstimateKey, Arc<OnceLock<Option<Estimate>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EstimateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EstimateCache::default()
    }

    /// Creates an empty cache behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(EstimateCache::new())
    }

    /// Returns the cached estimate for `key`, computing it with `compute` if
    /// absent. Concurrent callers with the same fresh key block until the
    /// single in-flight computation finishes; exactly one of them is counted
    /// as the miss.
    pub fn get_or_compute(
        &self,
        key: EstimateKey,
        compute: impl FnOnce() -> Option<Estimate>,
    ) -> Option<Estimate> {
        let existing = {
            let map = self.map.read().expect("estimate cache lock poisoned");
            map.get(&key).cloned()
        };
        let (cell, fresh) = match existing {
            Some(cell) => (cell, false),
            None => {
                let mut map = self.map.write().expect("estimate cache lock poisoned");
                match map.entry(key) {
                    Entry::Occupied(e) => (e.get().clone(), false),
                    Entry::Vacant(v) => {
                        let cell = Arc::new(OnceLock::new());
                        v.insert(cell.clone());
                        (cell, true)
                    }
                }
            }
        };
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // The computation itself runs outside the map lock, so slow estimates
        // never serialise unrelated queries.
        *cell.get_or_init(compute)
    }

    /// A snapshot of every completed entry, for persistence. In-flight
    /// computations (cells not yet initialised) are skipped.
    pub fn entries(&self) -> Vec<(EstimateKey, Option<Estimate>)> {
        self.map
            .read()
            .expect("estimate cache lock poisoned")
            .iter()
            .filter_map(|(key, cell)| cell.get().map(|value| (key.clone(), *value)))
            .collect()
    }

    /// Inserts a completed entry without touching the hit/miss counters, so
    /// a cache warm-started from disk reports every subsequent first query
    /// of a preloaded key as a hit. A key that already exists is left
    /// untouched.
    pub fn preload(&self, key: EstimateKey, estimate: Option<Estimate>) {
        let mut map = self.map.write().expect("estimate cache lock poisoned");
        map.entry(key).or_insert_with(|| {
            let cell = Arc::new(OnceLock::new());
            cell.set(estimate).expect("fresh cell is uninitialised");
            cell
        });
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("estimate cache lock poisoned").len() as u64,
        }
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.map.read().expect("estimate cache lock poisoned").len()
    }

    /// `true` if no key has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for EstimateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EstimateCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Estimator;
    use sgmap_graph::{Filter, NodeSet, StreamGraph};

    fn chain(works: &[f64]) -> StreamGraph {
        let mut g = StreamGraph::new("chain");
        let n = works.len();
        let ids: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                g.add_filter(Filter::new(
                    format!("f{i}"),
                    if i == 0 { 0 } else { 1 },
                    if i + 1 == n { 0 } else { 1 },
                    w,
                ))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_channel(pair[0], pair[1], 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn shared_and_unshared_estimates_are_bit_identical() {
        let g = chain(&[1.0, 500.0, 250.0, 1.0]);
        let gpu = GpuSpec::m2090();
        let plain = Estimator::new(&g, gpu.clone()).unwrap();
        let cache = EstimateCache::shared();
        let cached = Estimator::new(&g, gpu)
            .unwrap()
            .with_shared_cache(cache.clone());
        for i in 0..4 {
            let set = NodeSet::singleton(sgmap_graph::FilterId::from_index(i));
            let a = plain.estimate(&set);
            let b = cached.estimate(&set);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.params, b.params);
                    assert_eq!(a.t_comp_us.to_bits(), b.t_comp_us.to_bits());
                    assert_eq!(a.t_dt_us.to_bits(), b.t_dt_us.to_bits());
                    assert_eq!(a.t_db_us.to_bits(), b.t_db_us.to_bits());
                    assert_eq!(a.t_exec_us.to_bits(), b.t_exec_us.to_bits());
                    assert_eq!(a.normalized_us.to_bits(), b.normalized_us.to_bits());
                    assert_eq!(a.sm_bytes, b.sm_bytes);
                    assert_eq!(a.io_bytes_per_exec, b.io_bytes_per_exec);
                }
                (a, b) => panic!("cached/uncached disagree: {a:?} vs {b:?}"),
            }
        }
        let all = NodeSet::all(&g);
        assert_eq!(plain.estimate(&all), cached.estimate(&all));
        assert!(cache.stats().misses > 0);
    }

    #[test]
    fn a_second_estimator_hits_what_the_first_computed() {
        let g = chain(&[2.0, 300.0, 2.0]);
        let gpu = GpuSpec::m2090();
        let cache = EstimateCache::shared();
        let all = NodeSet::all(&g);
        let first = Estimator::new(&g, gpu.clone())
            .unwrap()
            .with_shared_cache(cache.clone());
        first.estimate(&all);
        let after_first = cache.stats();
        assert_eq!(after_first.hits, 0);
        // A fresh estimator over the same graph has an empty local cache, so
        // its query reaches the shared cache and hits.
        let second = Estimator::new(&g, gpu)
            .unwrap()
            .with_shared_cache(cache.clone());
        assert_eq!(second.estimate(&all), first.estimate(&all));
        let after_second = cache.stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert_eq!(after_second.hits, 1);
        assert_eq!(after_second.entries, after_first.entries);
    }

    #[test]
    fn preloaded_entries_answer_queries_as_hits_with_zero_misses() {
        let g = chain(&[2.0, 300.0, 2.0]);
        let gpu = GpuSpec::m2090();
        let first_cache = EstimateCache::shared();
        let first = Estimator::new(&g, gpu.clone())
            .unwrap()
            .with_shared_cache(first_cache.clone());
        let all = NodeSet::all(&g);
        let expected = first.estimate(&all);
        let entries = first_cache.entries();
        assert_eq!(entries.len() as u64, first_cache.stats().entries);

        // Transplant the snapshot into a fresh cache: the same query is now
        // answered bit-identically with zero misses.
        let second_cache = EstimateCache::shared();
        for (key, value) in entries {
            second_cache.preload(key, value);
        }
        assert_eq!(second_cache.stats().queries(), 0);
        let second = Estimator::new(&g, gpu)
            .unwrap()
            .with_shared_cache(second_cache.clone());
        assert_eq!(second.estimate(&all), expected);
        let stats = second_cache.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 1);
        // Preloading an existing key never clobbers the entry.
        let again = first_cache.entries();
        for (key, value) in again {
            second_cache.preload(key, value);
        }
        assert_eq!(second_cache.stats().misses, 0);
    }

    #[test]
    fn concurrent_queries_count_one_miss_per_distinct_key_and_never_poison() {
        // All five filters have pairwise-distinct work, so their singleton
        // partitions have distinct characteristics and thus distinct cache
        // keys. (Filters with identical characteristics would — by design —
        // share one key.)
        let g = chain(&[3.0, 40.0, 80.0, 120.0, 7.0]);
        let gpu = GpuSpec::m2090();
        let cache = EstimateCache::shared();
        let threads = 8;
        let rounds = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = cache.clone();
                let g = &g;
                let gpu = gpu.clone();
                s.spawn(move || {
                    // Each thread gets its own estimator (local caches are
                    // per-estimator) but shares the one cache; rotating the
                    // start index varies the arrival order across threads.
                    let est = Estimator::new(g, gpu).unwrap().with_shared_cache(cache);
                    for round in 0..rounds {
                        for i in 0..5 {
                            let idx = (i + t + round) % 5;
                            let set = NodeSet::singleton(sgmap_graph::FilterId::from_index(idx));
                            est.estimate(&set);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        // Every estimator's local cache deduplicates its own repeats, so each
        // of the 8 estimators sends exactly 5 queries to the shared cache.
        assert_eq!(stats.queries(), threads as u64 * 5);
        // Single-flight: each of the 5 distinct keys misses exactly once, no
        // matter how the threads interleaved.
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, threads as u64 * 5 - 5);
        assert_eq!(stats.entries, 5);
        // `stats()` above takes the read lock; reaching this point also
        // proves no lock was poisoned.
        assert!(cache.stats().hit_rate() > 0.8);
    }
}
