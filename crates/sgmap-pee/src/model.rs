//! The analytic kernel-time model (equations III.8–III.12).

use serde::{Deserialize, Serialize};
use sgmap_gpusim::{GpuSpec, KernelParams};

use crate::chars::PartitionCharacteristics;

/// The constants reported by the paper for its platform (`C1 = 38.4`,
/// `C2 = 11.2`, in the authors' time/byte units). They are kept for
/// reference; this reproduction derives its own defaults from the simulated
/// device and can re-fit them by regression ([`crate::calibrate`]).
pub const PAPER_C1: f64 = 38.4;
/// See [`PAPER_C1`].
pub const PAPER_C2: f64 = 11.2;

/// The analytic GPU performance model of Section 3.3.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Data-transfer cost per byte per data-transfer thread (microseconds).
    pub c1: f64,
    /// Buffer-swap cost per byte per participating thread (microseconds).
    pub c2: f64,
    /// Warp width used by the optional issue-throughput saturation term.
    pub warp_size: u32,
    /// Enables the SM issue-throughput correction (see the crate-level
    /// documentation). Disable to obtain the paper's formula verbatim.
    pub issue_throughput_correction: bool,
}

impl PerfModel {
    /// Derives default constants for a device analytically: `C1` from the
    /// per-thread global-memory access cost and `C2` from the shared-memory
    /// copy cost of the buffer swap.
    pub fn for_gpu(gpu: &GpuSpec) -> Self {
        let c1 = gpu.cycles_to_us(gpu.global_access_cycles) / 4.0;
        let c2 = gpu.cycles_to_us(2.0 * gpu.shared_access_cycles) / 4.0;
        PerfModel {
            c1,
            c2,
            warp_size: gpu.warp_size,
            issue_throughput_correction: true,
        }
    }

    /// Returns a copy with the given calibrated constants.
    pub fn with_constants(mut self, c1: f64, c2: f64) -> Self {
        self.c1 = c1;
        self.c2 = c2;
        self
    }

    /// Returns a copy using the paper's formula verbatim (no saturation
    /// term).
    pub fn without_throughput_correction(mut self) -> Self {
        self.issue_throughput_correction = false;
        self
    }

    /// Equation III.9: compute time of the partition for `S` compute threads
    /// per execution (optionally including the saturation term for `W`
    /// concurrent executions).
    pub fn t_comp_us(&self, chars: &PartitionCharacteristics, params: KernelParams) -> f64 {
        let s = f64::from(params.s.max(1));
        let latency: f64 = chars
            .filters
            .iter()
            .map(|&(t_i, f_i)| t_i / (f_i as f64).min(s).max(1.0))
            .sum();
        if self.issue_throughput_correction {
            let throughput =
                f64::from(params.w.max(1)) * chars.serial_compute_us() / f64::from(self.warp_size);
            latency.max(throughput)
        } else {
            latency
        }
    }

    /// Equation III.10: data-transfer time for the kernel's total IO volume
    /// `D = W · io_bytes_per_exec`.
    pub fn t_dt_us(&self, chars: &PartitionCharacteristics, params: KernelParams) -> f64 {
        let d = (u64::from(params.w) * chars.io_bytes_per_exec) as f64;
        self.c1 * d / f64::from(params.f.max(1))
    }

    /// Equation III.11: working-set / double-buffer swap time.
    pub fn t_db_us(&self, chars: &PartitionCharacteristics, params: KernelParams) -> f64 {
        let d = (u64::from(params.w) * chars.io_bytes_per_exec) as f64;
        self.c2 * d / f64::from(params.total_threads().max(1))
    }

    /// Equation III.8: total kernel time.
    pub fn t_exec_us(&self, chars: &PartitionCharacteristics, params: KernelParams) -> f64 {
        self.t_comp_us(chars, params)
            .max(self.t_dt_us(chars, params))
            + self.t_db_us(chars, params)
    }

    /// Equation III.12: normalised (per-execution) time, the metric used to
    /// compare partitions of different sizes.
    pub fn normalized_us(&self, chars: &PartitionCharacteristics, params: KernelParams) -> f64 {
        self.t_exec_us(chars, params) / f64::from(params.w.max(1))
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel::for_gpu(&GpuSpec::m2090())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars(times: &[(f64, u64)], io: u64) -> PartitionCharacteristics {
        PartitionCharacteristics {
            filters: times.to_vec(),
            io_bytes_per_exec: io,
            sm_bytes_per_exec: 1024,
            max_firing_rate: times.iter().map(|&(_, f)| f).max().unwrap_or(1),
        }
    }

    #[test]
    fn compute_time_parallelises_up_to_the_firing_rate() {
        let m = PerfModel::default().without_throughput_correction();
        let c = chars(&[(8.0, 8), (4.0, 2)], 0);
        let t1 = m.t_comp_us(&c, KernelParams { w: 1, s: 1, f: 32 });
        let t4 = m.t_comp_us(&c, KernelParams { w: 1, s: 4, f: 32 });
        let t16 = m.t_comp_us(&c, KernelParams { w: 1, s: 16, f: 32 });
        assert!((t1 - 12.0).abs() < 1e-9);
        assert!((t4 - (2.0 + 2.0)).abs() < 1e-9);
        // S beyond the firing rate gives no further benefit (min(f_i, S)).
        assert!((t16 - (1.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn data_transfer_scales_with_w_and_inverse_f() {
        let m = PerfModel::default();
        let c = chars(&[(1.0, 1)], 1000);
        let base = m.t_dt_us(&c, KernelParams { w: 1, s: 1, f: 32 });
        let double_w = m.t_dt_us(&c, KernelParams { w: 2, s: 1, f: 32 });
        let double_f = m.t_dt_us(&c, KernelParams { w: 1, s: 1, f: 64 });
        assert!((double_w - 2.0 * base).abs() < 1e-9);
        assert!((double_f - 0.5 * base).abs() < 1e-9);
    }

    #[test]
    fn exec_time_is_max_plus_swap() {
        let m = PerfModel::default().without_throughput_correction();
        let c = chars(&[(100.0, 1)], 64);
        let p = KernelParams { w: 1, s: 1, f: 32 };
        let t = m.t_exec_us(&c, p);
        assert!((t - (m.t_comp_us(&c, p).max(m.t_dt_us(&c, p)) + m.t_db_us(&c, p))).abs() < 1e-12);
        // This partition is compute bound.
        assert!(m.t_comp_us(&c, p) > m.t_dt_us(&c, p));
    }

    #[test]
    fn normalisation_amortises_compute_over_w() {
        let m = PerfModel::default().without_throughput_correction();
        let c = chars(&[(100.0, 1)], 16);
        let t1 = m.normalized_us(&c, KernelParams { w: 1, s: 1, f: 32 });
        let t8 = m.normalized_us(&c, KernelParams { w: 8, s: 1, f: 32 });
        assert!(t8 < t1);
    }

    #[test]
    fn throughput_correction_saturates_large_w() {
        let with = PerfModel::default();
        let without = PerfModel::default().without_throughput_correction();
        let c = chars(&[(10.0, 1)], 0);
        let p = KernelParams {
            w: 256,
            s: 1,
            f: 32,
        };
        assert!(with.t_comp_us(&c, p) > without.t_comp_us(&c, p));
    }

    #[test]
    fn paper_constants_are_recorded() {
        assert_eq!(PAPER_C1, 38.4);
        assert_eq!(PAPER_C2, 11.2);
    }
}
