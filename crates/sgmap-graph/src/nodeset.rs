//! Sub-graphs of a stream graph: the candidate partitions of the mapping
//! flow.
//!
//! A [`NodeSet`] is an arbitrary subset of the filters of a [`StreamGraph`].
//! The partitioning heuristic only ever keeps node sets that are *connected*
//! and *convex* (no path between two members passes through a non-member),
//! so both predicates are provided here, together with the boundary/interior
//! channel queries needed to compute workloads, IO volumes and inter-partition
//! traffic.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::algo;
use crate::error::GraphError;
use crate::filter::{FilterId, FilterKind};
use crate::graph::{ChannelId, StreamGraph};
use crate::rates::RepetitionVector;
use crate::Result;

/// A set of filters of a stream graph, kept sorted by filter id.
///
/// The members are stored behind an [`Arc`], so cloning a node set — which
/// the partition search and the estimator caches do constantly — is a
/// reference-count bump rather than a vector copy, and the hash of the
/// member list is precomputed at construction so hash-map lookups keyed by
/// node sets do not re-walk the members.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSet {
    members: Arc<Vec<FilterId>>,
    /// FNV-1a over the member ids; maintained on every mutation.
    hash: u64,
}

/// FNV-1a over the member ids. Deterministic across runs and platforms, so
/// anything derived from the hash (bucket order never is) stays stable.
fn members_hash(members: &[FilterId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in members {
        h ^= id.index() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl NodeSet {
    fn from_sorted(members: Vec<FilterId>) -> Self {
        let hash = members_hash(&members);
        NodeSet {
            members: Arc::new(members),
            hash,
        }
    }

    /// Creates an empty node set.
    pub fn new() -> Self {
        NodeSet::from_sorted(Vec::new())
    }

    /// Creates a node set containing a single filter.
    pub fn singleton(id: FilterId) -> Self {
        NodeSet::from_sorted(vec![id])
    }

    /// Creates a node set containing every filter of `graph`.
    pub fn all(graph: &StreamGraph) -> Self {
        NodeSet::from_sorted(graph.filter_ids().collect())
    }

    /// Creates a node set from an iterator of filter ids (duplicates are
    /// removed).
    pub fn from_ids(ids: impl IntoIterator<Item = FilterId>) -> Self {
        let mut members: Vec<FilterId> = ids.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        NodeSet::from_sorted(members)
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the set contains no filter.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `id` belongs to the set.
    pub fn contains(&self, id: FilterId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Inserts a filter; returns `true` if it was not already present.
    pub fn insert(&mut self, id: FilterId) -> bool {
        match self.members.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                Arc::make_mut(&mut self.members).insert(pos, id);
                self.hash = members_hash(&self.members);
                true
            }
        }
    }

    /// Iterates over the member filter ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.members.iter().copied()
    }

    /// Returns the members as a slice, sorted ascending.
    pub fn as_slice(&self) -> &[FilterId] {
        &self.members
    }

    /// Returns a new set that is the union of `self` and `other`.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut members = Vec::with_capacity(self.members.len() + other.members.len());
        let (mut i, mut j) = (0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].cmp(&other.members[j]) {
                std::cmp::Ordering::Less => {
                    members.push(self.members[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    members.push(other.members[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    members.push(self.members[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        members.extend_from_slice(&self.members[i..]);
        members.extend_from_slice(&other.members[j..]);
        NodeSet::from_sorted(members)
    }

    /// Returns a new set with the members of `self` that are not in `other`.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut members = Vec::with_capacity(self.members.len());
        let (mut i, mut j) = (0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].cmp(&other.members[j]) {
                std::cmp::Ordering::Less => {
                    members.push(self.members[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        members.extend_from_slice(&self.members[i..]);
        NodeSet::from_sorted(members)
    }

    /// Returns `true` if the two sets share at least one filter.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].cmp(&other.members[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    fn membership(&self, graph: &StreamGraph) -> Vec<bool> {
        let mut m = vec![false; graph.filter_count()];
        for id in self.iter() {
            m[id.index()] = true;
        }
        m
    }

    /// Returns `true` if the members form a weakly connected sub-graph of
    /// `graph`.
    pub fn is_connected(&self, graph: &StreamGraph) -> bool {
        if self.is_empty() {
            return false;
        }
        algo::is_weakly_connected(graph, &self.membership(graph))
    }

    /// Returns `true` if the set is convex in `graph`: no directed path
    /// between two members passes through a non-member.
    pub fn is_convex(&self, graph: &StreamGraph) -> bool {
        if self.members.len() <= 1 {
            return true;
        }
        let members = self.membership(graph);
        // A non-member x violates convexity iff it is reachable from a member
        // and can itself reach a member. One multi-source BFS from all
        // members gives the first predicate in O(V + E).
        let mut reachable_from_set = members.clone();
        let mut stack: Vec<FilterId> = self.iter().collect();
        while let Some(u) = stack.pop() {
            for &c in graph.out_channels(u) {
                let ch = graph.channel(c);
                if ch.feedback {
                    continue;
                }
                if !reachable_from_set[ch.dst.index()] {
                    reachable_from_set[ch.dst.index()] = true;
                    stack.push(ch.dst);
                }
            }
        }
        let reaches_set = algo::can_reach_targets(graph, &members);
        for i in 0..graph.filter_count() {
            if !members[i] && reachable_from_set[i] && reaches_set[i] {
                // `reaches_set` includes the node itself when it is a member,
                // but i is a non-member here, so this marks a true violation
                // only if it can reach some member *through* forward edges.
                let downstream_member_exists = graph
                    .successors(FilterId::from_index(i))
                    .iter()
                    .any(|&s| reaches_set[s.index()] || members[s.index()]);
                if downstream_member_exists {
                    return false;
                }
            }
        }
        true
    }

    /// Channels whose endpoints are both members.
    pub fn internal_channels(&self, graph: &StreamGraph) -> Vec<ChannelId> {
        graph
            .channels()
            .filter(|(_, ch)| self.contains(ch.src) && self.contains(ch.dst))
            .map(|(id, _)| id)
            .collect()
    }

    /// Channels entering the set from outside.
    pub fn input_channels(&self, graph: &StreamGraph) -> Vec<ChannelId> {
        graph
            .channels()
            .filter(|(_, ch)| !self.contains(ch.src) && self.contains(ch.dst))
            .map(|(id, _)| id)
            .collect()
    }

    /// Channels leaving the set to the outside.
    pub fn output_channels(&self, graph: &StreamGraph) -> Vec<ChannelId> {
        graph
            .channels()
            .filter(|(_, ch)| self.contains(ch.src) && !self.contains(ch.dst))
            .map(|(id, _)| id)
            .collect()
    }

    /// Total work (abstract operations) of the members per steady-state
    /// iteration.
    pub fn iteration_work(&self, graph: &StreamGraph, reps: &RepetitionVector) -> f64 {
        self.iter()
            .map(|id| graph.filter(id).work * reps[id.index()] as f64)
            .sum()
    }

    /// Total IO bytes per steady-state iteration: boundary channel traffic
    /// plus the primary input/output carried by source and sink filters that
    /// are members of this set.
    pub fn iteration_io_bytes(&self, graph: &StreamGraph, reps: &RepetitionVector) -> u64 {
        let mut bytes = 0u64;
        for id in self.input_channels(graph) {
            bytes += graph.channel_iteration_bytes(id, reps);
        }
        for id in self.output_channels(graph) {
            bytes += graph.channel_iteration_bytes(id, reps);
        }
        for id in self.iter() {
            let f = graph.filter(id);
            match f.kind {
                FilterKind::Source => {
                    bytes += reps[id.index()] * u64::from(f.push) * u64::from(f.token_bytes)
                }
                FilterKind::Sink => {
                    bytes += reps[id.index()] * u64::from(f.pop) * u64::from(f.token_bytes)
                }
                _ => {}
            }
        }
        bytes
    }

    /// Sum of the members' firings per steady-state iteration.
    pub fn iteration_firings(&self, reps: &RepetitionVector) -> u64 {
        self.iter().map(|id| reps[id.index()]).sum()
    }

    /// Checks that the set is non-empty and that every member exists in
    /// `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyNodeSet`] or
    /// [`GraphError::UnknownFilter`].
    pub fn validate(&self, graph: &StreamGraph) -> Result<()> {
        if self.is_empty() {
            return Err(GraphError::EmptyNodeSet);
        }
        for id in self.iter() {
            if id.index() >= graph.filter_count() {
                return Err(GraphError::UnknownFilter(id));
            }
        }
        Ok(())
    }
}

impl Default for NodeSet {
    fn default() -> Self {
        NodeSet::new()
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        // Shared storage (the common case after a cheap clone) and the
        // precomputed hash both short-circuit the member comparison.
        Arc::ptr_eq(&self.members, &other.members)
            || (self.hash == other.hash && self.members == other.members)
    }
}

impl Eq for NodeSet {}

impl std::hash::Hash for NodeSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl FromIterator<FilterId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = FilterId>>(iter: T) -> Self {
        NodeSet::from_ids(iter)
    }
}

impl Extend<FilterId> for NodeSet {
    fn extend<T: IntoIterator<Item = FilterId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    /// a -> b -> c -> d plus a -> e -> d (a diamond with a long arm).
    fn fixture() -> (StreamGraph, Vec<FilterId>) {
        let mut g = StreamGraph::new("fixture");
        let a = g.add_filter(Filter::new("a", 0, 2, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 2.0));
        let c = g.add_filter(Filter::new("c", 1, 1, 3.0));
        let d = g.add_filter(Filter::new("d", 2, 0, 4.0));
        let e = g.add_filter(Filter::new("e", 1, 1, 5.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(b, c, 1, 1).unwrap();
        g.add_channel(c, d, 1, 1).unwrap();
        g.add_channel(a, e, 1, 1).unwrap();
        g.add_channel(e, d, 1, 1).unwrap();
        (g, vec![a, b, c, d, e])
    }

    #[test]
    fn set_operations() {
        let s1 = NodeSet::from_ids([FilterId::from_index(0), FilterId::from_index(2)]);
        let s2 = NodeSet::from_ids([FilterId::from_index(2), FilterId::from_index(3)]);
        assert!(s1.intersects(&s2));
        let u = s1.union(&s2);
        assert_eq!(u.len(), 3);
        assert!(u.contains(FilterId::from_index(0)));
        assert!(u.contains(FilterId::from_index(3)));
        let mut s = NodeSet::singleton(FilterId::from_index(1));
        assert!(s.insert(FilterId::from_index(0)));
        assert!(!s.insert(FilterId::from_index(0)));
        assert_eq!(s.as_slice()[0], FilterId::from_index(0));
        let d = u.difference(&s2);
        assert_eq!(d, NodeSet::singleton(FilterId::from_index(0)));
        assert_eq!(s1.difference(&s1), NodeSet::new());
        assert_eq!(u.difference(&NodeSet::new()), u);
        // Hashes of derived sets match freshly built ones (cache-key contract).
        assert_eq!(d, NodeSet::from_ids([FilterId::from_index(0)]));
    }

    #[test]
    fn connectivity_and_convexity() {
        let (g, ids) = fixture();
        let (a, b, c, d, e) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        // {b, c} is connected and convex.
        let bc = NodeSet::from_ids([b, c]);
        assert!(bc.is_connected(&g));
        assert!(bc.is_convex(&g));
        // {b, d} is not connected directly... b->c->d exists, but c is missing:
        // not connected as an undirected induced subgraph, and not convex.
        let bd = NodeSet::from_ids([b, d]);
        assert!(!bd.is_connected(&g));
        assert!(!bd.is_convex(&g));
        // {a, d} plus the arm e: convex only if both arms are included.
        let ad = NodeSet::from_ids([a, d]);
        assert!(!ad.is_convex(&g));
        let abcde = NodeSet::from_ids([a, b, c, d, e]);
        assert!(abcde.is_convex(&g));
        assert!(abcde.is_connected(&g));
        // {a, b, e}: the path a->b does not leave the set, and no path between
        // members goes through an outsider (c is only on a path from b to d,
        // and d is not a member), so this is convex.
        let abe = NodeSet::from_ids([a, b, e]);
        assert!(abe.is_convex(&g));
        // {b, e, d}: a path e->d stays inside, but b reaches d only through c
        // which is outside: not convex.
        let bed = NodeSet::from_ids([b, e, d]);
        assert!(!bed.is_convex(&g));
    }

    #[test]
    fn boundary_channels_and_io() {
        let (g, ids) = fixture();
        let reps = g.repetition_vector().unwrap();
        let bc = NodeSet::from_ids([ids[1], ids[2]]);
        assert_eq!(bc.internal_channels(&g).len(), 1);
        assert_eq!(bc.input_channels(&g).len(), 1);
        assert_eq!(bc.output_channels(&g).len(), 1);
        // one token in + one token out, 4 bytes per token.
        assert_eq!(bc.iteration_io_bytes(&g, &reps), 8);
        assert_eq!(bc.iteration_work(&g, &reps), 2.0 + 3.0);
        // The whole graph's IO is the primary input + output.
        let all = NodeSet::all(&g);
        assert_eq!(
            all.iteration_io_bytes(&g, &reps),
            g.primary_input_bytes(&reps) + g.primary_output_bytes(&reps)
        );
    }

    #[test]
    fn clones_share_storage_and_mutation_keeps_hash_consistent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let hash_of = |s: &NodeSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let a = NodeSet::from_ids([FilterId::from_index(3), FilterId::from_index(1)]);
        let clone = a.clone();
        assert!(Arc::ptr_eq(&a.members, &clone.members));
        assert_eq!(a, clone);
        assert_eq!(hash_of(&a), hash_of(&clone));
        // Mutating the clone must not disturb the original (copy-on-write)
        // and must keep hash consistent with an equal set built from scratch.
        let mut grown = clone;
        assert!(grown.insert(FilterId::from_index(2)));
        assert_eq!(a.len(), 2);
        assert_eq!(grown.len(), 3);
        let rebuilt = NodeSet::from_ids((1..4).map(FilterId::from_index));
        assert_eq!(grown, rebuilt);
        assert_eq!(hash_of(&grown), hash_of(&rebuilt));
        assert_ne!(hash_of(&a), hash_of(&grown));
        // Empty sets built any way agree too.
        assert_eq!(hash_of(&NodeSet::new()), hash_of(&NodeSet::default()));
        assert_eq!(hash_of(&NodeSet::new()), hash_of(&NodeSet::from_ids([])));
    }

    #[test]
    fn validate_rejects_empty_and_foreign_sets() {
        let (g, _) = fixture();
        assert_eq!(NodeSet::new().validate(&g), Err(GraphError::EmptyNodeSet));
        let foreign = NodeSet::singleton(FilterId::from_index(99));
        assert!(matches!(
            foreign.validate(&g),
            Err(GraphError::UnknownFilter(_))
        ));
        assert!(NodeSet::all(&g).validate(&g).is_ok());
    }
}
