//! Steady-state (SDF) rate analysis: the repetition vector.
//!
//! For every channel `(u, v)` with production rate `push` and consumption
//! rate `pop`, a consistent steady state requires
//! `rep[u] * push == rep[v] * pop`. The smallest positive integer solution of
//! this system is the *repetition vector*; it determines how many times each
//! filter fires per iteration and hence every buffer size and workload figure
//! used by the mapping flow.

use serde::{Deserialize, Serialize};
use std::ops::Index;

use crate::error::GraphError;
use crate::graph::StreamGraph;
use crate::Result;

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (panics on overflow, which would require graphs far
/// larger than anything the flow handles).
fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// A non-negative rational number with a canonical (reduced) representation.
///
/// Used internally by the repetition-vector solver and exposed because the
/// performance model also works with fractional token ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: u64,
    den: u64,
}

impl Rational {
    /// Creates a rational `num / den` in reduced form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let g = gcd(num, den);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// The rational number one.
    pub fn one() -> Self {
        Rational { num: 1, den: 1 }
    }

    /// Numerator of the reduced form.
    pub fn numerator(self) -> u64 {
        self.num
    }

    /// Denominator of the reduced form.
    pub fn denominator(self) -> u64 {
        self.den
    }

    /// Multiplies by `num / den`.
    pub fn mul_ratio(self, num: u64, den: u64) -> Self {
        // Reduce cross-wise first to keep intermediate values small.
        let g1 = gcd(self.num, den.max(1));
        let g2 = gcd(num, self.den);
        Rational::new(
            (self.num / g1.max(1)) * (num / g2.max(1)),
            (self.den / g2.max(1)) * (den / g1.max(1)),
        )
    }

    /// Returns the value as `f64` (for diagnostics only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::one()
    }
}

/// The repetition vector of a stream graph: `reps[i]` is the number of times
/// filter `i` fires per steady-state iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionVector {
    reps: Vec<u64>,
}

impl RepetitionVector {
    /// Number of firings of the filter at `index`.
    pub fn firings(&self, index: usize) -> u64 {
        self.reps[index]
    }

    /// Iterates over the firing counts in filter-id order.
    pub fn iter(&self) -> impl Iterator<Item = &u64> + '_ {
        self.reps.iter()
    }

    /// Number of entries (== number of filters).
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Returns `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Returns the underlying slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.reps
    }
}

impl Index<usize> for RepetitionVector {
    type Output = u64;
    fn index(&self, index: usize) -> &u64 {
        &self.reps[index]
    }
}

impl std::ops::Deref for RepetitionVector {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        &self.reps
    }
}

/// Solves the balance equations of `graph`.
pub(crate) fn repetition_vector(graph: &StreamGraph) -> Result<RepetitionVector> {
    let n = graph.filter_count();
    if n == 0 {
        return Ok(RepetitionVector { reps: Vec::new() });
    }
    let mut assigned: Vec<Option<Rational>> = vec![None; n];

    // Breadth-first propagation over channels treated as undirected edges.
    for start in 0..n {
        if assigned[start].is_some() {
            continue;
        }
        assigned[start] = Some(Rational::one());
        let mut queue = vec![start];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let ru = assigned[u].expect("assigned before queueing");
            let uid = crate::filter::FilterId::from_index(u);
            // Outgoing: rep[dst] = rep[src] * push / pop.
            for &c in graph.out_channels(uid) {
                let ch = graph.channel(c);
                if ch.push == 0 && ch.pop == 0 {
                    continue;
                }
                if ch.push == 0 || ch.pop == 0 {
                    return Err(GraphError::ZeroRate {
                        src: ch.src,
                        dst: ch.dst,
                    });
                }
                let rv = ru.mul_ratio(u64::from(ch.push), u64::from(ch.pop));
                let v = ch.dst.index();
                match assigned[v] {
                    None => {
                        assigned[v] = Some(rv);
                        queue.push(v);
                    }
                    Some(existing) if existing != rv => {
                        return Err(GraphError::InconsistentRates {
                            src: ch.src,
                            dst: ch.dst,
                        });
                    }
                    Some(_) => {}
                }
            }
            // Incoming: rep[src] = rep[dst] * pop / push.
            for &c in graph.in_channels(uid) {
                let ch = graph.channel(c);
                if ch.push == 0 && ch.pop == 0 {
                    continue;
                }
                if ch.push == 0 || ch.pop == 0 {
                    return Err(GraphError::ZeroRate {
                        src: ch.src,
                        dst: ch.dst,
                    });
                }
                let rv = ru.mul_ratio(u64::from(ch.pop), u64::from(ch.push));
                let v = ch.src.index();
                match assigned[v] {
                    None => {
                        assigned[v] = Some(rv);
                        queue.push(v);
                    }
                    Some(existing) if existing != rv => {
                        return Err(GraphError::InconsistentRates {
                            src: ch.src,
                            dst: ch.dst,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Scale each connected component independently to the smallest integers.
    // Components share no channels, so scaling them separately is sound.
    let rationals: Vec<Rational> = assigned
        .into_iter()
        .map(|r| r.expect("every node assigned"))
        .collect();
    let denom_lcm = rationals
        .iter()
        .fold(1u64, |acc, r| lcm(acc, r.denominator()));
    let scaled: Vec<u64> = rationals
        .iter()
        .map(|r| r.numerator() * (denom_lcm / r.denominator()))
        .collect();
    let num_gcd = scaled.iter().fold(0u64, |acc, &v| gcd(acc, v));
    let reps = scaled
        .iter()
        .map(|&v| v.checked_div(num_gcd).unwrap_or(1))
        .collect();
    Ok(RepetitionVector { reps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    #[test]
    fn rational_reduces() {
        let r = Rational::new(6, 4);
        assert_eq!((r.numerator(), r.denominator()), (3, 2));
        assert_eq!(Rational::new(0, 7), Rational::new(0, 3));
        let r = Rational::new(2, 3).mul_ratio(3, 4);
        assert_eq!((r.numerator(), r.denominator()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn rational_zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn repetition_vector_of_rate_changing_pipeline() {
        // src(push 3) -> a(pop 2, push 1) -> sink(pop 3)
        let mut g = StreamGraph::new("t");
        let s = g.add_filter(Filter::new("s", 0, 3, 1.0));
        let a = g.add_filter(Filter::new("a", 2, 1, 1.0));
        let k = g.add_filter(Filter::new("k", 3, 0, 1.0));
        g.add_channel(s, a, 3, 2).unwrap();
        g.add_channel(a, k, 1, 3).unwrap();
        let reps = g.repetition_vector().unwrap();
        // s*3 == a*2 and a*1 == k*3  =>  s=2, a=3, k=1.
        assert_eq!(reps.as_slice(), &[2, 3, 1]);
    }

    #[test]
    fn inconsistent_rates_are_detected() {
        // Diamond with mismatched branch rates.
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 0, 2, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 1.0));
        let c = g.add_filter(Filter::new("c", 1, 2, 1.0));
        let d = g.add_filter(Filter::new("d", 2, 0, 1.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(a, c, 1, 1).unwrap();
        g.add_channel(b, d, 1, 1).unwrap();
        g.add_channel(c, d, 2, 1).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(GraphError::InconsistentRates { .. })
        ));
    }

    #[test]
    fn zero_rate_on_one_side_is_an_error() {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 0, 1, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 0, 1.0));
        g.add_channel(a, b, 0, 1).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(GraphError::ZeroRate { .. })
        ));
    }

    #[test]
    fn uniform_graph_has_all_ones() {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 0, 1, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 1.0));
        let c = g.add_filter(Filter::new("c", 1, 0, 1.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(b, c, 1, 1).unwrap();
        let reps = g.repetition_vector().unwrap();
        assert_eq!(reps.as_slice(), &[1, 1, 1]);
    }
}
