//! Filters (actors) of a stream graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a filter (node) within a [`StreamGraph`](crate::StreamGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FilterId(pub(crate) u32);

impl FilterId {
    /// Creates a filter id from a raw index.
    ///
    /// Mostly useful in tests; regular code receives ids from
    /// [`StreamGraph::add_filter`](crate::StreamGraph::add_filter).
    pub fn from_index(index: usize) -> Self {
        FilterId(index as u32)
    }

    /// Returns the zero-based index of this filter inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FilterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// How a splitter distributes its input tokens across its output channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitKind {
    /// Every output channel receives a copy of every input token.
    Duplicate,
    /// Tokens are dealt out to the output channels according to the given
    /// weights: `weights[i]` consecutive tokens go to branch `i`, then the
    /// splitter moves on to branch `i + 1`, wrapping around.
    RoundRobin(Vec<u32>),
}

impl SplitKind {
    /// Uniform round-robin split over `n` branches, one token each.
    pub fn round_robin_uniform(n: usize) -> Self {
        SplitKind::RoundRobin(vec![1; n])
    }
}

/// How a joiner gathers tokens from its input channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Tokens are collected from the input channels according to the given
    /// weights, analogous to [`SplitKind::RoundRobin`].
    RoundRobin(Vec<u32>),
}

impl JoinKind {
    /// Uniform round-robin join over `n` branches, one token each.
    pub fn round_robin_uniform(n: usize) -> Self {
        JoinKind::RoundRobin(vec![1; n])
    }
}

/// The structural role of a filter.
///
/// Regular compute filters do real work; splitters and joiners only
/// re-arrange data and are the target of the splitter/joiner elimination
/// optimisation of the paper's Chapter V.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterKind {
    /// An ordinary computation filter.
    Compute,
    /// A source filter: produces the primary input stream (pop rate 0).
    Source,
    /// A sink filter: consumes the primary output stream (push rate 0).
    Sink,
    /// A data-distributing splitter.
    Splitter(SplitKind),
    /// A data-consolidating joiner.
    Joiner(JoinKind),
}

impl FilterKind {
    /// Returns `true` for splitters and joiners, the "non-data-manipulating"
    /// filters of Chapter V.
    pub fn is_reorder_only(&self) -> bool {
        matches!(self, FilterKind::Splitter(_) | FilterKind::Joiner(_))
    }
}

/// A filter (actor) of a stream graph.
///
/// Rates are expressed in tokens per firing on the *aggregate* of all input
/// (respectively output) channels; the per-channel breakdown lives on the
/// channels themselves so that round-robin splitters and joiners can have
/// asymmetric channel rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// Human-readable name, unique within the graph by convention but not
    /// enforced.
    pub name: String,
    /// Structural role.
    pub kind: FilterKind,
    /// Tokens consumed per firing (sum over all input channels).
    pub pop: u32,
    /// Tokens inspected per firing without being consumed. Always `>= pop`
    /// for StreamIt semantics; only the excess over `pop` occupies extra
    /// buffer space.
    pub peek: u32,
    /// Tokens produced per firing (sum over all output channels).
    pub push: u32,
    /// Abstract work estimate per firing, in arithmetic-operation units. The
    /// GPU profiler converts this into a per-firing execution time.
    pub work: f64,
    /// Size in bytes of one token on this filter's channels.
    pub token_bytes: u32,
    /// Bytes of per-filter persistent state (stateful filters cannot be
    /// data-parallelised across executions).
    pub state_bytes: u32,
}

impl Filter {
    /// Creates a compute filter with the given rates and work estimate.
    pub fn new(name: impl Into<String>, pop: u32, push: u32, work: f64) -> Self {
        let pop_rate = pop;
        Filter {
            name: name.into(),
            kind: if pop == 0 {
                FilterKind::Source
            } else if push == 0 {
                FilterKind::Sink
            } else {
                FilterKind::Compute
            },
            pop,
            peek: pop_rate,
            push,
            work,
            token_bytes: 4,
            state_bytes: 0,
        }
    }

    /// Sets the peek rate (tokens inspected per firing).
    ///
    /// # Panics
    ///
    /// Panics if `peek < self.pop`.
    pub fn with_peek(mut self, peek: u32) -> Self {
        assert!(peek >= self.pop, "peek rate must be >= pop rate");
        self.peek = peek;
        self
    }

    /// Sets the token size in bytes.
    pub fn with_token_bytes(mut self, bytes: u32) -> Self {
        self.token_bytes = bytes;
        self
    }

    /// Sets the persistent state size in bytes, marking the filter stateful
    /// when non-zero.
    pub fn with_state_bytes(mut self, bytes: u32) -> Self {
        self.state_bytes = bytes;
        self
    }

    /// Overrides the structural kind of the filter.
    pub fn with_kind(mut self, kind: FilterKind) -> Self {
        self.kind = kind;
        self
    }

    /// Returns `true` if this filter keeps state across firings.
    pub fn is_stateful(&self) -> bool {
        self.state_bytes > 0
    }

    /// Returns `true` if this filter only re-orders data (splitter/joiner).
    pub fn is_reorder_only(&self) -> bool {
        self.kind.is_reorder_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_kind_is_inferred_from_rates() {
        assert_eq!(Filter::new("src", 0, 4, 1.0).kind, FilterKind::Source);
        assert_eq!(Filter::new("sink", 4, 0, 1.0).kind, FilterKind::Sink);
        assert_eq!(Filter::new("mid", 2, 2, 1.0).kind, FilterKind::Compute);
    }

    #[test]
    fn peek_defaults_to_pop() {
        let f = Filter::new("fir", 1, 1, 10.0);
        assert_eq!(f.peek, 1);
        let f = f.with_peek(8);
        assert_eq!(f.peek, 8);
    }

    #[test]
    #[should_panic(expected = "peek rate must be >= pop rate")]
    fn peek_below_pop_panics() {
        let _ = Filter::new("bad", 4, 1, 1.0).with_peek(2);
    }

    #[test]
    fn reorder_only_detection() {
        let split =
            Filter::new("split", 2, 2, 0.5).with_kind(FilterKind::Splitter(SplitKind::Duplicate));
        assert!(split.is_reorder_only());
        assert!(!Filter::new("work", 1, 1, 1.0).is_reorder_only());
    }

    #[test]
    fn filter_id_round_trips_through_index() {
        let id = FilterId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "f17");
    }
}
