//! Stream graph intermediate representation for `sgmap`.
//!
//! This crate provides the input representation used by the whole mapping
//! flow of the paper *Communication-aware Mapping of Stream Graphs for
//! Multi-GPU Platforms*:
//!
//! * [`Filter`] — an actor with pop/peek/push rates and a work estimate,
//! * [`StreamGraph`] — the flat directed graph of filters and channels,
//! * [`StreamSpec`] / [`GraphBuilder`] — hierarchical StreamIt-style
//!   composition (pipeline, split-join, feedback loop) that flattens into a
//!   [`StreamGraph`],
//! * [`RepetitionVector`] — the SDF steady-state firing rates solved from the
//!   balance equations,
//! * [`NodeSet`] — a sub-graph (candidate partition) with connectivity and
//!   convexity queries,
//! * [`interp`] — a functional interpreter used to check that generated
//!   benchmark graphs compute what they claim to compute.
//!
//! # Example
//!
//! ```rust
//! use sgmap_graph::{GraphBuilder, StreamSpec, SplitKind, JoinKind};
//!
//! # fn main() -> Result<(), sgmap_graph::GraphError> {
//! // A small split-join sandwiched between two filters.
//! let spec = StreamSpec::pipeline(vec![
//!     StreamSpec::filter("source", 0, 1, 4.0),
//!     StreamSpec::split_join(
//!         SplitKind::Duplicate,
//!         vec![
//!             StreamSpec::filter("left", 1, 1, 8.0),
//!             StreamSpec::filter("right", 1, 1, 8.0),
//!         ],
//!         JoinKind::RoundRobin(vec![1, 1]),
//!     ),
//!     StreamSpec::filter("sink", 2, 0, 1.0),
//! ]);
//! let graph = GraphBuilder::new("example").build(spec)?;
//! assert_eq!(graph.filter_count(), 6); // source, splitter, left, right, joiner, sink
//! let reps = graph.repetition_vector()?;
//! assert!(reps.iter().all(|&r| r >= 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod builder;
mod error;
mod filter;
mod graph;
pub mod interp;
mod nodeset;
mod rates;

pub use builder::{GraphBuilder, StreamSpec};
pub use error::GraphError;
pub use filter::{Filter, FilterId, FilterKind, JoinKind, SplitKind};
pub use graph::{Channel, ChannelId, StreamGraph};
pub use nodeset::NodeSet;
pub use rates::{Rational, RepetitionVector};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
