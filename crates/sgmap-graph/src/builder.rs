//! Hierarchical, StreamIt-style construction of stream graphs.
//!
//! StreamIt programs are written as a hierarchy of three composition
//! operators — pipeline, split-join and feedback loop — over filters.
//! [`StreamSpec`] mirrors that hierarchy and [`GraphBuilder`] flattens it into
//! the flat [`StreamGraph`] consumed by the mapping flow, inserting explicit
//! splitter and joiner filters exactly as the StreamIt compiler does.

use crate::error::GraphError;
use crate::filter::{Filter, FilterId, FilterKind, JoinKind, SplitKind};
use crate::graph::StreamGraph;
use crate::Result;

/// Work charged to splitters and joiners per token moved. They do no real
/// computation, only shared-memory re-arrangement, but the paper observes
/// (Chapter V) that their runtime contribution is significant; this constant
/// models that cost.
pub const REORDER_WORK_PER_TOKEN: f64 = 1.0;

/// A hierarchical stream program specification.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSpec {
    /// A leaf filter.
    Filter(Filter),
    /// Consecutive stages; the output of stage `i` feeds stage `i + 1`.
    Pipeline(Vec<StreamSpec>),
    /// Fan-out to parallel branches through a splitter, fan-in through a
    /// joiner.
    SplitJoin {
        /// How the splitter distributes tokens.
        split: SplitKind,
        /// The parallel branches.
        branches: Vec<StreamSpec>,
        /// How the joiner collects tokens.
        join: JoinKind,
    },
    /// A cyclic structure: `body` feeds forward, `loopback` feeds a delayed
    /// copy of the body output back to the body input.
    FeedbackLoop {
        /// Forward path.
        body: Box<StreamSpec>,
        /// Backward path.
        loopback: Box<StreamSpec>,
        /// Tokens initially present on the feedback channel.
        delay_tokens: u32,
    },
}

impl StreamSpec {
    /// Convenience constructor for a leaf compute filter.
    pub fn filter(name: impl Into<String>, pop: u32, push: u32, work: f64) -> Self {
        StreamSpec::Filter(Filter::new(name, pop, push, work))
    }

    /// Wraps an existing [`Filter`] as a leaf.
    pub fn from_filter(filter: Filter) -> Self {
        StreamSpec::Filter(filter)
    }

    /// Convenience constructor for a pipeline.
    pub fn pipeline(stages: Vec<StreamSpec>) -> Self {
        StreamSpec::Pipeline(stages)
    }

    /// Convenience constructor for a split-join.
    pub fn split_join(split: SplitKind, branches: Vec<StreamSpec>, join: JoinKind) -> Self {
        StreamSpec::SplitJoin {
            split,
            branches,
            join,
        }
    }

    /// Convenience constructor for a feedback loop.
    pub fn feedback_loop(body: StreamSpec, loopback: StreamSpec, delay_tokens: u32) -> Self {
        StreamSpec::FeedbackLoop {
            body: Box::new(body),
            loopback: Box::new(loopback),
            delay_tokens,
        }
    }

    /// Number of leaf filters in the specification (excluding the splitters
    /// and joiners that flattening will add).
    pub fn leaf_count(&self) -> usize {
        match self {
            StreamSpec::Filter(_) => 1,
            StreamSpec::Pipeline(stages) => stages.iter().map(StreamSpec::leaf_count).sum(),
            StreamSpec::SplitJoin { branches, .. } => {
                branches.iter().map(StreamSpec::leaf_count).sum()
            }
            StreamSpec::FeedbackLoop { body, loopback, .. } => {
                body.leaf_count() + loopback.leaf_count()
            }
        }
    }
}

/// Endpoints of a flattened sub-structure: the filter that receives the
/// structure's input and the filter that produces its output.
#[derive(Debug, Clone, Copy)]
struct Ports {
    entry: FilterId,
    exit: FilterId,
}

/// Flattens [`StreamSpec`] hierarchies into [`StreamGraph`]s.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: StreamGraph,
    split_counter: usize,
    join_counter: usize,
    token_bytes: u32,
}

impl GraphBuilder {
    /// Creates a builder for a graph with the given application name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: StreamGraph::new(name),
            split_counter: 0,
            join_counter: 0,
            token_bytes: 4,
        }
    }

    /// Sets the token size (bytes) used for generated splitters and joiners.
    pub fn token_bytes(mut self, bytes: u32) -> Self {
        self.token_bytes = bytes;
        self
    }

    /// Flattens `spec` and returns the resulting graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the specification contains an empty pipeline or
    /// split-join, mismatched round-robin weights, or produces an invalid
    /// graph.
    pub fn build(self, spec: StreamSpec) -> Result<StreamGraph> {
        self.build_traced(spec, None)
    }

    /// [`GraphBuilder::build`] with an optional trace collector: the
    /// flatten-and-validate step runs under a `graph.build` span annotated
    /// with the graph name, and filter / channel counts are recorded as
    /// `graph.filters` / `graph.channels` counters.
    pub fn build_traced(
        mut self,
        spec: StreamSpec,
        trace: Option<&std::sync::Arc<sgmap_trace::Collector>>,
    ) -> Result<StreamGraph> {
        let mut span = sgmap_trace::span(trace, "graph.build");
        span.arg("graph", self.graph.name().to_string());
        self.flatten(&spec)?;
        self.graph.validate()?;
        span.arg("filters", self.graph.filter_count());
        span.arg("channels", self.graph.channel_count());
        sgmap_trace::add(trace, "graph.filters", self.graph.filter_count() as u64);
        sgmap_trace::add(trace, "graph.channels", self.graph.channel_count() as u64);
        Ok(self.graph)
    }

    fn flatten(&mut self, spec: &StreamSpec) -> Result<Ports> {
        match spec {
            StreamSpec::Filter(f) => {
                let id = self.graph.add_filter(f.clone());
                Ok(Ports {
                    entry: id,
                    exit: id,
                })
            }
            StreamSpec::Pipeline(stages) => {
                if stages.is_empty() {
                    return Err(GraphError::EmptyPipeline);
                }
                let mut ports: Option<Ports> = None;
                for stage in stages {
                    let p = self.flatten(stage)?;
                    if let Some(prev) = ports {
                        self.connect(prev.exit, p.entry)?;
                        ports = Some(Ports {
                            entry: prev.entry,
                            exit: p.exit,
                        });
                    } else {
                        ports = Some(p);
                    }
                }
                Ok(ports.expect("non-empty pipeline"))
            }
            StreamSpec::SplitJoin {
                split,
                branches,
                join,
            } => self.flatten_split_join(split, branches, join),
            StreamSpec::FeedbackLoop {
                body,
                loopback,
                delay_tokens,
            } => {
                let body_ports = self.flatten(body)?;
                let loop_ports = self.flatten(loopback)?;
                // Forward: body exit -> loopback entry; backward: loopback
                // exit -> body entry with delay tokens.
                self.connect(body_ports.exit, loop_ports.entry)?;
                let push = self.graph.filter(loop_ports.exit).push;
                let pop = self.graph.filter(body_ports.entry).pop;
                self.graph.add_feedback_channel(
                    loop_ports.exit,
                    body_ports.entry,
                    push,
                    pop.max(1),
                    *delay_tokens,
                )?;
                Ok(Ports {
                    entry: body_ports.entry,
                    exit: body_ports.exit,
                })
            }
        }
    }

    fn flatten_split_join(
        &mut self,
        split: &SplitKind,
        branches: &[StreamSpec],
        join: &JoinKind,
    ) -> Result<Ports> {
        if branches.is_empty() {
            return Err(GraphError::EmptySplitJoin);
        }
        let n = branches.len();
        // Splitter rates.
        let (split_pop, split_push, split_out_rates) = match split {
            SplitKind::Duplicate => (1u32, n as u32, vec![1u32; n]),
            SplitKind::RoundRobin(weights) => {
                if weights.len() != n {
                    return Err(GraphError::WeightMismatch {
                        branches: n,
                        weights: weights.len(),
                    });
                }
                let total: u32 = weights.iter().sum();
                (total, total, weights.clone())
            }
        };
        let (join_pop, join_in_rates) = match join {
            JoinKind::RoundRobin(weights) => {
                if weights.len() != n {
                    return Err(GraphError::WeightMismatch {
                        branches: n,
                        weights: weights.len(),
                    });
                }
                let total: u32 = weights.iter().sum();
                (total, weights.clone())
            }
        };

        self.split_counter += 1;
        let split_name = format!("split_{}", self.split_counter);
        let splitter = self.graph.add_filter(
            Filter::new(
                split_name,
                split_pop,
                split_push,
                REORDER_WORK_PER_TOKEN * f64::from(split_push),
            )
            .with_kind(FilterKind::Splitter(split.clone()))
            .with_token_bytes(self.token_bytes),
        );

        self.join_counter += 1;
        let join_name = format!("join_{}", self.join_counter);
        let joiner = self.graph.add_filter(
            Filter::new(
                join_name,
                join_pop,
                join_pop,
                REORDER_WORK_PER_TOKEN * f64::from(join_pop),
            )
            .with_kind(FilterKind::Joiner(join.clone()))
            .with_token_bytes(self.token_bytes),
        );

        for (i, branch) in branches.iter().enumerate() {
            let ports = self.flatten(branch)?;
            let entry_pop = self.graph.filter(ports.entry).pop.max(1);
            self.graph
                .add_channel(splitter, ports.entry, split_out_rates[i], entry_pop)?;
            let exit_push = self.graph.filter(ports.exit).push.max(1);
            self.graph
                .add_channel(ports.exit, joiner, exit_push, join_in_rates[i])?;
        }

        Ok(Ports {
            entry: splitter,
            exit: joiner,
        })
    }

    /// Connects two already-flattened structures with a channel whose rates
    /// follow from the endpoint filters' declared total rates.
    fn connect(&mut self, from: FilterId, to: FilterId) -> Result<()> {
        let push = self.graph.filter(from).push.max(1);
        let pop = self.graph.filter(to).pop.max(1);
        self.graph.add_channel(from, to, push, pop)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pipeline_flattens_to_a_chain() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::filter("mid", 1, 1, 2.0),
            StreamSpec::filter("sink", 1, 0, 1.0),
        ]);
        let g = GraphBuilder::new("p").build(spec).unwrap();
        assert_eq!(g.filter_count(), 3);
        assert_eq!(g.channel_count(), 2);
        let reps = g.repetition_vector().unwrap();
        assert_eq!(reps.as_slice(), &[1, 1, 1]);
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        assert_eq!(
            GraphBuilder::new("e")
                .build(StreamSpec::pipeline(vec![]))
                .unwrap_err(),
            GraphError::EmptyPipeline
        );
    }

    #[test]
    fn duplicate_split_join_has_consistent_rates() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::split_join(
                SplitKind::Duplicate,
                vec![
                    StreamSpec::filter("b0", 1, 1, 4.0),
                    StreamSpec::filter("b1", 1, 1, 4.0),
                    StreamSpec::filter("b2", 1, 1, 4.0),
                ],
                JoinKind::round_robin_uniform(3),
            ),
            StreamSpec::filter("sink", 3, 0, 1.0),
        ]);
        let g = GraphBuilder::new("sj").build(spec).unwrap();
        // src, splitter, 3 branches, joiner, sink.
        assert_eq!(g.filter_count(), 7);
        let reps = g.repetition_vector().unwrap();
        // Every branch fires once per splitter firing; sink consumes 3.
        let split_id = g.filter_by_name("split_1").unwrap();
        let sink_id = g.filter_by_name("sink").unwrap();
        assert_eq!(reps[split_id.index()], 1);
        assert_eq!(reps[sink_id.index()], 1);
        g.validate().unwrap();
    }

    #[test]
    fn round_robin_split_join_with_weights() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 3, 1.0),
            StreamSpec::split_join(
                SplitKind::RoundRobin(vec![2, 1]),
                vec![
                    StreamSpec::filter("heavy", 2, 2, 8.0),
                    StreamSpec::filter("light", 1, 1, 2.0),
                ],
                JoinKind::RoundRobin(vec![2, 1]),
            ),
            StreamSpec::filter("sink", 3, 0, 1.0),
        ]);
        let g = GraphBuilder::new("rr").build(spec).unwrap();
        let reps = g.repetition_vector().unwrap();
        assert!(reps.iter().all(|&r| r >= 1));
        g.validate().unwrap();
    }

    #[test]
    fn weight_mismatch_is_rejected() {
        let spec = StreamSpec::split_join(
            SplitKind::RoundRobin(vec![1, 1, 1]),
            vec![
                StreamSpec::filter("a", 1, 1, 1.0),
                StreamSpec::filter("b", 1, 1, 1.0),
            ],
            JoinKind::round_robin_uniform(2),
        );
        assert!(matches!(
            GraphBuilder::new("w").build(spec),
            Err(GraphError::WeightMismatch { .. })
        ));
    }

    #[test]
    fn feedback_loop_produces_a_feedback_channel() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::feedback_loop(
                StreamSpec::filter("body", 1, 1, 4.0),
                StreamSpec::filter("back", 1, 1, 1.0),
                1,
            ),
            StreamSpec::filter("sink", 1, 0, 1.0),
        ]);
        let g = GraphBuilder::new("fb").build(spec).unwrap();
        let feedback_count = g.channels().filter(|(_, c)| c.feedback).count();
        assert_eq!(feedback_count, 1);
        assert!(g.topological_order().is_ok());
    }

    #[test]
    fn leaf_count_counts_only_declared_filters() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::split_join(
                SplitKind::Duplicate,
                vec![
                    StreamSpec::filter("a", 1, 1, 1.0),
                    StreamSpec::filter("b", 1, 1, 1.0),
                ],
                JoinKind::round_robin_uniform(2),
            ),
        ]);
        assert_eq!(spec.leaf_count(), 3);
    }
}
