//! The flat stream graph: filters connected by channels.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::algo;
use crate::error::GraphError;
use crate::filter::{Filter, FilterId};
use crate::rates::{self, RepetitionVector};
use crate::Result;

/// Identifier of a channel (edge) within a [`StreamGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Returns the zero-based index of this channel inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a channel id from a raw index (test helper).
    pub fn from_index(index: usize) -> Self {
        ChannelId(index as u32)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A FIFO channel between two filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Producing filter.
    pub src: FilterId,
    /// Consuming filter.
    pub dst: FilterId,
    /// Tokens pushed onto this channel per firing of `src`.
    pub push: u32,
    /// Tokens popped from this channel per firing of `dst`.
    pub pop: u32,
    /// Tokens present on the channel before the first firing (used by
    /// feedback loops to break the cyclic dependency).
    pub initial_tokens: u32,
    /// `true` if this is the back edge of a feedback loop; such channels are
    /// excluded from the acyclicity check and from topological ordering.
    pub feedback: bool,
}

/// A flat stream graph: a directed graph whose nodes are [`Filter`]s and
/// whose edges are FIFO [`Channel`]s.
///
/// The graph must be acyclic once feedback channels are removed; this is the
/// form produced by flattening StreamIt programs and the form consumed by
/// every later stage of the mapping flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamGraph {
    name: String,
    filters: Vec<Filter>,
    channels: Vec<Channel>,
    out_edges: Vec<Vec<ChannelId>>,
    in_edges: Vec<Vec<ChannelId>>,
}

impl StreamGraph {
    /// Creates an empty stream graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        StreamGraph {
            name: name.into(),
            filters: Vec::new(),
            channels: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Returns the name of the graph (usually the application name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a filter and returns its id.
    pub fn add_filter(&mut self, filter: Filter) -> FilterId {
        let id = FilterId(self.filters.len() as u32);
        self.filters.push(filter);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a forward channel from `src` to `dst`.
    ///
    /// `push` is the number of tokens `src` puts on this channel per firing
    /// and `pop` the number `dst` removes per firing.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or if the channel
    /// would be a self-loop.
    pub fn add_channel(
        &mut self,
        src: FilterId,
        dst: FilterId,
        push: u32,
        pop: u32,
    ) -> Result<ChannelId> {
        self.add_channel_inner(src, dst, push, pop, 0, false)
    }

    /// Adds a feedback (back-edge) channel carrying `initial_tokens` delay
    /// tokens. Feedback channels are ignored by the acyclicity check.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or if the channel
    /// would be a self-loop.
    pub fn add_feedback_channel(
        &mut self,
        src: FilterId,
        dst: FilterId,
        push: u32,
        pop: u32,
        initial_tokens: u32,
    ) -> Result<ChannelId> {
        self.add_channel_inner(src, dst, push, pop, initial_tokens, true)
    }

    fn add_channel_inner(
        &mut self,
        src: FilterId,
        dst: FilterId,
        push: u32,
        pop: u32,
        initial_tokens: u32,
        feedback: bool,
    ) -> Result<ChannelId> {
        self.check_filter(src)?;
        self.check_filter(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            src,
            dst,
            push,
            pop,
            initial_tokens,
            feedback,
        });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    fn check_filter(&self, id: FilterId) -> Result<()> {
        if id.index() < self.filters.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownFilter(id))
        }
    }

    /// Number of filters in the graph.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of channels in the graph.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Returns the filter with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn filter(&self, id: FilterId) -> &Filter {
        &self.filters[id.index()]
    }

    /// Returns a mutable reference to the filter with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn filter_mut(&mut self, id: FilterId) -> &mut Filter {
        &mut self.filters[id.index()]
    }

    /// Returns the channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Iterates over `(FilterId, &Filter)` pairs in id order.
    pub fn filters(&self) -> impl Iterator<Item = (FilterId, &Filter)> + '_ {
        self.filters
            .iter()
            .enumerate()
            .map(|(i, f)| (FilterId(i as u32), f))
    }

    /// Iterates over all filter ids in id order.
    pub fn filter_ids(&self) -> impl Iterator<Item = FilterId> + '_ {
        (0..self.filters.len()).map(|i| FilterId(i as u32))
    }

    /// Iterates over `(ChannelId, &Channel)` pairs in id order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i as u32), c))
    }

    /// Channels leaving `id`.
    pub fn out_channels(&self, id: FilterId) -> &[ChannelId] {
        &self.out_edges[id.index()]
    }

    /// Channels entering `id`.
    pub fn in_channels(&self, id: FilterId) -> &[ChannelId] {
        &self.in_edges[id.index()]
    }

    /// Direct successors of `id` over forward channels (deduplicated order of
    /// appearance).
    pub fn successors(&self, id: FilterId) -> Vec<FilterId> {
        let mut out = Vec::new();
        for &c in &self.out_edges[id.index()] {
            let dst = self.channels[c.index()].dst;
            if !self.channels[c.index()].feedback && !out.contains(&dst) {
                out.push(dst);
            }
        }
        out
    }

    /// Direct predecessors of `id` over forward channels (deduplicated order
    /// of appearance).
    pub fn predecessors(&self, id: FilterId) -> Vec<FilterId> {
        let mut out = Vec::new();
        for &c in &self.in_edges[id.index()] {
            let src = self.channels[c.index()].src;
            if !self.channels[c.index()].feedback && !out.contains(&src) {
                out.push(src);
            }
        }
        out
    }

    /// Neighbours of `id` over forward channels, predecessors then successors.
    pub fn neighbors(&self, id: FilterId) -> Vec<FilterId> {
        let mut out = self.predecessors(id);
        for s in self.successors(id) {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Filters with no incoming forward channel (primary inputs).
    pub fn sources(&self) -> Vec<FilterId> {
        self.filter_ids()
            .filter(|&id| {
                self.in_edges[id.index()]
                    .iter()
                    .all(|&c| self.channels[c.index()].feedback)
            })
            .collect()
    }

    /// Filters with no outgoing forward channel (primary outputs).
    pub fn sinks(&self) -> Vec<FilterId> {
        self.filter_ids()
            .filter(|&id| {
                self.out_edges[id.index()]
                    .iter()
                    .all(|&c| self.channels[c.index()].feedback)
            })
            .collect()
    }

    /// Topological order of the filters over forward channels.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] if the forward channels form a
    /// cycle.
    pub fn topological_order(&self) -> Result<Vec<FilterId>> {
        algo::topological_order(self)
    }

    /// Checks structural invariants: acyclicity of forward channels and weak
    /// connectivity (every filter reachable from some other filter unless the
    /// graph has a single node).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        self.topological_order()?;
        if self.filters.len() > 1 {
            for id in self.filter_ids() {
                if self.in_edges[id.index()].is_empty() && self.out_edges[id.index()].is_empty() {
                    return Err(GraphError::Disconnected(id));
                }
            }
        }
        Ok(())
    }

    /// Solves the SDF balance equations and returns the repetition vector:
    /// the number of firings of each filter per steady-state iteration.
    ///
    /// # Errors
    ///
    /// Returns an error if a channel has a zero rate on one side only or if
    /// the balance equations are inconsistent.
    pub fn repetition_vector(&self) -> Result<RepetitionVector> {
        rates::repetition_vector(self)
    }

    /// Tokens that cross channel `id` during one steady-state iteration.
    pub fn channel_iteration_tokens(&self, id: ChannelId, reps: &RepetitionVector) -> u64 {
        let ch = &self.channels[id.index()];
        reps[ch.src.index()] * u64::from(ch.push)
    }

    /// Bytes that cross channel `id` during one steady-state iteration.
    pub fn channel_iteration_bytes(&self, id: ChannelId, reps: &RepetitionVector) -> u64 {
        let ch = &self.channels[id.index()];
        let token_bytes = u64::from(self.filters[ch.src.index()].token_bytes);
        self.channel_iteration_tokens(id, reps) * token_bytes
    }

    /// Total work (abstract operations) per steady-state iteration.
    pub fn iteration_work(&self, reps: &RepetitionVector) -> f64 {
        self.filters()
            .map(|(id, f)| f.work * reps[id.index()] as f64)
            .sum()
    }

    /// Total bytes entering the graph from the host per steady-state
    /// iteration (tokens produced by source filters).
    pub fn primary_input_bytes(&self, reps: &RepetitionVector) -> u64 {
        self.sources()
            .iter()
            .map(|&id| {
                let f = &self.filters[id.index()];
                reps[id.index()] * u64::from(f.push) * u64::from(f.token_bytes)
            })
            .sum()
    }

    /// Total bytes leaving the graph to the host per steady-state iteration
    /// (tokens consumed by sink filters).
    pub fn primary_output_bytes(&self, reps: &RepetitionVector) -> u64 {
        self.sinks()
            .iter()
            .map(|&id| {
                let f = &self.filters[id.index()];
                reps[id.index()] * u64::from(f.pop) * u64::from(f.token_bytes)
            })
            .sum()
    }

    /// Finds the first filter whose name equals `name`.
    pub fn filter_by_name(&self, name: &str) -> Option<FilterId> {
        self.filters()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> StreamGraph {
        let mut g = StreamGraph::new("chain");
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_filter(Filter::new(
                    format!("f{i}"),
                    if i == 0 { 0 } else { 1 },
                    if i + 1 == n { 0 } else { 1 },
                    1.0,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_channel(w[0], w[1], 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn add_and_query_filters_and_channels() {
        let g = chain(4);
        assert_eq!(g.filter_count(), 4);
        assert_eq!(g.channel_count(), 3);
        assert_eq!(g.sources(), vec![FilterId(0)]);
        assert_eq!(g.sinks(), vec![FilterId(3)]);
        assert_eq!(g.successors(FilterId(1)), vec![FilterId(2)]);
        assert_eq!(g.predecessors(FilterId(1)), vec![FilterId(0)]);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 1, 1, 1.0));
        assert_eq!(g.add_channel(a, a, 1, 1), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut g = StreamGraph::new("t");
        let a = g.add_filter(Filter::new("a", 0, 1, 1.0));
        let bogus = FilterId::from_index(42);
        assert_eq!(
            g.add_channel(a, bogus, 1, 1),
            Err(GraphError::UnknownFilter(bogus))
        );
    }

    #[test]
    fn cycle_detection_ignores_feedback_edges() {
        let mut g = StreamGraph::new("loop");
        let a = g.add_filter(Filter::new("a", 1, 1, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 1.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_feedback_channel(b, a, 1, 1, 1).unwrap();
        assert!(g.topological_order().is_ok());

        let mut bad = StreamGraph::new("bad");
        let a = bad.add_filter(Filter::new("a", 1, 1, 1.0));
        let b = bad.add_filter(Filter::new("b", 1, 1, 1.0));
        bad.add_channel(a, b, 1, 1).unwrap();
        bad.add_channel(b, a, 1, 1).unwrap();
        assert_eq!(bad.topological_order(), Err(GraphError::CyclicGraph));
    }

    #[test]
    fn disconnected_filters_fail_validation() {
        let mut g = chain(3);
        g.add_filter(Filter::new("orphan", 1, 1, 1.0));
        assert!(matches!(g.validate(), Err(GraphError::Disconnected(_))));
    }

    #[test]
    fn iteration_quantities() {
        let mut g = StreamGraph::new("updown");
        let src = g.add_filter(Filter::new("src", 0, 2, 1.0));
        let up = g.add_filter(Filter::new("up", 1, 3, 2.0));
        let sink = g.add_filter(Filter::new("sink", 3, 0, 1.0));
        let c0 = g.add_channel(src, up, 2, 1).unwrap();
        let c1 = g.add_channel(up, sink, 3, 3).unwrap();
        let reps = g.repetition_vector().unwrap();
        // src fires 1, up fires 2, sink fires 2.
        assert_eq!(reps.as_slice(), &[1, 2, 2]);
        assert_eq!(g.channel_iteration_tokens(c0, &reps), 2);
        assert_eq!(g.channel_iteration_tokens(c1, &reps), 6);
        assert_eq!(g.iteration_work(&reps), 1.0 + 2.0 * 2.0 + 2.0 * 1.0);
        assert_eq!(g.primary_input_bytes(&reps), 2 * 4);
        assert_eq!(g.primary_output_bytes(&reps), 6 * 4);
    }

    #[test]
    fn filter_by_name_finds_first_match() {
        let g = chain(3);
        assert_eq!(g.filter_by_name("f1"), Some(FilterId(1)));
        assert_eq!(g.filter_by_name("nope"), None);
    }
}
