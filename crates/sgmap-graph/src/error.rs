//! Error type for stream graph construction and analysis.

use std::fmt;

use crate::filter::FilterId;

/// Errors produced while building or analysing a stream graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A filter id referenced a node that does not exist.
    UnknownFilter(FilterId),
    /// A channel connects a filter to itself.
    SelfLoop(FilterId),
    /// The graph (ignoring feedback channels) contains a cycle.
    CyclicGraph,
    /// The SDF balance equations have no consistent solution.
    InconsistentRates {
        /// Source filter of the offending channel.
        src: FilterId,
        /// Destination filter of the offending channel.
        dst: FilterId,
    },
    /// The graph contains a filter that is not connected to the rest.
    Disconnected(FilterId),
    /// A split-join was declared with no branches.
    EmptySplitJoin,
    /// A pipeline was declared with no stages.
    EmptyPipeline,
    /// A round-robin weight vector does not match the number of branches.
    WeightMismatch {
        /// Number of branches declared.
        branches: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// Rates on a channel are zero where a non-zero rate is required.
    ZeroRate {
        /// Source filter of the offending channel.
        src: FilterId,
        /// Destination filter of the offending channel.
        dst: FilterId,
    },
    /// An interpreter behaviour produced the wrong number of output tokens.
    BehaviourRateViolation {
        /// The filter whose behaviour misbehaved.
        filter: FilterId,
        /// Expected number of tokens.
        expected: usize,
        /// Number of tokens actually produced or consumed.
        actual: usize,
    },
    /// The requested node set is empty.
    EmptyNodeSet,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownFilter(id) => write!(f, "unknown filter id {}", id.index()),
            GraphError::SelfLoop(id) => {
                write!(f, "channel connects filter {} to itself", id.index())
            }
            GraphError::CyclicGraph => write!(f, "stream graph contains a non-feedback cycle"),
            GraphError::InconsistentRates { src, dst } => write!(
                f,
                "balance equations are inconsistent on channel {} -> {}",
                src.index(),
                dst.index()
            ),
            GraphError::Disconnected(id) => {
                write!(f, "filter {} is not connected to the graph", id.index())
            }
            GraphError::EmptySplitJoin => write!(f, "split-join declared with no branches"),
            GraphError::EmptyPipeline => write!(f, "pipeline declared with no stages"),
            GraphError::WeightMismatch { branches, weights } => write!(
                f,
                "round-robin weights ({weights}) do not match branch count ({branches})"
            ),
            GraphError::ZeroRate { src, dst } => write!(
                f,
                "channel {} -> {} has a zero production or consumption rate",
                src.index(),
                dst.index()
            ),
            GraphError::BehaviourRateViolation {
                filter,
                expected,
                actual,
            } => write!(
                f,
                "behaviour of filter {} produced {actual} tokens, expected {expected}",
                filter.index()
            ),
            GraphError::EmptyNodeSet => write!(f, "node set is empty"),
        }
    }
}

impl std::error::Error for GraphError {}
