//! A functional interpreter for stream graphs.
//!
//! The mapping flow itself only needs the *structure* and *rates* of a stream
//! graph, but the benchmark applications in `sgmap-apps` also carry real
//! filter semantics so that the generated graphs can be checked against
//! reference implementations (an FFT graph must compute a Fourier transform,
//! a bitonic-sort graph must sort, and so on). This module provides that
//! execution engine.
//!
//! Each filter firing consumes exactly `pop` tokens from every input channel
//! and must produce exactly `push` tokens on every output channel (per-channel
//! rates, as recorded on the [`Channel`](crate::Channel)s). Splitters,
//! joiners, sources and sinks have built-in behaviours derived from their
//! [`FilterKind`](crate::FilterKind); compute filters use behaviours
//! registered by the application, falling back to a pass-through behaviour.

use std::collections::{HashMap, VecDeque};

use crate::error::GraphError;
use crate::filter::{FilterId, FilterKind, JoinKind, SplitKind};
use crate::graph::StreamGraph;
use crate::Result;

/// A filter behaviour: consumes the popped tokens of every input channel and
/// produces the pushed tokens of every output channel.
///
/// `inputs[i]` holds the tokens popped from the i-th input channel (in
/// channel-creation order); the behaviour must append exactly the per-channel
/// push count of tokens to `outputs[j]` for every output channel `j`.
pub trait FilterBehavior {
    /// Fires the filter once.
    fn fire(&mut self, inputs: &[Vec<f64>], outputs: &mut [Vec<f64>]);
}

/// Wraps a closure as a [`FilterBehavior`].
pub struct FnBehavior<F>(pub F);

impl<F> FilterBehavior for FnBehavior<F>
where
    F: FnMut(&[Vec<f64>], &mut [Vec<f64>]),
{
    fn fire(&mut self, inputs: &[Vec<f64>], outputs: &mut [Vec<f64>]) {
        (self.0)(inputs, outputs)
    }
}

/// Creates a behaviour from a closure.
pub fn behavior<F>(f: F) -> Box<dyn FilterBehavior>
where
    F: FnMut(&[Vec<f64>], &mut [Vec<f64>]) + 'static,
{
    Box::new(FnBehavior(f))
}

/// Executes a stream graph on concrete data.
pub struct Interpreter<'g> {
    graph: &'g StreamGraph,
    behaviors: HashMap<FilterId, Box<dyn FilterBehavior>>,
    /// Tokens fed to each source filter (consumed `push` at a time per
    /// firing); when exhausted the source produces an increasing ramp.
    source_data: HashMap<FilterId, VecDeque<f64>>,
    sink_data: HashMap<FilterId, Vec<f64>>,
    queues: Vec<VecDeque<f64>>,
    ramp_counter: f64,
}

impl<'g> Interpreter<'g> {
    /// Creates an interpreter for `graph` with no registered behaviours.
    pub fn new(graph: &'g StreamGraph) -> Self {
        let queues = (0..graph.channel_count())
            .map(|i| {
                let ch = graph.channel(crate::graph::ChannelId::from_index(i));
                let mut q = VecDeque::new();
                for _ in 0..ch.initial_tokens {
                    q.push_back(0.0);
                }
                q
            })
            .collect();
        Interpreter {
            graph,
            behaviors: HashMap::new(),
            source_data: HashMap::new(),
            sink_data: HashMap::new(),
            queues,
            ramp_counter: 0.0,
        }
    }

    /// Registers a behaviour for a compute filter.
    pub fn set_behavior(&mut self, id: FilterId, b: Box<dyn FilterBehavior>) -> &mut Self {
        self.behaviors.insert(id, b);
        self
    }

    /// Registers the same behaviour constructor for every filter whose name
    /// starts with `prefix`.
    pub fn set_behavior_by_prefix<F>(&mut self, prefix: &str, mut make: F) -> &mut Self
    where
        F: FnMut(FilterId) -> Box<dyn FilterBehavior>,
    {
        let ids: Vec<FilterId> = self
            .graph
            .filters()
            .filter(|(_, f)| f.name.starts_with(prefix))
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let b = make(id);
            self.behaviors.insert(id, b);
        }
        self
    }

    /// Supplies the input stream for a source filter. When the supplied data
    /// runs out the source falls back to producing a ramp `0, 1, 2, ...`.
    pub fn set_source_data(&mut self, id: FilterId, data: impl IntoIterator<Item = f64>) {
        self.source_data.insert(id, data.into_iter().collect());
    }

    /// Returns the tokens consumed so far by the given sink filter.
    pub fn sink_output(&self, id: FilterId) -> &[f64] {
        self.sink_data.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Runs `iterations` steady-state iterations of the whole graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is cyclic (over forward channels), if the
    /// balance equations are inconsistent, or if a registered behaviour
    /// produces the wrong number of tokens.
    pub fn run(&mut self, iterations: u64) -> Result<()> {
        let order = self.graph.topological_order()?;
        let reps = self.graph.repetition_vector()?;
        for _ in 0..iterations {
            for &u in &order {
                for _ in 0..reps[u.index()] {
                    self.fire(u)?;
                }
            }
        }
        Ok(())
    }

    fn fire(&mut self, id: FilterId) -> Result<()> {
        let filter = self.graph.filter(id);
        let in_channels: Vec<_> = self.graph.in_channels(id).to_vec();
        let out_channels: Vec<_> = self.graph.out_channels(id).to_vec();

        // Pop inputs per channel.
        let mut inputs: Vec<Vec<f64>> = Vec::with_capacity(in_channels.len());
        for &cid in &in_channels {
            let ch = self.graph.channel(cid);
            let need = ch.pop as usize;
            let q = &mut self.queues[cid.index()];
            if q.len() < need {
                return Err(GraphError::BehaviourRateViolation {
                    filter: id,
                    expected: need,
                    actual: q.len(),
                });
            }
            inputs.push(q.drain(..need).collect());
        }

        let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); out_channels.len()];
        match &filter.kind {
            FilterKind::Source => {
                let total: usize = out_channels
                    .iter()
                    .map(|&c| self.graph.channel(c).push as usize)
                    .sum();
                // Fill from the supplied data queue first, then from the ramp.
                let mut produced = Vec::with_capacity(total);
                for _ in 0..total {
                    let v = match self.source_data.get_mut(&id) {
                        Some(q) if !q.is_empty() => q.pop_front().unwrap_or(0.0),
                        _ => {
                            let v = self.ramp_counter;
                            self.ramp_counter += 1.0;
                            v
                        }
                    };
                    produced.push(v);
                }
                let mut offset = 0;
                for (j, &c) in out_channels.iter().enumerate() {
                    let n = self.graph.channel(c).push as usize;
                    outputs[j].extend_from_slice(&produced[offset..offset + n]);
                    offset += n;
                }
            }
            FilterKind::Sink => {
                let collected: Vec<f64> = inputs.iter().flatten().copied().collect();
                self.sink_data.entry(id).or_default().extend(collected);
            }
            FilterKind::Splitter(kind) => {
                let flat: Vec<f64> = inputs.iter().flatten().copied().collect();
                match kind {
                    SplitKind::Duplicate => {
                        for out in outputs.iter_mut() {
                            out.extend_from_slice(&flat);
                        }
                    }
                    SplitKind::RoundRobin(weights) => {
                        let mut offset = 0;
                        for (j, &w) in weights.iter().enumerate() {
                            let w = w as usize;
                            outputs[j].extend_from_slice(&flat[offset..offset + w]);
                            offset += w;
                        }
                    }
                }
            }
            FilterKind::Joiner(JoinKind::RoundRobin(weights)) => {
                // Inputs arrive in channel order; interleave them according to
                // the weights to reconstruct the joined stream.
                debug_assert_eq!(weights.len(), inputs.len());
                let mut joined = Vec::new();
                for (input, &w) in inputs.iter().zip(weights.iter()) {
                    debug_assert_eq!(input.len(), w as usize);
                    joined.extend_from_slice(input);
                }
                if let Some(out) = outputs.first_mut() {
                    out.extend_from_slice(&joined);
                }
            }
            FilterKind::Compute => {
                if let Some(b) = self.behaviors.get_mut(&id) {
                    b.fire(&inputs, &mut outputs);
                } else {
                    // Default pass-through: replicate/truncate the popped
                    // tokens to each output channel's push count.
                    let flat: Vec<f64> = inputs.iter().flatten().copied().collect();
                    for (j, &c) in out_channels.iter().enumerate() {
                        let n = self.graph.channel(c).push as usize;
                        for k in 0..n {
                            let v = if flat.is_empty() {
                                0.0
                            } else {
                                flat[k % flat.len()]
                            };
                            outputs[j].push(v);
                        }
                    }
                }
            }
        }

        // Push outputs, verifying counts.
        for (j, &cid) in out_channels.iter().enumerate() {
            let ch = self.graph.channel(cid);
            let expected = ch.push as usize;
            if outputs[j].len() != expected {
                return Err(GraphError::BehaviourRateViolation {
                    filter: id,
                    expected,
                    actual: outputs[j].len(),
                });
            }
            self.queues[cid.index()].extend(outputs[j].iter().copied());
        }
        Ok(())
    }
}

impl std::fmt::Debug for Interpreter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("graph", &self.graph.name())
            .field("behaviors", &self.behaviors.len())
            .field("channels", &self.queues.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, StreamSpec};
    use crate::filter::{JoinKind, SplitKind};

    #[test]
    fn pipeline_with_custom_behaviour_doubles_values() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::filter("double", 1, 1, 1.0),
            StreamSpec::filter("sink", 1, 0, 1.0),
        ]);
        let g = GraphBuilder::new("t").build(spec).unwrap();
        let src = g.filter_by_name("src").unwrap();
        let dbl = g.filter_by_name("double").unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        let mut interp = Interpreter::new(&g);
        interp.set_source_data(src, vec![1.0, 2.0, 3.0, 4.0]);
        interp.set_behavior(
            dbl,
            behavior(|inputs, outputs| {
                outputs[0].push(inputs[0][0] * 2.0);
            }),
        );
        interp.run(4).unwrap();
        assert_eq!(interp.sink_output(sink), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn duplicate_split_and_round_robin_join_interleave() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::split_join(
                SplitKind::Duplicate,
                vec![
                    StreamSpec::filter("ida", 1, 1, 1.0),
                    StreamSpec::filter("neg", 1, 1, 1.0),
                ],
                JoinKind::round_robin_uniform(2),
            ),
            StreamSpec::filter("sink", 2, 0, 1.0),
        ]);
        let g = GraphBuilder::new("t").build(spec).unwrap();
        let src = g.filter_by_name("src").unwrap();
        let neg = g.filter_by_name("neg").unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        let mut interp = Interpreter::new(&g);
        interp.set_source_data(src, vec![1.0, 2.0]);
        interp.set_behavior(
            neg,
            behavior(|inputs, outputs| {
                outputs[0].push(-inputs[0][0]);
            }),
        );
        interp.run(2).unwrap();
        assert_eq!(interp.sink_output(sink), &[1.0, -1.0, 2.0, -2.0]);
    }

    #[test]
    fn round_robin_split_distributes_in_order() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 2, 1.0),
            StreamSpec::split_join(
                SplitKind::RoundRobin(vec![1, 1]),
                vec![
                    StreamSpec::filter("a", 1, 1, 1.0),
                    StreamSpec::filter("b", 1, 1, 1.0),
                ],
                JoinKind::RoundRobin(vec![1, 1]),
            ),
            StreamSpec::filter("sink", 2, 0, 1.0),
        ]);
        let g = GraphBuilder::new("t").build(spec).unwrap();
        let src = g.filter_by_name("src").unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        let mut interp = Interpreter::new(&g);
        interp.set_source_data(src, vec![10.0, 20.0, 30.0, 40.0]);
        interp.run(2).unwrap();
        // Round-robin split then round-robin join is the identity.
        assert_eq!(interp.sink_output(sink), &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn default_source_produces_a_ramp() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::filter("sink", 1, 0, 1.0),
        ]);
        let g = GraphBuilder::new("t").build(spec).unwrap();
        let sink = g.filter_by_name("sink").unwrap();
        let mut interp = Interpreter::new(&g);
        interp.run(3).unwrap();
        assert_eq!(interp.sink_output(sink), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn bad_behaviour_is_reported() {
        let spec = StreamSpec::pipeline(vec![
            StreamSpec::filter("src", 0, 1, 1.0),
            StreamSpec::filter("broken", 1, 2, 1.0),
            StreamSpec::filter("sink", 2, 0, 1.0),
        ]);
        let g = GraphBuilder::new("t").build(spec).unwrap();
        let broken = g.filter_by_name("broken").unwrap();
        let mut interp = Interpreter::new(&g);
        interp.set_behavior(
            broken,
            behavior(|_inputs, outputs| {
                outputs[0].push(1.0); // should push 2 tokens
            }),
        );
        assert!(matches!(
            interp.run(1),
            Err(GraphError::BehaviourRateViolation { .. })
        ));
    }
}
