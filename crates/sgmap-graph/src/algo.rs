//! Graph algorithms shared by the rest of the crate: topological ordering,
//! reachability and connectivity over forward (non-feedback) channels.

use crate::error::GraphError;
use crate::filter::FilterId;
use crate::graph::StreamGraph;
use crate::Result;

/// Kahn's algorithm over forward channels.
pub(crate) fn topological_order(graph: &StreamGraph) -> Result<Vec<FilterId>> {
    let n = graph.filter_count();
    let mut indegree = vec![0usize; n];
    for (_, ch) in graph.channels() {
        if !ch.feedback {
            indegree[ch.dst.index()] += 1;
        }
    }
    let mut queue: Vec<FilterId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(FilterId::from_index)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &c in graph.out_channels(u) {
            let ch = graph.channel(c);
            if ch.feedback {
                continue;
            }
            let d = ch.dst.index();
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(ch.dst);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::CyclicGraph)
    }
}

/// Returns the set of nodes reachable from `start` over forward channels,
/// restricted to nodes for which `allowed` returns `true` (the start node is
/// always included).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn reachable_within(
    graph: &StreamGraph,
    start: FilterId,
    allowed: impl Fn(FilterId) -> bool,
) -> Vec<bool> {
    let n = graph.filter_count();
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(u) = stack.pop() {
        for &c in graph.out_channels(u) {
            let ch = graph.channel(c);
            if ch.feedback {
                continue;
            }
            let v = ch.dst;
            if !seen[v.index()] && allowed(v) {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Returns `true` if the nodes marked in `members` form a weakly connected
/// sub-graph (treating channels as undirected, ignoring feedback channels).
pub(crate) fn is_weakly_connected(graph: &StreamGraph, members: &[bool]) -> bool {
    let count = members.iter().filter(|&&m| m).count();
    if count == 0 {
        return false;
    }
    let start = members.iter().position(|&m| m).expect("non-empty");
    let mut seen = vec![false; graph.filter_count()];
    let mut stack = vec![FilterId::from_index(start)];
    seen[start] = true;
    let mut visited = 0usize;
    while let Some(u) = stack.pop() {
        visited += 1;
        let mut push_neighbor = |v: FilterId| {
            if members[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        };
        for &c in graph.out_channels(u) {
            let ch = graph.channel(c);
            if !ch.feedback {
                push_neighbor(ch.dst);
            }
        }
        for &c in graph.in_channels(u) {
            let ch = graph.channel(c);
            if !ch.feedback {
                push_neighbor(ch.src);
            }
        }
    }
    visited == count
}

/// Computes, for every node, whether it can reach any node of `targets`
/// (marked as `true`) over forward channels. Used by the convexity test.
pub(crate) fn can_reach_targets(graph: &StreamGraph, targets: &[bool]) -> Vec<bool> {
    // Process nodes in reverse topological order so that a single pass
    // suffices; the graph is guaranteed acyclic over forward channels.
    let order = topological_order(graph).unwrap_or_else(|_| graph.filter_ids().collect());
    let mut reach = targets.to_vec();
    for &u in order.iter().rev() {
        if reach[u.index()] {
            continue;
        }
        for &c in graph.out_channels(u) {
            let ch = graph.channel(c);
            if !ch.feedback && reach[ch.dst.index()] {
                reach[u.index()] = true;
                break;
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    fn diamond() -> (StreamGraph, Vec<FilterId>) {
        // a -> b -> d, a -> c -> d
        let mut g = StreamGraph::new("diamond");
        let a = g.add_filter(Filter::new("a", 0, 2, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 1.0));
        let c = g.add_filter(Filter::new("c", 1, 1, 1.0));
        let d = g.add_filter(Filter::new("d", 2, 0, 1.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(a, c, 1, 1).unwrap();
        g.add_channel(b, d, 1, 1).unwrap();
        g.add_channel(c, d, 1, 1).unwrap();
        (g, vec![a, b, c, d])
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, ids) = diamond();
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> = ids
            .iter()
            .map(|id| order.iter().position(|x| x == id).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn reachability_is_restricted_by_predicate() {
        let (g, ids) = diamond();
        let reach = reachable_within(&g, ids[0], |v| v != ids[1]);
        assert!(reach[ids[2].index()]);
        assert!(reach[ids[3].index()]);
        assert!(!reach[ids[1].index()]);
    }

    #[test]
    fn weak_connectivity() {
        let (g, ids) = diamond();
        let mut members = vec![false; g.filter_count()];
        members[ids[1].index()] = true;
        members[ids[2].index()] = true;
        // b and c are not connected to each other without a or d.
        assert!(!is_weakly_connected(&g, &members));
        members[ids[0].index()] = true;
        assert!(is_weakly_connected(&g, &members));
    }

    #[test]
    fn reach_targets_marks_ancestors() {
        let (g, ids) = diamond();
        let mut targets = vec![false; g.filter_count()];
        targets[ids[3].index()] = true;
        let reach = can_reach_targets(&g, &targets);
        assert!(reach.iter().all(|&r| r), "every node reaches the sink");
        let mut targets = vec![false; g.filter_count()];
        targets[ids[1].index()] = true;
        let reach = can_reach_targets(&g, &targets);
        assert!(reach[ids[0].index()]);
        assert!(!reach[ids[2].index()]);
        assert!(!reach[ids[3].index()]);
    }
}
