//! Span overhead micro-benchmarks backing the numbers cited in the README:
//! a disabled-collector span is a no-op (a few ns — one branch, no clock
//! read, no allocation) and an enabled span costs on the order of 150 ns
//! (two clock reads plus one mutex-guarded Vec push); enabled counters and
//! histograms sit near 20 ns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sgmap_trace::Collector;
use std::sync::Arc;

fn bench_overhead(c: &mut Criterion) {
    let enabled = Arc::new(Collector::new());

    c.bench_function("span_disabled", |b| {
        let trace: Option<&Arc<Collector>> = None;
        b.iter(|| {
            let guard = sgmap_trace::span(black_box(trace), "bench.span");
            black_box(&guard);
        });
    });

    c.bench_function("span_enabled", |b| {
        // Recycle the collector every 100k spans so the measurement reflects
        // the steady-state push, not the memory growth of a collector fed
        // tens of millions of events it would never see in real use.
        let mut collector = Arc::new(Collector::new());
        let mut spans = 0u32;
        b.iter(|| {
            spans += 1;
            if spans == 100_000 {
                collector = Arc::new(Collector::new());
                spans = 0;
            }
            let guard = sgmap_trace::span(black_box(Some(&collector)), "bench.span");
            black_box(&guard);
        });
    });

    c.bench_function("counter_disabled", |b| {
        let trace: Option<&Arc<Collector>> = None;
        b.iter(|| sgmap_trace::add(black_box(trace), "bench.counter", 1));
    });

    c.bench_function("counter_enabled", |b| {
        let trace = Some(&enabled);
        b.iter(|| sgmap_trace::add(black_box(trace), "bench.counter", 1));
    });

    c.bench_function("histogram_enabled", |b| {
        let trace = Some(&enabled);
        b.iter(|| sgmap_trace::record(black_box(trace), "bench.hist", black_box(17)));
    });
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
