use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::histogram::Histogram;

/// A structured argument value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    Str(String),
    Uint(u64),
    Float(f64),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Uint(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Uint(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

/// A structured warning recorded through [`Collector::warning`].
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    pub code: &'static str,
    pub message: String,
    pub ts_us: f64,
}

#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    /// Completed span with a duration.
    Span { dur_us: f64 },
    /// Zero-duration instant event.
    Instant,
}

#[derive(Debug, Clone)]
pub(crate) struct Event {
    pub name: &'static str,
    pub lane: u64,
    pub ts_us: f64,
    pub kind: EventKind,
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Default)]
pub(crate) struct State {
    pub events: Vec<Event>,
    pub counters: BTreeMap<&'static str, u64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
    pub warnings: Vec<Warning>,
}

/// Aggregate statistics for all spans sharing a name, computed on demand by
/// [`Collector::span_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanTotals {
    pub count: u64,
    pub total_us: f64,
    pub max_us: f64,
}

/// Thread-safe trace collector: spans, counters, histograms, warnings.
///
/// A `Collector` is write-only during a compile — nothing in the pipeline
/// reads it back — so attaching one cannot perturb results. All recording
/// methods take `&self`; share it across threads via `Arc<Collector>`.
pub struct Collector {
    origin: Instant,
    state: Mutex<State>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("Collector")
            .field("events", &s.events.len())
            .field("counters", &s.counters.len())
            .field("histograms", &s.histograms.len())
            .field("warnings", &s.warnings.len())
            .finish()
    }
}

/// Per-thread lane id used as the Chrome-trace `tid`. Lanes are handed out in
/// first-touch order starting at 1, so single-threaded runs always trace on
/// lane 1.
fn lane() -> u64 {
    static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

impl Collector {
    pub fn new() -> Self {
        Collector {
            origin: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    /// Microseconds since the collector was created.
    pub(crate) fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    /// Open a span; it is recorded when the returned guard drops.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_with(name, Vec::new())
    }

    /// Open a span carrying structured arguments.
    pub fn span_with(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> Span<'_> {
        Span {
            collector: Some(self),
            name,
            start_us: self.now_us(),
            args,
        }
    }

    /// Record a zero-duration instant event.
    pub fn instant(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        let ts_us = self.now_us();
        let lane = lane();
        let mut s = self.state.lock().unwrap();
        s.events.push(Event {
            name,
            lane,
            ts_us,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Record a structured warning (also visible in both export formats).
    pub fn warning(&self, code: &'static str, message: impl Into<String>) {
        let ts_us = self.now_us();
        let mut s = self.state.lock().unwrap();
        s.warnings.push(Warning {
            code,
            message: message.into(),
            ts_us,
        });
    }

    /// Add `delta` to the monotonic counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut s = self.state.lock().unwrap();
        *s.counters.entry(name).or_insert(0) += delta;
    }

    /// Record `value` into the histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        let mut s = self.state.lock().unwrap();
        s.histograms.entry(name).or_default().record(value);
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        let s = self.state.lock().unwrap();
        s.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.state.lock().unwrap().counters.clone()
    }

    /// Snapshot of histogram `name`, if any values were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let s = self.state.lock().unwrap();
        s.histograms.get(name).cloned()
    }

    /// Snapshot of all recorded warnings.
    pub fn warnings(&self) -> Vec<Warning> {
        self.state.lock().unwrap().warnings.clone()
    }

    /// Number of recorded events (spans + instants).
    pub fn event_count(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// Aggregate per-name span statistics (count / total / max duration),
    /// computed from the raw event stream.
    pub fn span_totals(&self) -> BTreeMap<&'static str, SpanTotals> {
        let s = self.state.lock().unwrap();
        let mut totals: BTreeMap<&'static str, SpanTotals> = BTreeMap::new();
        for ev in &s.events {
            if let EventKind::Span { dur_us } = ev.kind {
                let t = totals.entry(ev.name).or_default();
                t.count += 1;
                t.total_us += dur_us;
                t.max_us = t.max_us.max(dur_us);
            }
        }
        totals
    }

    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&State) -> R) -> R {
        f(&self.state.lock().unwrap())
    }

    fn finish_span(&self, name: &'static str, start_us: f64, args: Vec<(&'static str, ArgValue)>) {
        let dur_us = (self.now_us() - start_us).max(0.0);
        let lane = lane();
        let mut s = self.state.lock().unwrap();
        s.events.push(Event {
            name,
            lane,
            ts_us: start_us,
            kind: EventKind::Span { dur_us },
            args,
        });
    }
}

/// RAII span guard. Dropping it records the completed span (if the collector
/// is enabled); a disabled guard is inert and costs a single branch on drop.
#[must_use = "a span is recorded when the guard drops; binding it to `_` ends it immediately"]
pub struct Span<'a> {
    collector: Option<&'a Collector>,
    name: &'static str,
    start_us: f64,
    args: Vec<(&'static str, ArgValue)>,
}

impl<'a> Span<'a> {
    /// An inert guard used when tracing is disabled.
    pub fn disabled(name: &'static str) -> Span<'a> {
        Span {
            collector: None,
            name,
            start_us: 0.0,
            args: Vec::new(),
        }
    }

    /// Attach an argument to the span after it was opened (no-op if disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.collector.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.collector {
            c.finish_span(self.name, self.start_us, std::mem::take(&mut self.args));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let c = Collector::new();
        c.add("x", 2);
        c.add("x", 3);
        c.add("y", 1);
        assert_eq!(c.counter("x"), 5);
        assert_eq!(c.counter("y"), 1);
        assert_eq!(c.counter("missing"), 0);
        assert_eq!(c.counters().len(), 2);
    }

    #[test]
    fn spans_record_on_drop() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            let mut inner = c.span("inner");
            inner.arg("k", 7u64);
        }
        assert_eq!(c.event_count(), 2);
        let totals = c.span_totals();
        assert_eq!(totals["outer"].count, 1);
        assert_eq!(totals["inner"].count, 1);
        // The outer span encloses the inner one.
        assert!(totals["outer"].total_us >= totals["inner"].total_us);
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled("nothing");
        drop(s);
        let trace: Option<&Arc<Collector>> = None;
        let g = crate::span(trace, "also-nothing");
        drop(g);
        crate::add(trace, "c", 1);
        crate::record(trace, "h", 1);
        crate::instant(trace, "i", Vec::new());
    }

    #[test]
    fn helpers_forward_when_enabled() {
        let c = Arc::new(Collector::new());
        let trace = Some(&c);
        {
            let _s = crate::span(trace, "s");
            crate::add(trace, "n", 4);
            crate::record(trace, "h", 9);
            crate::instant(trace, "tick", vec![("v", ArgValue::Uint(1))]);
            crate::warn(trace, "w.code", "something odd".to_string());
        }
        assert_eq!(c.counter("n"), 4);
        assert_eq!(c.histogram("h").unwrap().count(), 1);
        assert_eq!(c.event_count(), 2); // span + instant
        let warnings = c.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].code, "w.code");
        assert_eq!(warnings[0].message, "something odd");
    }

    #[test]
    fn spans_from_multiple_threads_get_distinct_lanes() {
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c2 = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let _s = c2.span("worker");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let lanes = c.with_state(|s| {
            s.events
                .iter()
                .map(|e| e.lane)
                .collect::<std::collections::BTreeSet<_>>()
        });
        assert_eq!(lanes.len(), 2);
    }
}
