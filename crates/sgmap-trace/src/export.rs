//! Pure-Rust JSON exporters: Chrome trace-event format and a canonical
//! aggregate-metrics document. No dependencies; the tiny JSON writer below
//! mirrors the formatting rules of `sgmap-sweep`'s `json` module (floats
//! render via `f64::to_string` with a trailing `.0` added for integral
//! values, non-finite floats become `null`) so downstream parsers see one
//! consistent dialect.

use crate::collector::{ArgValue, Collector, Event, EventKind};

const PID: u64 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let mut s = x.to_string();
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

fn fmt_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::Str(s) => format!("\"{}\"", escape(s)),
        ArgValue::Uint(u) => u.to_string(),
        ArgValue::Float(f) => fmt_f64(*f),
    }
}

fn fmt_args(args: &[(&'static str, ArgValue)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), fmt_arg(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl Collector {
    /// Export the raw event stream as Chrome trace-event JSON (the
    /// `traceEvents` object format). Load the file in `chrome://tracing` or
    /// drop it onto <https://ui.perfetto.dev>. Spans become `ph:"X"` complete
    /// events, instants become `ph:"i"`, warnings become process-scoped
    /// instants with `cat:"warning"`, and per-lane `thread_name` metadata
    /// labels each worker thread.
    pub fn chrome_trace_json(&self) -> String {
        self.with_state(|s| {
            // Sort a copy of the events by start time (drop order is end
            // order, which looks scrambled in viewers that do not re-sort).
            let mut events: Vec<&Event> = s.events.iter().collect();
            events.sort_by(|a, b| a.ts_us.partial_cmp(&b.ts_us).unwrap_or(std::cmp::Ordering::Equal));

            let mut lanes: Vec<u64> = events.iter().map(|e| e.lane).collect();
            lanes.sort_unstable();
            lanes.dedup();

            let mut out: Vec<String> = Vec::with_capacity(events.len() + lanes.len() + 2);
            out.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"args\":{{\"name\":\"sgmap\"}}}}"
            ));
            for lane in &lanes {
                out.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{lane},\"args\":{{\"name\":\"lane-{lane}\"}}}}"
                ));
            }
            for ev in events {
                let name = escape(ev.name);
                let ts = fmt_f64(ev.ts_us);
                let args = fmt_args(&ev.args);
                match ev.kind {
                    EventKind::Span { dur_us } => out.push(format!(
                        "{{\"name\":\"{name}\",\"cat\":\"sgmap\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{ts},\"dur\":{},\"args\":{args}}}",
                        ev.lane,
                        fmt_f64(dur_us)
                    )),
                    EventKind::Instant => out.push(format!(
                        "{{\"name\":\"{name}\",\"cat\":\"sgmap\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"ts\":{ts},\"args\":{args}}}",
                        ev.lane
                    )),
                }
            }
            for w in &s.warnings {
                out.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"warning\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{PID},\"tid\":0,\"ts\":{},\"args\":{{\"message\":\"{}\"}}}}",
                    escape(w.code),
                    fmt_f64(w.ts_us),
                    escape(&w.message)
                ));
            }
            format!(
                "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
                out.join(",\n")
            )
        })
    }

    /// Export aggregate metrics as canonical JSON: counters, histograms and
    /// per-name span totals under sorted keys, plus the warning list. Two
    /// collectors that observed the same workload produce structurally
    /// identical documents (timing values aside), which makes the format
    /// suitable for diffing and machine consumption.
    pub fn metrics_json(&self) -> String {
        let totals = self.span_totals();
        self.with_state(|s| {
            let counters: Vec<String> = s
                .counters
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
                .collect();
            let histograms: Vec<String> = s
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets: Vec<String> =
                        h.buckets().iter().map(|b| b.to_string()).collect();
                    format!(
                        "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                        escape(k),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        buckets.join(",")
                    )
                })
                .collect();
            let spans: Vec<String> = totals
                .iter()
                .map(|(k, t)| {
                    format!(
                        "\"{}\":{{\"count\":{},\"total_us\":{},\"max_us\":{}}}",
                        escape(k),
                        t.count,
                        fmt_f64(t.total_us),
                        fmt_f64(t.max_us)
                    )
                })
                .collect();
            let warnings: Vec<String> = s
                .warnings
                .iter()
                .map(|w| {
                    format!(
                        "{{\"code\":\"{}\",\"message\":\"{}\",\"ts_us\":{}}}",
                        escape(w.code),
                        escape(&w.message),
                        fmt_f64(w.ts_us)
                    )
                })
                .collect();
            format!(
                "{{\"format\":\"sgmap-metrics\",\"version\":1,\"counters\":{{{}}},\"histograms\":{{{}}},\"spans\":{{{}}},\"warnings\":[{}]}}\n",
                counters.join(","),
                histograms.join(","),
                spans.join(","),
                warnings.join(",")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collector {
        let c = Collector::new();
        {
            let mut s = c.span("partition.phase1");
            s.arg("parts", 3u64);
            let _inner = c.span("ilp.node");
        }
        c.instant("sweep.cache_loaded", vec![("entries", ArgValue::Uint(12))]);
        c.add("pee.estimate_misses", 7);
        c.record("pee.chars_merged_size", 5);
        c.warning("cache.save_failed", "disk \"full\"\n");
        c
    }

    #[test]
    fn chrome_export_shape() {
        let json = sample().chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"partition.phase1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"parts\":3"));
        assert!(json.contains("\"cat\":\"warning\""));
        // Escaping: the embedded quote and newline must be escaped.
        assert!(json.contains("disk \\\"full\\\"\\n"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn metrics_export_shape() {
        let json = sample().metrics_json();
        assert!(json.starts_with("{\"format\":\"sgmap-metrics\",\"version\":1,"));
        assert!(json.contains("\"pee.estimate_misses\":7"));
        assert!(
            json.contains("\"pee.chars_merged_size\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,")
        );
        assert!(json.contains("\"partition.phase1\":{\"count\":1,"));
        assert!(json.contains("\"code\":\"cache.save_failed\""));
    }

    #[test]
    fn float_formatting_matches_sweep_dialect() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_collector_exports_are_valid() {
        let c = Collector::new();
        let chrome = c.chrome_trace_json();
        assert!(chrome.contains("\"traceEvents\":["));
        let metrics = c.metrics_json();
        assert!(metrics.contains("\"counters\":{}"));
        assert!(metrics.contains("\"warnings\":[]"));
    }
}
