//! Zero-dependency structured tracing for the sgmap compile pipeline.
//!
//! The crate provides a [`Collector`] that records three kinds of data while a
//! compile (or a whole sweep) runs:
//!
//! - **spans** — RAII-guarded durations ([`Span`]) with `&'static str` names,
//!   nested per thread (each OS thread gets its own lane / Chrome `tid`),
//! - **counters** — monotonic `u64` counters keyed by `&'static str`,
//! - **histograms** — fixed log2-bucket [`Histogram`]s for value distributions,
//! - **warnings** — structured `(code, message)` pairs for conditions that were
//!   previously only visible as ad-hoc `eprintln!` output.
//!
//! Two pure-Rust exporters turn a collector into JSON:
//!
//! - [`Collector::chrome_trace_json`] — Chrome trace-event format, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>,
//! - [`Collector::metrics_json`] — a canonical aggregate-metrics document
//!   (sorted keys, stable formatting) for machine consumption.
//!
//! Everything is gated on `Option`: the free helpers ([`span`], [`add`],
//! [`record`], [`instant`], [`warn`]) take `Option<&Arc<Collector>>` and are a
//! no-op (a single branch, no allocation, no clock read) when the option is
//! `None`, so instrumented hot paths cost nothing when tracing is disabled.
//!
//! # Span / counter naming conventions
//!
//! Names are dotted lowercase, `<layer>.<what>`:
//!
//! | kind | names |
//! |------|-------|
//! | span | `graph.build`, `graph.analysis`, `partition`, `partition.prewarm`, `partition.phase1`..`partition.phase4`, `partition.coarsen`, `partition.initial`, `partition.refine`, `pdg.build`, `map`, `map.repair`, `ilp.solve`, `ilp.node`, `codegen`, `execute`, `sweep.group`, `sweep.point` |
//! | counter | `graph.filters`, `graph.channels`, `partition.candidates_evaluated`, `partition.merges_accepted`, `partition.feasibility_hits`, `partition.feasibility_misses`, `partition.adjacency_rebuilds`, `partition.coarsen_levels`, `partition.refine_moves`, `pee.estimate_hits`, `pee.estimate_misses`, `pee.chars_merged`, `pee.chars_from_set`, `ilp.nodes`, `ilp.lp_iterations`, `ilp.lp_warm_starts`, `ilp.lp_cold_solves`, `ilp.refactorizations`, `ilp.bound_flips`, `ilp.presolve_removed_rows`, `ilp.budget_exhausted`, `ilp.numerical_fallbacks`, `map.repairs`, `map.repair_moved_partitions`, `codegen.kernels`, `codegen.transfers`, `gpusim.kernel_launches`, `gpusim.transfers`, `gpusim.fault_device_lost`, `gpusim.fault_link_degraded`, `gpusim.fault_link_failed`, `sweep.compile_groups`, `sweep.points`, `sweep.retries`, `sweep.panics_caught` |
//! | histogram | `pee.chars_from_set_size`, `pee.chars_merged_size` |
//! | instant | `sweep.cache_loaded`, `sweep.cache_saved`, `sweep.summary` |
//! | warning | `cache.load_failed`, `cache.save_failed`, `ilp.budget_exhausted`, `ilp.numerical_fallback`, `sweep.group_panicked`, `sweep.point_panicked`, `sweep.point_retried` |
//!
//! The layers only ever *write* to the collector; no computation reads it
//! back, which is what keeps traced and untraced runs byte-identical.

mod collector;
mod export;
mod histogram;

pub use collector::{ArgValue, Collector, Span, SpanTotals, Warning};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};

use std::sync::Arc;

/// The borrowed optional-collector handle threaded through instrumented
/// functions. `None` means tracing is disabled and every helper is a no-op.
pub type TraceRef<'a> = Option<&'a Arc<Collector>>;

/// Open a span named `name` if `trace` is enabled; otherwise return an inert
/// guard. The span ends (and is recorded) when the guard drops.
pub fn span<'a>(trace: Option<&'a Arc<Collector>>, name: &'static str) -> Span<'a> {
    match trace {
        Some(c) => c.span(name),
        None => Span::disabled(name),
    }
}

/// Like [`span`] but with structured arguments attached to the span event.
pub fn span_with<'a>(
    trace: Option<&'a Arc<Collector>>,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) -> Span<'a> {
    match trace {
        Some(c) => c.span_with(name, args),
        None => Span::disabled(name),
    }
}

/// Add `delta` to the monotonic counter `name` (no-op when disabled).
pub fn add(trace: Option<&Arc<Collector>>, name: &'static str, delta: u64) {
    if let Some(c) = trace {
        c.add(name, delta);
    }
}

/// Record `value` into the log2-bucket histogram `name` (no-op when disabled).
pub fn record(trace: Option<&Arc<Collector>>, name: &'static str, value: u64) {
    if let Some(c) = trace {
        c.record(name, value);
    }
}

/// Emit an instant (zero-duration) event (no-op when disabled).
pub fn instant(
    trace: Option<&Arc<Collector>>,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    if let Some(c) = trace {
        c.instant(name, args);
    }
}

/// Route a warning through the structured API: it always reaches stderr as
/// the legacy human-readable `warning:` line, and with a collector attached
/// it is additionally recorded (machine-readable, exported in both formats).
pub fn warn(trace: Option<&Arc<Collector>>, code: &'static str, message: String) {
    eprintln!("warning: {message}");
    if let Some(c) = trace {
        c.warning(code, message);
    }
}
