/// Number of buckets in a [`Histogram`]. Bucket 0 holds the value `0`;
/// bucket `i` (for `1 <= i < 31`) holds values in `[2^(i-1), 2^i)`; the last
/// bucket collects everything at or above `2^30`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Fixed-size log2-bucket histogram over `u64` values.
///
/// Recording is O(1) with no allocation: the bucket index is derived from the
/// value's bit length. Alongside the buckets the histogram tracks `count`,
/// `sum`, `min` and `max` so exact means and extremes survive the bucketing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for `value` (see [`HISTOGRAM_BUCKETS`] for the layout).
    pub fn bucket_index(value: u64) -> usize {
        let bits = (u64::BITS - value.leading_zeros()) as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `index`.
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if nothing was recorded.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 29), 30);
        assert_eq!(Histogram::bucket_index(1 << 30), 31);
        assert_eq!(Histogram::bucket_index(u64::MAX), 31);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(5), 16);
    }

    #[test]
    fn records_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        for v in [3, 1, 10, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 10);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[4], 1); // 10
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }
}
