//! Golden-compat gate: the `quick` preset report must stay byte-identical
//! across refactors of the platform/topology layers.
//!
//! The checked-in golden was produced by the pre-`PlatformSpec` flow (global
//! PCIe bandwidth, `gpu_models × gpu_counts` axes). Everything that feeds the
//! report — per-link transfer times, estimation-device selection, compile
//! dedup, work-list ordering, float rendering — must reproduce it exactly.

use sgmap_sweep::{check_report, run_sweep, SweepSpec};

const GOLDEN_QUICK: &str = include_str!("golden/quick.json");

#[test]
fn quick_preset_report_matches_pre_refactor_golden() {
    let spec = SweepSpec::preset("quick").unwrap();
    let report = run_sweep(&spec, 4).unwrap();
    let rendered = report.canonical_json() + "\n";
    // `assert_eq!` on the full strings would dump ~17 KB on failure; find the
    // first divergence instead so the diff is actionable.
    if rendered != GOLDEN_QUICK {
        let at = rendered
            .bytes()
            .zip(GOLDEN_QUICK.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.len().min(GOLDEN_QUICK.len()));
        let lo = at.saturating_sub(60);
        panic!(
            "quick report diverged from golden at byte {at}:\n  got: …{}…\n  want: …{}…",
            &rendered[lo..(at + 60).min(rendered.len())],
            &GOLDEN_QUICK[lo..(at + 60).min(GOLDEN_QUICK.len())],
        );
    }
    // The golden itself must satisfy the CI validator.
    check_report(GOLDEN_QUICK).unwrap();
}
