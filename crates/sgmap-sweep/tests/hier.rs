//! Smoke gate for the `hier` preset: every hierarchical platform point runs
//! clean, the report passes the CI validator, compile dedup shares one
//! partition search per (app, N) across all platforms that estimate on the
//! same device, and the report is byte-identical across thread counts.

use sgmap_sweep::{check_report, run_sweep, SweepSpec};

#[test]
fn hier_preset_runs_clean_and_is_thread_deterministic() {
    let spec = SweepSpec::preset("hier").unwrap();
    let one = run_sweep(&spec, 1).unwrap();
    for r in &one.records {
        assert!(r.is_ok(), "{} on {}: {:?}", r.app, r.gpu_model, r.error);
    }
    // All four platforms per app estimate on the M2090, so the two apps cost
    // exactly two partition searches between them.
    assert_eq!(one.dedup.compile_groups, 2);

    let json = one.canonical_json();
    check_report(&json).unwrap();

    let four = run_sweep(&spec, 4).unwrap();
    assert_eq!(four.canonical_json(), json, "thread-count nondeterminism");
}
