//! Sweep determinism: the canonical JSON report must not depend on the
//! number of worker threads or on repeated execution.

use sgmap_apps::App;
use sgmap_sweep::{run_sweep, AppSweep, GpuModel, StackConfig, SweepSpec};

/// A grid small enough for a debug-profile test but wide enough to exercise
/// real thread contention: 2 apps x 2 N x 3 GPU counts x 2 stacks = 24
/// points, matching the acceptance bar for the quick preset.
fn contention_spec() -> SweepSpec {
    SweepSpec::new(
        "determinism",
        vec![
            AppSweep::explicit(App::FmRadio, vec![4, 8]),
            AppSweep::explicit(App::MatMul2, vec![2, 3]),
        ],
        vec![GpuModel::M2090],
        vec![1, 2, 4],
        vec![StackConfig::ours(), StackConfig::previous()],
    )
}

#[test]
fn multithreaded_reports_are_byte_identical_to_single_threaded() {
    let spec = contention_spec();
    let single = run_sweep(&spec, 1).unwrap();
    let multi = run_sweep(&spec, 4).unwrap();
    let again = run_sweep(&spec, 4).unwrap();

    assert_eq!(single.records.len(), 24);
    assert!(single.records.iter().all(|r| r.is_ok()));

    // Byte-identical canonical JSON across thread counts and repetitions:
    // per-point results, their order, and even the cache counters (the
    // single-flight cache misses once per distinct key regardless of
    // scheduling).
    let a = single.canonical_json();
    let b = multi.canonical_json();
    let c = again.canonical_json();
    assert_eq!(a, b, "1-thread vs 4-thread reports differ");
    assert_eq!(b, c, "two 4-thread runs differ");

    // The sweep exercises the shared cache for real.
    assert!(multi.cache.hits > 0, "expected shared-cache hits");
    assert_eq!(multi.cache.misses, multi.cache.entries);

    // Compile-group dedup: 2 apps x 2 N x 2 stacks = 8 groups cover the 24
    // points (the 3 GPU counts of a group share one partition search).
    assert_eq!(multi.dedup.expanded_points, 24);
    assert_eq!(multi.dedup.compile_groups, 8);
    assert!(multi.dedup.compile_groups < multi.dedup.expanded_points);

    // The report passes its own validator — the same one CI runs via
    // `sweep --check`.
    let summary = sgmap_sweep::check_report(&b).unwrap();
    assert_eq!(summary.points, 24);
    assert_eq!(summary.compile_groups, 8);
}

#[test]
fn synthetic_multilevel_reports_are_byte_identical_across_threads() {
    // The multilevel stack on a generated app: the whole pipeline —
    // coarsening, initial partitioning, batched refinement — must produce
    // the same bytes no matter how the search threads race.
    let spec = SweepSpec::new(
        "synthetic-determinism",
        vec![AppSweep::explicit(App::SynthPipe, vec![300])],
        vec![GpuModel::M2090],
        vec![2, 4],
        vec![StackConfig::multilevel()],
    );
    let single = run_sweep(&spec, 1).unwrap();
    let multi = run_sweep(&spec, 4).unwrap();
    assert!(single.records.iter().all(|r| r.is_ok()));
    assert_eq!(
        single.canonical_json(),
        multi.canonical_json(),
        "synthetic multilevel report depends on thread count"
    );
}
