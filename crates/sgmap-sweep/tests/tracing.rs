//! Tracing is observation only: attaching a collector must never change a
//! sweep report, and the counters it collects must agree with the engine's
//! own statistics.

use std::sync::Arc;

use sgmap_apps::App;
use sgmap_core::{compile, execute, FlowConfig};
use sgmap_pee::EstimateCache;
use sgmap_sweep::{
    check_trace, run_sweep_traced, AppSweep, GpuModel, StackConfig, SweepSpec, TraceCheckSummary,
};
use sgmap_trace::Collector;

/// The determinism grid (see `determinism.rs`): 2 apps x 2 N x 3 GPU counts
/// x 2 stacks = 24 points, the same acceptance bar as the quick preset but
/// sized for a debug-profile test.
fn contention_spec() -> SweepSpec {
    SweepSpec::new(
        "tracing",
        vec![
            AppSweep::explicit(App::FmRadio, vec![4, 8]),
            AppSweep::explicit(App::MatMul2, vec![2, 3]),
        ],
        vec![GpuModel::M2090],
        vec![1, 2, 4],
        vec![StackConfig::ours(), StackConfig::previous()],
    )
}

#[test]
fn traced_reports_are_byte_identical_to_untraced() {
    let spec = contention_spec();
    let untraced = run_sweep_traced(&spec, 1, None).unwrap();
    let single = Arc::new(Collector::new());
    let traced_single = run_sweep_traced(&spec, 1, Some(&single)).unwrap();
    let multi = Arc::new(Collector::new());
    let traced_multi = run_sweep_traced(&spec, 4, Some(&multi)).unwrap();

    assert!(untraced.records.iter().all(|r| r.is_ok()));
    let reference = untraced.canonical_json();
    assert_eq!(
        reference,
        traced_single.canonical_json(),
        "tracing changed the report"
    );
    assert_eq!(
        reference,
        traced_multi.canonical_json(),
        "tracing on 4 threads changed the report"
    );

    // Both collectors actually saw the sweep.
    for collector in [&single, &multi] {
        let counters = collector.counters();
        assert_eq!(counters.get("sweep.points"), Some(&24));
        assert_eq!(counters.get("sweep.compile_groups"), Some(&8));
        assert!(counters.get("partition.candidates_evaluated").copied() > Some(0));
    }

    // Both exporters of the multi-threaded run validate, and the chrome
    // trace contains the span vocabulary downstream tools key on.
    let chrome = multi.chrome_trace_json();
    match check_trace(&chrome).unwrap() {
        TraceCheckSummary::Chrome { spans, .. } => assert!(spans > 0),
        other => panic!("expected a chrome summary, got {other:?}"),
    }
    for name in [
        "\"name\":\"graph.build\"",
        "\"name\":\"partition.phase1\"",
        "\"name\":\"partition.phase4\"",
        "\"name\":\"pdg.build\"",
        "\"name\":\"map\"",
        "\"name\":\"codegen\"",
        "\"name\":\"execute\"",
        "\"name\":\"sweep.group\"",
        "\"name\":\"sweep.point\"",
    ] {
        assert!(chrome.contains(name), "trace lacks {name}");
    }
    assert!(matches!(
        check_trace(&multi.metrics_json()).unwrap(),
        TraceCheckSummary::Metrics { .. }
    ));
}

#[test]
fn trace_counters_match_engine_statistics() {
    let collector = Arc::new(Collector::new());
    let graph = App::Des.build_traced(8, Some(&collector)).unwrap();
    let cache = EstimateCache::shared();
    let config = FlowConfig::new()
        .with_gpu_count(2)
        .with_estimate_cache(cache.clone())
        .with_trace(collector.clone());
    let compiled = compile(&graph, &config).unwrap();
    execute(&compiled, &config);

    let counters = collector.counters();
    // Every single-flight estimator miss asks the shared cache exactly once,
    // so the trace's miss counter equals the cache's query total.
    assert_eq!(
        counters.get("pee.estimate_misses").copied(),
        Some(cache.stats().queries()),
        "{counters:?}"
    );
    // The ILP counters mirror the solver's own statistics.
    let ilp = compiled.mapping.ilp_stats;
    assert_eq!(counters.get("ilp.nodes").copied(), Some(ilp.nodes));
    assert_eq!(
        counters.get("ilp.lp_iterations").copied(),
        Some(ilp.lp_iterations)
    );
    assert_eq!(
        counters.get("ilp.lp_warm_starts").copied(),
        Some(ilp.lp_warm_starts)
    );
    // One B&B node span per visited node (the root relaxation included).
    let spans = collector.span_totals();
    assert_eq!(spans.get("ilp.node").map(|t| t.count), Some(ilp.nodes));
    // The codegen counter agrees with the emitted plan.
    assert_eq!(
        counters.get("codegen.kernels").copied(),
        Some(compiled.plan.kernels.len() as u64)
    );
    // The whole pipeline left one span each for its single-shot stages.
    for stage in ["graph.build", "pdg.build", "map", "codegen", "execute"] {
        assert_eq!(spans.get(stage).map(|t| t.count), Some(1), "span {stage}");
    }
}
