//! Integration tests of the persistent estimate cache: a save → load →
//! reuse cycle must reproduce the sweep's records byte-for-byte and answer
//! every shared-cache query without a single miss.

use sgmap_apps::App;
use sgmap_pee::EstimateCache;
use sgmap_sweep::{
    cache_from_json, cache_to_json, load_cache_file, run_sweep, run_sweep_with_cache,
    save_cache_file, AppSweep, GpuModel, JsonValue, StackConfig, SweepSpec,
};

fn tiny_spec() -> SweepSpec {
    SweepSpec::new(
        "persistence",
        vec![
            AppSweep::explicit(App::FmRadio, vec![4]),
            AppSweep::explicit(App::Des, vec![4]),
        ],
        vec![GpuModel::M2090],
        vec![1, 2],
        vec![StackConfig::ours()],
    )
}

/// The deterministic record section of a report (the cache counters are
/// *expected* to differ between a cold and a warm run).
fn points_json(report: &sgmap_sweep::SweepReport) -> String {
    let body = JsonValue::parse(&report.canonical_json()).unwrap();
    body.get("points").unwrap().render()
}

#[test]
fn save_load_reuse_reproduces_the_report_with_zero_misses() {
    let dir = std::env::temp_dir().join(format!("sgmap-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("estimates.json");

    // Cold run: populate and save.
    let cold_cache = EstimateCache::shared();
    let cold = run_sweep_with_cache(&tiny_spec(), 2, cold_cache.clone()).unwrap();
    assert!(cold.cache.misses > 0, "cold run must compute something");
    let saved = save_cache_file(&path, &cold_cache).unwrap();
    assert_eq!(saved, cold.cache.entries);

    // Warm run: load and reuse.
    let warm_cache = EstimateCache::shared();
    let loaded = load_cache_file(&path, &warm_cache).unwrap();
    assert_eq!(loaded, saved);
    let warm = run_sweep_with_cache(&tiny_spec(), 1, warm_cache.clone()).unwrap();

    // Byte-identical records, zero misses, everything answered by the cache.
    assert_eq!(points_json(&cold), points_json(&warm));
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(warm.cache.hits, cold.cache.hits + cold.cache.misses);

    // A second save must serialise to the identical bytes (nothing new was
    // computed, and entry order is canonical).
    assert_eq!(cache_to_json(&cold_cache), cache_to_json(&warm_cache));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spec_cache_file_plumbing_warm_starts_run_sweep() {
    let dir = std::env::temp_dir().join(format!("sgmap-cache-spec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("estimates.json");
    let spec = tiny_spec().with_cache_file(path.to_string_lossy());

    let cold = run_sweep(&spec, 1).unwrap();
    assert!(cold.cache.misses > 0);
    assert!(path.exists(), "run_sweep saves the cache file");

    let warm = run_sweep(&spec, 1).unwrap();
    assert_eq!(warm.cache.misses, 0, "second run is fully warm");
    assert_eq!(points_json(&cold), points_json(&warm));

    // The file still round-trips standalone.
    let reloaded = EstimateCache::shared();
    let n = cache_from_json(&std::fs::read_to_string(&path).unwrap(), &reloaded).unwrap();
    assert_eq!(n, cold.cache.entries);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_corrupt_cache_file_degrades_to_a_cold_start_by_default() {
    let dir = std::env::temp_dir().join(format!("sgmap-cache-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("estimates.json");
    std::fs::write(
        &path,
        "{\"version\":42,\"kind\":\"sgmap-estimate-cache\",\"entries\":[]}",
    )
    .unwrap();
    let spec = tiny_spec().with_cache_file(path.to_string_lossy());

    // Default: the damaged cache is ignored (warn + cold start) and the
    // sweep's records match a cache-less run byte-for-byte.
    let degraded = run_sweep(&spec, 1).unwrap();
    assert!(degraded.cache.misses > 0, "cold start must compute");
    let baseline = run_sweep(&tiny_spec(), 1).unwrap();
    assert_eq!(points_json(&degraded), points_json(&baseline));

    // The completed sweep overwrites the damaged file with a valid one.
    let reloaded = EstimateCache::shared();
    cache_from_json(&std::fs::read_to_string(&path).unwrap(), &reloaded).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_cache_makes_a_corrupt_cache_file_a_hard_error() {
    let dir = std::env::temp_dir().join(format!("sgmap-cache-strict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("estimates.json");
    std::fs::write(
        &path,
        "{\"version\":42,\"kind\":\"sgmap-estimate-cache\",\"entries\":[]}",
    )
    .unwrap();
    let spec = tiny_spec()
        .with_cache_file(path.to_string_lossy())
        .with_strict_cache(true);
    let err = run_sweep(&spec, 1).unwrap_err();
    assert!(
        err.to_string().contains("unsupported cache format version"),
        "{err}"
    );
    // Strict mode fails before running anything, leaving the file untouched.
    assert!(std::fs::read_to_string(&path).unwrap().contains("42"));
    std::fs::remove_dir_all(&dir).ok();
}
