//! Failure isolation in the robustness preset: an injected panic must be
//! contained to its own point (structured error entry, sweep still
//! completes), a transient fault must be retried away, and everything that
//! did not fault must stay byte-identical — across thread counts and
//! against a clean run of the same spec.

use sgmap_sweep::{compare_nonfaulted, run_sweep, SweepSpec};

#[test]
fn injected_faults_are_isolated_and_the_rest_is_byte_identical() {
    let clean = run_sweep(&SweepSpec::robustness(), 2).unwrap();
    assert!(clean.records.iter().all(|r| r.is_ok()));
    assert!(
        clean.stability.is_some(),
        "robustness preset must emit a stability report"
    );

    let spec = SweepSpec::robustness()
        .with_injected_panic(1)
        .with_injected_transient(2);
    let single = run_sweep(&spec, 1).unwrap();
    let multi = run_sweep(&spec, 4).unwrap();

    // Byte-identical at any thread count, *including* the faulted point's
    // error entry and the retry-recovered point.
    assert_eq!(
        single.canonical_json(),
        multi.canonical_json(),
        "faulted robustness report depends on thread count"
    );

    // Exactly one failed point, and it is the injected one, with a
    // structured message naming the panic.
    let failed: Vec<_> = multi.records.iter().filter(|r| !r.is_ok()).collect();
    assert_eq!(failed.len(), 1, "only the injected point may fail");
    assert_eq!(failed[0].index, 1);
    assert_eq!(
        failed[0].error.as_deref(),
        Some("panic: injected panic at point 1")
    );

    // The transient fault at point 2 was retried and recovered: its record
    // is ok and identical to the clean run's.
    assert!(multi.records[2].is_ok(), "transient fault must be retried");
    assert_eq!(multi.records[2], clean.records[2]);

    // The stability report survives a faulted sweep (the failed point is
    // simply excluded from the comparison set).
    assert!(multi.stability.is_some());

    // The CI gate's comparison: every non-faulted point byte-identical to
    // the clean run, the one failed point skipped.
    let summary = compare_nonfaulted(&clean.canonical_json(), &multi.canonical_json()).unwrap();
    assert_eq!(summary.skipped, 1);
    assert_eq!(summary.compared, clean.records.len() - 1);
}
