//! Property test: arbitrary heterogeneous platform specs survive the JSON
//! codec exactly — every GPU field, the interconnect shape and the name come
//! back bit-identical, and re-encoding is byte-stable.

use proptest::prelude::*;

use sgmap_gpusim::{GpuSpec, InterconnectSpec, PlatformSpec};
use sgmap_sweep::{platform_spec_from_json, platform_spec_to_json};

fn gpu_strategy() -> BoxedStrategy<GpuSpec> {
    (
        0u32..500,
        (1u32..128, 0.1f64..3.0, 0.1f64..4.0, 1.0f64..400.0),
        (1u32..1_000_000, 1u32..4096, 1u32..64),
        (1.0f64..1000.0, 0.5f64..100.0),
    )
        .prop_map(
            |(id, (sm, core, mem_clk, bw), (shmem, threads, warp), (ga, sa))| GpuSpec {
                name: format!("gpu-{id}"),
                sm_count: sm,
                core_clock_ghz: core,
                mem_clock_ghz: mem_clk,
                mem_bandwidth_gbs: bw,
                shared_mem_bytes: shmem,
                max_threads_per_block: threads,
                warp_size: warp,
                global_access_cycles: ga,
                shared_access_cycles: sa,
            },
        )
        .boxed()
}

fn interconnect_strategy() -> BoxedStrategy<InterconnectSpec> {
    prop_oneof![
        1 => (0u32..1).prop_map(|_| InterconnectSpec::ReferenceTree).boxed(),
        1 => (0u32..1).prop_map(|_| InterconnectSpec::Flat).boxed(),
        1 => (1usize..8).prop_map(|gpus_per_island| InterconnectSpec::NvlinkIslands {
            gpus_per_island,
        }).boxed(),
        1 => (1usize..8).prop_map(|gpus_per_node| InterconnectSpec::Cluster {
            gpus_per_node,
        }).boxed(),
    ]
    .boxed()
}

// Scale factors are drawn from a small set of exactly-representable values
// (1.0 = unperturbed, omitted from the JSON) so the round-trip oracle stays
// byte-exact.
fn scale_strategy() -> BoxedStrategy<f64> {
    prop_oneof![
        3 => (0u32..1).prop_map(|_| 1.0).boxed(),
        1 => (1u32..40).prop_map(|pct| 1.0 + f64::from(pct) / 100.0).boxed(),
    ]
    .boxed()
}

fn platform_strategy() -> BoxedStrategy<PlatformSpec> {
    (
        0u32..1000,
        prop::collection::vec(gpu_strategy(), 1..9),
        interconnect_strategy(),
        scale_strategy(),
        scale_strategy(),
    )
        .prop_map(
            |(id, gpus, interconnect, bandwidth_scale, latency_scale)| PlatformSpec {
                name: format!("platform-{id}"),
                gpus,
                interconnect,
                bandwidth_scale,
                latency_scale,
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heterogeneous_platforms_round_trip_the_json_codec(spec in platform_strategy()) {
        let json = platform_spec_to_json(&spec);
        let back = platform_spec_from_json(&json).unwrap();
        prop_assert_eq!(&back, &spec, "decode(encode) changed the spec: {}", json);
        prop_assert_eq!(platform_spec_to_json(&back), json, "re-encode not byte-stable");
    }
}
