//! Persistence of the shared estimate cache.
//!
//! A sweep's dominant compile cost is answering estimation queries, and the
//! answers depend only on partition characteristics and platform parameters
//! — nothing run-specific — so they are safe to reuse across processes. This
//! module serialises an [`EstimateCache`] to a versioned JSON file (via the
//! same deterministic pure-Rust [`Value`] writer the sweep reports use) and
//! loads it back, so a second run of the same sweep warm-starts with zero
//! shared-cache misses.
//!
//! All `f64` inputs and outputs are stored as their IEEE-754 bit patterns
//! (`u64`), so a save → load round trip reproduces every estimate
//! bit-for-bit; keys already are bit patterns by construction. Entries are
//! sorted by their serialised key, so equal caches serialise to equal bytes.
//! Files carry a format version and are rejected — not silently ignored —
//! when the version or shape does not match.

use std::path::Path;
use std::sync::Arc;

use sgmap_gpusim::KernelParams;
use sgmap_pee::{Estimate, EstimateCache, EstimateKey, ESTIMATOR_ALGORITHM_VERSION};

use crate::json::Value;

/// Format version of the cache file; bump on any schema change. The file
/// additionally records [`ESTIMATOR_ALGORITHM_VERSION`], so estimates
/// persisted by a binary with different estimation *logic* (same schema,
/// same keys, different answers) are rejected rather than silently replayed.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// The `kind` marker distinguishing cache files from other JSON artefacts.
const CACHE_KIND: &str = "sgmap-estimate-cache";

fn u32s(values: &[u32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Uint(u64::from(v))).collect())
}

fn key_to_value(key: &EstimateKey) -> Value {
    Value::object(vec![
        (
            "filters",
            Value::Array(
                key.filters
                    .iter()
                    .map(|&(t, f)| Value::Array(vec![Value::Uint(t), Value::Uint(f)]))
                    .collect(),
            ),
        ),
        ("io_bytes_per_exec", Value::Uint(key.io_bytes_per_exec)),
        ("sm_bytes_per_exec", Value::Uint(key.sm_bytes_per_exec)),
        ("max_firing_rate", Value::Uint(key.max_firing_rate)),
        (
            "model",
            Value::Array(vec![
                Value::Uint(key.model.0),
                Value::Uint(key.model.1),
                Value::Uint(u64::from(key.model.2)),
                Value::Bool(key.model.3),
            ]),
        ),
        (
            "device",
            Value::Array(vec![
                Value::Uint(u64::from(key.device.0)),
                Value::Uint(u64::from(key.device.1)),
            ]),
        ),
        (
            "space",
            Value::object(vec![
                ("s", u32s(&key.space.0)),
                ("f", u32s(&key.space.1)),
                ("max_w", Value::Uint(u64::from(key.space.2))),
            ]),
        ),
    ])
}

fn estimate_to_value(estimate: &Option<Estimate>) -> Value {
    match estimate {
        None => Value::Null,
        Some(e) => Value::object(vec![
            ("w", Value::Uint(u64::from(e.params.w))),
            ("s", Value::Uint(u64::from(e.params.s))),
            ("f", Value::Uint(u64::from(e.params.f))),
            ("t_comp_bits", Value::Uint(e.t_comp_us.to_bits())),
            ("t_dt_bits", Value::Uint(e.t_dt_us.to_bits())),
            ("t_db_bits", Value::Uint(e.t_db_us.to_bits())),
            ("t_exec_bits", Value::Uint(e.t_exec_us.to_bits())),
            ("normalized_bits", Value::Uint(e.normalized_us.to_bits())),
            ("sm_bytes", Value::Uint(e.sm_bytes)),
            ("io_bytes_per_exec", Value::Uint(e.io_bytes_per_exec)),
        ]),
    }
}

/// Renders the cache's completed entries as deterministic, versioned JSON.
pub fn cache_to_json(cache: &EstimateCache) -> String {
    entries_to_json(cache.entries())
}

fn entries_to_json(entries: Vec<(EstimateKey, Option<Estimate>)>) -> String {
    let mut entries: Vec<(String, Value)> = entries
        .into_iter()
        .map(|(key, estimate)| {
            let key_value = key_to_value(&key);
            let sort_key = key_value.render();
            (
                sort_key,
                Value::object(vec![
                    ("key", key_value),
                    ("estimate", estimate_to_value(&estimate)),
                ]),
            )
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Value::object(vec![
        ("version", Value::Uint(CACHE_FORMAT_VERSION)),
        ("kind", Value::str(CACHE_KIND)),
        (
            "estimator_version",
            Value::Uint(u64::from(ESTIMATOR_ALGORITHM_VERSION)),
        ),
        (
            "entries",
            Value::Array(entries.into_iter().map(|(_, v)| v).collect()),
        ),
    ])
    .render()
}

fn get_u64(value: &Value, field: &str) -> Result<u64, String> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{field}'"))
}

fn get_u32(value: &Value, field: &str) -> Result<u32, String> {
    u32::try_from(get_u64(value, field)?).map_err(|_| format!("field '{field}' exceeds u32"))
}

fn u32_array(value: &Value, field: &str) -> Result<Vec<u32>, String> {
    value
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array '{field}'"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| format!("non-u32 element in '{field}'"))
        })
        .collect()
}

fn key_from_value(value: &Value) -> Result<EstimateKey, String> {
    let filters = value
        .get("filters")
        .and_then(Value::as_array)
        .ok_or("missing filters array")?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().ok_or("filter entry is not a pair")?;
            match pair {
                [t, f] => Ok((
                    t.as_u64().ok_or("non-integer t bits")?,
                    f.as_u64().ok_or("non-integer firing rate")?,
                )),
                _ => Err("filter entry is not a pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let model = value
        .get("model")
        .and_then(Value::as_array)
        .ok_or("missing model")?;
    let model = match model {
        [c1, c2, warp, itc] => (
            c1.as_u64().ok_or("non-integer c1 bits")?,
            c2.as_u64().ok_or("non-integer c2 bits")?,
            as_u32_value(warp)?,
            matches!(itc, Value::Bool(true)),
        ),
        _ => return Err("model is not a 4-tuple".to_string()),
    };
    let device = value
        .get("device")
        .and_then(Value::as_array)
        .ok_or("missing device")?;
    let device = match device {
        [sm, threads] => (as_u32_value(sm)?, as_u32_value(threads)?),
        _ => return Err("device is not a pair".to_string()),
    };
    let space = value.get("space").ok_or("missing space")?;
    Ok(EstimateKey {
        filters,
        io_bytes_per_exec: get_u64(value, "io_bytes_per_exec")?,
        sm_bytes_per_exec: get_u64(value, "sm_bytes_per_exec")?,
        max_firing_rate: get_u64(value, "max_firing_rate")?,
        model,
        device,
        space: (
            u32_array(space, "s")?,
            u32_array(space, "f")?,
            get_u32(space, "max_w")?,
        ),
    })
}

fn as_u32_value(value: &Value) -> Result<u32, String> {
    value
        .as_u64()
        .and_then(|u| u32::try_from(u).ok())
        .ok_or_else(|| "non-u32 integer".to_string())
}

fn estimate_from_value(value: &Value) -> Result<Option<Estimate>, String> {
    if value.is_null() {
        return Ok(None);
    }
    Ok(Some(Estimate {
        params: KernelParams {
            w: get_u32(value, "w")?,
            s: get_u32(value, "s")?,
            f: get_u32(value, "f")?,
        },
        t_comp_us: f64::from_bits(get_u64(value, "t_comp_bits")?),
        t_dt_us: f64::from_bits(get_u64(value, "t_dt_bits")?),
        t_db_us: f64::from_bits(get_u64(value, "t_db_bits")?),
        t_exec_us: f64::from_bits(get_u64(value, "t_exec_bits")?),
        normalized_us: f64::from_bits(get_u64(value, "normalized_bits")?),
        sm_bytes: get_u64(value, "sm_bytes")?,
        io_bytes_per_exec: get_u64(value, "io_bytes_per_exec")?,
    }))
}

/// Parses a serialised cache and preloads every entry into `cache`.
/// Returns the number of entries loaded.
///
/// # Errors
///
/// Returns a description of the problem if the text is not valid JSON, is
/// not a cache file, or carries an unsupported format version.
pub fn cache_from_json(src: &str, cache: &EstimateCache) -> Result<u64, String> {
    let value = Value::parse(src)?;
    match value.get("kind").and_then(Value::as_str) {
        Some(CACHE_KIND) => {}
        other => return Err(format!("not an estimate-cache file (kind: {other:?})")),
    }
    match value.get("version").and_then(Value::as_u64) {
        Some(CACHE_FORMAT_VERSION) => {}
        other => {
            return Err(format!(
                "unsupported cache format version {other:?} (expected {CACHE_FORMAT_VERSION})"
            ))
        }
    }
    match value.get("estimator_version").and_then(Value::as_u64) {
        Some(v) if v == u64::from(ESTIMATOR_ALGORITHM_VERSION) => {}
        other => {
            return Err(format!(
                "cache was produced by estimator algorithm version {other:?} \
                 (this binary is {ESTIMATOR_ALGORITHM_VERSION}); discard the file"
            ))
        }
    }
    let entries = value
        .get("entries")
        .and_then(Value::as_array)
        .ok_or("missing entries array")?;
    for (i, entry) in entries.iter().enumerate() {
        let key = entry
            .get("key")
            .ok_or_else(|| format!("entry {i}: missing key"))
            .and_then(|k| key_from_value(k).map_err(|e| format!("entry {i}: {e}")))?;
        let estimate = entry
            .get("estimate")
            .ok_or_else(|| format!("entry {i}: missing estimate"))
            .and_then(|e| estimate_from_value(e).map_err(|err| format!("entry {i}: {err}")))?;
        cache.preload(key, estimate);
    }
    Ok(entries.len() as u64)
}

/// Writes the cache to `path` as versioned JSON. Returns the number of
/// entries actually written (completed entries only — in-flight
/// single-flight cells are skipped, exactly as in the file).
///
/// # Errors
///
/// Returns the underlying IO error message on failure.
pub fn save_cache_file(path: impl AsRef<Path>, cache: &Arc<EstimateCache>) -> Result<u64, String> {
    let entries = cache.entries();
    let written = entries.len() as u64;
    std::fs::write(path.as_ref(), entries_to_json(entries) + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.as_ref().display()))?;
    Ok(written)
}

/// Reads a cache file from `path` and preloads its entries into `cache`.
/// Returns the number of entries loaded.
///
/// # Errors
///
/// Returns the underlying IO error or format problem as a message.
pub fn load_cache_file(path: impl AsRef<Path>, cache: &Arc<EstimateCache>) -> Result<u64, String> {
    let src = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
    cache_from_json(&src, cache)
}

/// Like [`load_cache_file`], but a missing file is an empty warm start (0
/// entries), not an error — the shared first-run behaviour of every
/// `--cache-file` consumer. A file that exists but cannot be parsed is still
/// an error: silently cold-starting would hide a corrupt or stale cache.
pub fn load_cache_file_if_exists(
    path: impl AsRef<Path>,
    cache: &Arc<EstimateCache>,
) -> Result<u64, String> {
    if !path.as_ref().exists() {
        return Ok(0);
    }
    load_cache_file(path, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_gpusim::GpuSpec;
    use sgmap_graph::{Filter, NodeSet, StreamGraph};
    use sgmap_pee::Estimator;

    fn populated_cache() -> Arc<EstimateCache> {
        let mut g = StreamGraph::new("chain");
        let a = g.add_filter(Filter::new("a", 0, 1, 1.0));
        let b = g.add_filter(Filter::new("b", 1, 1, 400.0));
        let c = g.add_filter(Filter::new("c", 1, 0, 2.0));
        g.add_channel(a, b, 1, 1).unwrap();
        g.add_channel(b, c, 1, 1).unwrap();
        let cache = EstimateCache::shared();
        let est = Estimator::new(&g, GpuSpec::m2090())
            .unwrap()
            .with_shared_cache(cache.clone());
        for id in g.filter_ids() {
            est.estimate(&NodeSet::singleton(id));
        }
        est.estimate(&NodeSet::all(&g));
        cache
    }

    #[test]
    fn save_load_round_trip_is_bit_exact_and_deterministic() {
        let cache = populated_cache();
        let json = cache_to_json(&cache);
        assert_eq!(json, cache_to_json(&cache), "serialisation is stable");

        let restored = EstimateCache::shared();
        let loaded = cache_from_json(&json, &restored).unwrap();
        assert_eq!(loaded, cache.stats().entries);
        assert_eq!(json, cache_to_json(&restored), "round trip is lossless");
        // Preloading counts no queries.
        assert_eq!(restored.stats().queries(), 0);

        let mut a = cache.entries();
        let mut b = restored.entries();
        let key = |e: &(EstimateKey, Option<Estimate>)| key_to_value(&e.0).render();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a.len(), b.len());
        for ((ka, ea), (kb, eb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            match (ea, eb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.params, y.params);
                    assert_eq!(x.normalized_us.to_bits(), y.normalized_us.to_bits());
                    assert_eq!(x.t_exec_us.to_bits(), y.t_exec_us.to_bits());
                }
                other => panic!("entry mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_version_kind_or_shape_is_rejected() {
        let cache = EstimateCache::shared();
        let err = cache_from_json("{\"version\":1}", &cache).unwrap_err();
        assert!(err.contains("not an estimate-cache file"), "{err}");
        let err = cache_from_json(
            "{\"version\":99,\"kind\":\"sgmap-estimate-cache\",\"entries\":[]}",
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("unsupported cache format version"), "{err}");
        // Same schema but produced by different estimation logic: rejected.
        let err = cache_from_json(
            "{\"version\":1,\"kind\":\"sgmap-estimate-cache\",\
             \"estimator_version\":999,\"entries\":[]}",
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("estimator algorithm version"), "{err}");
        let err = cache_from_json(
            &format!(
                "{{\"version\":1,\"kind\":\"sgmap-estimate-cache\",\
                 \"estimator_version\":{ESTIMATOR_ALGORITHM_VERSION},\"entries\":[{{}}]}}"
            ),
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("entry 0"), "{err}");
        assert!(cache_from_json("not json", &cache).is_err());
        assert_eq!(cache.len(), 0);
    }
}
