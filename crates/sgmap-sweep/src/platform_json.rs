//! JSON codec for [`PlatformSpec`] — the persistence path for platform
//! descriptions (spec files, report tooling, the property tests' round-trip
//! oracle).
//!
//! The rendering is deterministic (insertion-ordered objects, shortest
//! round-trip float representation), so encoding the same spec twice yields
//! byte-identical text, and decode(encode(spec)) reproduces the spec
//! exactly — including heterogeneous GPU lists.

use sgmap_gpusim::{GpuSpec, InterconnectSpec, PlatformSpec};

use crate::json::Value;

/// Encodes a platform spec as a JSON value.
pub fn platform_spec_to_value(spec: &PlatformSpec) -> Value {
    let interconnect = match &spec.interconnect {
        InterconnectSpec::ReferenceTree | InterconnectSpec::Flat => {
            Value::object(vec![("kind", Value::str(spec.interconnect.kind_name()))])
        }
        InterconnectSpec::NvlinkIslands { gpus_per_island } => Value::object(vec![
            ("kind", Value::str(spec.interconnect.kind_name())),
            ("gpus_per_island", Value::Uint(*gpus_per_island as u64)),
        ]),
        InterconnectSpec::Cluster { gpus_per_node } => Value::object(vec![
            ("kind", Value::str(spec.interconnect.kind_name())),
            ("gpus_per_node", Value::Uint(*gpus_per_node as u64)),
        ]),
    };
    let mut fields = vec![
        ("name", Value::str(&*spec.name)),
        ("interconnect", interconnect),
        (
            "gpus",
            Value::Array(spec.gpus.iter().map(gpu_to_value).collect()),
        ),
    ];
    // Perturbation factors are emitted only when set, so unperturbed spec
    // files keep their historical byte shape.
    if spec.bandwidth_scale != 1.0 {
        fields.push(("bandwidth_scale", Value::Float(spec.bandwidth_scale)));
    }
    if spec.latency_scale != 1.0 {
        fields.push(("latency_scale", Value::Float(spec.latency_scale)));
    }
    Value::object(fields)
}

/// Renders a platform spec as compact JSON text.
pub fn platform_spec_to_json(spec: &PlatformSpec) -> String {
    platform_spec_to_value(spec).render()
}

/// Decodes a platform spec from a JSON value.
///
/// # Errors
///
/// Returns a description of the first missing or ill-typed field.
pub fn platform_spec_from_value(value: &Value) -> Result<PlatformSpec, String> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or("platform: missing string 'name'")?
        .to_string();
    let inter = value
        .get("interconnect")
        .ok_or("platform: missing 'interconnect'")?;
    let kind = inter
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("platform: missing string 'interconnect.kind'")?;
    let interconnect = match kind {
        "reference_tree" => InterconnectSpec::ReferenceTree,
        "flat" => InterconnectSpec::Flat,
        "nvlink_islands" => InterconnectSpec::NvlinkIslands {
            gpus_per_island: require_usize(inter, "gpus_per_island")?,
        },
        "cluster" => InterconnectSpec::Cluster {
            gpus_per_node: require_usize(inter, "gpus_per_node")?,
        },
        other => return Err(format!("platform: unknown interconnect kind '{other}'")),
    };
    let gpus = value
        .get("gpus")
        .and_then(Value::as_array)
        .ok_or("platform: missing array 'gpus'")?
        .iter()
        .map(gpu_from_value)
        .collect::<Result<Vec<GpuSpec>, String>>()?;
    let scale = |field: &str| -> Result<f64, String> {
        match value.get(field) {
            None => Ok(1.0),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("platform: ill-typed number '{field}'")),
        }
    };
    Ok(PlatformSpec {
        name,
        gpus,
        interconnect,
        bandwidth_scale: scale("bandwidth_scale")?,
        latency_scale: scale("latency_scale")?,
    })
}

/// Parses a platform spec from JSON text.
///
/// # Errors
///
/// Returns a description of the first parse or shape error.
pub fn platform_spec_from_json(src: &str) -> Result<PlatformSpec, String> {
    platform_spec_from_value(&Value::parse(src)?)
}

fn gpu_to_value(gpu: &GpuSpec) -> Value {
    Value::object(vec![
        ("name", Value::str(&*gpu.name)),
        ("sm_count", Value::Uint(u64::from(gpu.sm_count))),
        ("core_clock_ghz", Value::Float(gpu.core_clock_ghz)),
        ("mem_clock_ghz", Value::Float(gpu.mem_clock_ghz)),
        ("mem_bandwidth_gbs", Value::Float(gpu.mem_bandwidth_gbs)),
        (
            "shared_mem_bytes",
            Value::Uint(u64::from(gpu.shared_mem_bytes)),
        ),
        (
            "max_threads_per_block",
            Value::Uint(u64::from(gpu.max_threads_per_block)),
        ),
        ("warp_size", Value::Uint(u64::from(gpu.warp_size))),
        (
            "global_access_cycles",
            Value::Float(gpu.global_access_cycles),
        ),
        (
            "shared_access_cycles",
            Value::Float(gpu.shared_access_cycles),
        ),
    ])
}

fn gpu_from_value(value: &Value) -> Result<GpuSpec, String> {
    Ok(GpuSpec {
        name: value
            .get("name")
            .and_then(Value::as_str)
            .ok_or("gpu: missing string 'name'")?
            .to_string(),
        sm_count: require_u32(value, "sm_count")?,
        core_clock_ghz: require_f64(value, "core_clock_ghz")?,
        mem_clock_ghz: require_f64(value, "mem_clock_ghz")?,
        mem_bandwidth_gbs: require_f64(value, "mem_bandwidth_gbs")?,
        shared_mem_bytes: require_u32(value, "shared_mem_bytes")?,
        max_threads_per_block: require_u32(value, "max_threads_per_block")?,
        warp_size: require_u32(value, "warp_size")?,
        global_access_cycles: require_f64(value, "global_access_cycles")?,
        shared_access_cycles: require_f64(value, "shared_access_cycles")?,
    })
}

fn require_u32(value: &Value, field: &str) -> Result<u32, String> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("gpu: missing counter '{field}'"))
}

fn require_usize(value: &Value, field: &str) -> Result<usize, String> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("platform: missing counter '{field}'"))
}

fn require_f64(value: &Value, field: &str) -> Result<f64, String> {
    value
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("gpu: missing number '{field}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_round_trip_exactly() {
        for spec in [
            PlatformSpec::paper(),
            PlatformSpec::reference(GpuSpec::c2070(), 1),
            PlatformSpec::nvlink8_m2090(),
            PlatformSpec::cluster2x4_m2090(),
            PlatformSpec::mixed_m2090_c2070(),
            PlatformSpec::paper().with_link_scales(1.05, 0.95),
        ] {
            let json = platform_spec_to_json(&spec);
            let back = platform_spec_from_json(&json).unwrap();
            assert_eq!(back, spec, "{json}");
            // Deterministic rendering: encode(decode(encode)) is stable.
            assert_eq!(platform_spec_to_json(&back), json);
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(platform_spec_from_json("{}").is_err());
        assert!(platform_spec_from_json(
            r#"{"name":"x","interconnect":{"kind":"warp"},"gpus":[]}"#
        )
        .is_err());
        assert!(platform_spec_from_json(
            r#"{"name":"x","interconnect":{"kind":"nvlink_islands"},"gpus":[]}"#
        )
        .is_err());
        let truncated =
            platform_spec_to_json(&PlatformSpec::paper()).replace("\"sm_count\":16,", "");
        assert!(platform_spec_from_json(&truncated).is_err());
    }
}
