//! Self-checking of sweep reports: the pure-Rust validator behind
//! `sweep --check`.
//!
//! CI used to smoke-check the quick preset with an inline Python script;
//! this module replaces it so the pipeline has no Python dependency and the
//! exact validator CI runs is available to users locally.

use std::fmt;

use crate::json::Value;

/// What a passing report looked like, for the one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSummary {
    /// Number of points in the report.
    pub points: usize,
    /// Shared-cache hits recorded by the sweep.
    pub cache_hits: u64,
    /// Number of expanded grid points according to the dedup counters.
    pub expanded_points: u64,
    /// Number of compile groups that actually ran.
    pub compile_groups: u64,
}

impl fmt::Display for CheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points ok; cache hits {}; {} compiles for {} points ({} saved)",
            self.points,
            self.cache_hits,
            self.compile_groups,
            self.expanded_points,
            self.expanded_points.saturating_sub(self.compile_groups)
        )
    }
}

/// A reason the report failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The file is not valid JSON.
    Parse(String),
    /// A required field is missing or has the wrong shape.
    Shape(String),
    /// The report has no points at all.
    NoPoints,
    /// At least one point carries an error.
    FailedPoints {
        /// Total number of failed points in the report.
        count: usize,
        /// Descriptions of the first few failures.
        sample: Vec<String>,
    },
    /// The shared estimator cache recorded no hits.
    NoCacheHits,
    /// The dedup counters are missing, zero or inconsistent.
    BadDedup(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(msg) => write!(f, "report is not valid JSON: {msg}"),
            CheckError::Shape(msg) => write!(f, "report has unexpected shape: {msg}"),
            CheckError::NoPoints => write!(f, "report contains no points"),
            CheckError::FailedPoints { count, sample } => {
                write!(f, "{count} point(s) failed: {}", sample.join("; "))?;
                if *count > sample.len() {
                    write!(f, "; ...")?;
                }
                Ok(())
            }
            CheckError::NoCacheHits => write!(f, "estimator cache recorded no hits"),
            CheckError::BadDedup(msg) => write!(f, "dedup counters invalid: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

fn require_u64(report: &Value, object: &str, field: &str) -> Result<u64, CheckError> {
    report
        .get(object)
        .and_then(|o| o.get(field))
        .and_then(Value::as_u64)
        .ok_or_else(|| CheckError::Shape(format!("missing counter {object}.{field}")))
}

/// Validates the JSON text of a sweep report: it must parse, contain at
/// least one point, contain no failed points, record at least one shared-
/// cache hit and report consistent, nonzero compile-dedup counters.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered, in the order listed above.
pub fn check_report(src: &str) -> Result<CheckSummary, CheckError> {
    let report = Value::parse(src).map_err(CheckError::Parse)?;
    let points = report
        .get("points")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("missing points array".to_string()))?;
    if points.is_empty() {
        return Err(CheckError::NoPoints);
    }
    let mut failed = 0usize;
    let mut sample = Vec::new();
    for point in points {
        let error = point
            .get("error")
            .ok_or_else(|| CheckError::Shape("point without error field".to_string()))?;
        if !error.is_null() {
            failed += 1;
            if sample.len() < 5 {
                let describe = |field: &str| {
                    point
                        .get(field)
                        .map(|v| v.render())
                        .unwrap_or_else(|| "?".to_string())
                };
                sample.push(format!(
                    "{} N={} G={} {}: {}",
                    describe("app"),
                    describe("n"),
                    describe("gpus"),
                    describe("stack"),
                    error.as_str().unwrap_or("non-string error")
                ));
            }
        }
    }
    if failed > 0 {
        return Err(CheckError::FailedPoints {
            count: failed,
            sample,
        });
    }
    let cache_hits = require_u64(&report, "cache", "hits")?;
    if cache_hits == 0 {
        return Err(CheckError::NoCacheHits);
    }
    let expanded_points = require_u64(&report, "dedup", "expanded_points")?;
    let compile_groups = require_u64(&report, "dedup", "compile_groups")?;
    if compile_groups == 0 {
        return Err(CheckError::BadDedup("zero compile groups".to_string()));
    }
    if compile_groups > expanded_points {
        return Err(CheckError::BadDedup(format!(
            "{compile_groups} compile groups exceed {expanded_points} expanded points"
        )));
    }
    if expanded_points != points.len() as u64 {
        return Err(CheckError::BadDedup(format!(
            "dedup says {expanded_points} expanded points but the report has {}",
            points.len()
        )));
    }
    Ok(CheckSummary {
        points: points.len(),
        cache_hits,
        expanded_points,
        compile_groups,
    })
}

/// What a passing failed-point-tolerant comparison looked like, for the
/// one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareSummary {
    /// Points compared byte-for-byte (both sides ok).
    pub compared: usize,
    /// Points skipped because at least one side recorded an error.
    pub skipped: usize,
}

impl fmt::Display for CompareSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points byte-identical ({} failed points skipped)",
            self.compared, self.skipped
        )
    }
}

/// Compares the point records of two sweep reports byte-for-byte, skipping
/// every index at which either report recorded a per-point error. This is
/// the validator behind `sweep --compare-nonfaulted`: CI uses it to assert
/// that a sweep with an injected fault leaves every *other* point
/// byte-identical to the fault-free run (`--check` would reject the faulted
/// report outright because it contains an error entry).
///
/// # Errors
///
/// Returns a [`CheckError`] when either input fails to parse, the point
/// lists differ in length, or a non-faulted point differs between the two
/// reports.
pub fn compare_nonfaulted(a_src: &str, b_src: &str) -> Result<CompareSummary, CheckError> {
    let points_of = |src: &str| -> Result<Vec<Value>, CheckError> {
        let report = Value::parse(src).map_err(CheckError::Parse)?;
        report
            .get("points")
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .ok_or_else(|| CheckError::Shape("missing points array".to_string()))
    };
    let a = points_of(a_src)?;
    let b = points_of(b_src)?;
    if a.len() != b.len() {
        return Err(CheckError::Shape(format!(
            "point count mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
        let failed = |p: &Value| p.get("error").is_none_or(|e| !e.is_null());
        if failed(pa) || failed(pb) {
            skipped += 1;
            continue;
        }
        if pa.render() != pb.render() {
            return Err(CheckError::Shape(format!(
                "point {i} differs between the two reports:\n  a: {}\n  b: {}",
                pa.render(),
                pb.render()
            )));
        }
        compared += 1;
    }
    Ok(CompareSummary { compared, skipped })
}

/// What a passing `BENCH.json` looked like, for the one-line summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCheckSummary {
    /// Number of timed single-compile targets.
    pub compiles: usize,
    /// Total wall-clock of the timed compiles, milliseconds.
    pub compile_total_ms: f64,
    /// Number of points on the synthetic scaling curve.
    pub synthetic_points: usize,
    /// Filter count of the largest synthetic scaling point.
    pub synthetic_max_filters: u64,
    /// Number of points in the timed sweep.
    pub sweep_points: u64,
    /// Wall-clock of the timed sweep, milliseconds.
    pub sweep_wall_ms: f64,
    /// Repair-vs-recompile speedup recorded in the `repair` section.
    pub repair_speedup: f64,
    /// Mapping-stability fraction recorded in the `stability` section.
    pub mapping_stability: f64,
}

impl fmt::Display for BenchCheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compiles in {:.1} ms; scaling curve to {} filters; repair {:.1}x faster than recompile; mapping stability {:.0}%; sweep of {} points in {:.1} ms",
            self.compiles,
            self.compile_total_ms,
            self.synthetic_max_filters,
            self.repair_speedup,
            self.mapping_stability * 100.0,
            self.sweep_points,
            self.sweep_wall_ms
        )
    }
}

fn bench_f64(value: &Value, field: &str, at: &str) -> Result<f64, CheckError> {
    value
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing number '{field}'")))
}

fn bench_u64(value: &Value, field: &str, at: &str) -> Result<u64, CheckError> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing counter '{field}'")))
}

/// Validates the sweep section of a `BENCH.json`.
fn check_bench_sweep(
    sweep: &Value,
    at: &str,
    expect_no_misses: bool,
) -> Result<(u64, f64), CheckError> {
    let points = bench_u64(sweep, "points", at)?;
    if points == 0 {
        return Err(CheckError::Shape(format!("{at}: zero points")));
    }
    if bench_u64(sweep, "failed_points", at)? != 0 {
        return Err(CheckError::Shape(format!("{at}: failed points recorded")));
    }
    let wall_ms = bench_f64(sweep, "wall_ms", at)?;
    if !wall_ms.is_finite() || wall_ms <= 0.0 {
        return Err(CheckError::Shape(format!("{at}: non-positive wall_ms")));
    }
    let cache = sweep
        .get("cache")
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing cache object")))?;
    let misses = bench_u64(cache, "misses", at)?;
    let hits = bench_u64(cache, "hits", at)?;
    if expect_no_misses && misses != 0 {
        return Err(CheckError::Shape(format!(
            "{at}: warm-started sweep reports {misses} misses (expected 0)"
        )));
    }
    if !expect_no_misses && hits + misses == 0 {
        return Err(CheckError::Shape(format!("{at}: cache saw no queries")));
    }
    let dedup = sweep
        .get("dedup")
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing dedup object")))?;
    let expanded = bench_u64(dedup, "expanded_points", at)?;
    let groups = bench_u64(dedup, "compile_groups", at)?;
    if groups == 0 || groups > expanded || expanded != points {
        return Err(CheckError::BadDedup(format!(
            "{at}: {groups} compile groups for {expanded} expanded points ({points} in report)"
        )));
    }
    Ok((points, wall_ms))
}

/// Validates the JSON text of a `perfbench` report (`BENCH.json`): format
/// version 4, a non-empty list of timed compiles with positive wall-clocks,
/// non-zero estimate counts and live ILP solver counters (`ilp_nodes`,
/// `lp_iterations`, `lp_refactorizations` and a finite non-negative
/// `ilp_gap` per compile, at least one `lp_warm_starts` across the suite —
/// the revised simplex must actually be warm-starting), a
/// `synthetic_scaling` curve whose largest point partitioned a graph of at
/// least 10 000 filters through the multilevel pipeline (non-zero coarsen
/// levels, non-negative phase timings), a `budget_bounded` point whose
/// node-capped branch-and-bound still produced a feasible mapping with a
/// finite optimality gap, a `repair` section whose degradation-aware
/// remapping is at least 5× faster than the full recompile while staying
/// within 10 % of its objective, a `stability` section with a well-formed
/// mapping-stability fraction and no failed points, and a healthy sweep
/// section. A report whose sweep
/// was warm-started from a persistent cache file
/// (`cache_preloaded_entries > 0`) must additionally report zero
/// shared-cache misses — the contract of cache persistence.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn check_bench_report(src: &str) -> Result<BenchCheckSummary, CheckError> {
    let report = Value::parse(src).map_err(CheckError::Parse)?;
    match report.get("version").and_then(Value::as_u64) {
        Some(4) => {}
        other => {
            return Err(CheckError::Shape(format!(
                "unsupported BENCH.json version {other:?}"
            )))
        }
    }
    let compiles = report
        .get("compiles")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("missing compiles array".to_string()))?;
    if compiles.is_empty() {
        return Err(CheckError::Shape("no timed compiles".to_string()));
    }
    let mut compile_total_ms = 0.0;
    let mut total_warm_starts = 0u64;
    for (i, compile) in compiles.iter().enumerate() {
        let at = format!("compile {i}");
        match compile.get("platform").and_then(Value::as_str) {
            Some(platform) if !platform.is_empty() => {}
            _ => return Err(CheckError::Shape(format!("{at}: missing platform label"))),
        }
        for field in [
            "build_ms",
            "estimator_ms",
            "partition_ms",
            "partition_phase1_ms",
            "partition_phase2_ms",
            "partition_phase3_ms",
            "partition_phase4_ms",
            "finish_ms",
        ] {
            let v = bench_f64(compile, field, &at)?;
            if v < 0.0 {
                return Err(CheckError::Shape(format!("{at}: negative {field}")));
            }
        }
        let total = bench_f64(compile, "total_ms", &at)?;
        if !total.is_finite() || total <= 0.0 {
            return Err(CheckError::Shape(format!("{at}: non-positive total_ms")));
        }
        compile_total_ms += total;
        if bench_u64(compile, "partitions", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero partitions")));
        }
        if bench_u64(compile, "estimate_queries", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero estimate queries")));
        }
        // Every timed compile maps onto >= 2 GPUs with the ILP, so its
        // solver must have visited at least the root node and pivoted.
        if bench_u64(compile, "ilp_nodes", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero ilp_nodes")));
        }
        if bench_u64(compile, "lp_iterations", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero lp_iterations")));
        }
        // The sparse-LU backend counts refactorisations (>= 1 per cold
        // solve) and every solve reports its proven optimality gap.
        bench_u64(compile, "lp_refactorizations", &at)?;
        let gap = bench_f64(compile, "ilp_gap", &at)?;
        if !gap.is_finite() || gap < 0.0 {
            return Err(CheckError::Shape(format!(
                "{at}: ilp_gap must be finite and non-negative, got {gap}"
            )));
        }
        total_warm_starts += bench_u64(compile, "lp_warm_starts", &at)?;
    }
    // A compile whose root relaxation is already integral legitimately
    // reports zero warm starts, but across the whole suite the
    // branch-and-bound searches must have reoptimised dual-warm somewhere.
    if total_warm_starts == 0 {
        return Err(CheckError::Shape(
            "no lp_warm_starts recorded across any compile".to_string(),
        ));
    }
    let synthetic = report
        .get("synthetic_scaling")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("missing synthetic_scaling array".to_string()))?;
    if synthetic.is_empty() {
        return Err(CheckError::Shape(
            "empty synthetic_scaling curve".to_string(),
        ));
    }
    let mut synthetic_max_filters = 0u64;
    for (i, point) in synthetic.iter().enumerate() {
        let at = format!("synthetic point {i}");
        match point.get("app").and_then(Value::as_str) {
            Some(app) if !app.is_empty() => {}
            _ => return Err(CheckError::Shape(format!("{at}: missing app name"))),
        }
        let filters = bench_u64(point, "filters", &at)?;
        if filters == 0 {
            return Err(CheckError::Shape(format!("{at}: zero filters")));
        }
        synthetic_max_filters = synthetic_max_filters.max(filters);
        if bench_u64(point, "partitions", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero partitions")));
        }
        // A synthetic graph is far larger than the coarsening target, so the
        // multilevel pipeline must actually have coarsened.
        if bench_u64(point, "coarsen_levels", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero coarsen levels")));
        }
        for field in [
            "build_ms",
            "estimator_ms",
            "coarsen_ms",
            "initial_ms",
            "refine_ms",
            "partition_ms",
            "map_ms",
        ] {
            let v = bench_f64(point, field, &at)?;
            if v < 0.0 {
                return Err(CheckError::Shape(format!("{at}: negative {field}")));
            }
        }
        let total = bench_f64(point, "total_ms", &at)?;
        if !total.is_finite() || total <= 0.0 {
            return Err(CheckError::Shape(format!("{at}: non-positive total_ms")));
        }
    }
    // The whole point of the curve is to exercise the partitioner past the
    // paper's benchmark sizes.
    if synthetic_max_filters < 10_000 {
        return Err(CheckError::Shape(format!(
            "synthetic_scaling tops out at {synthetic_max_filters} filters (need >= 10000)"
        )));
    }
    // The budget-bounded point proves a node-capped branch-and-bound still
    // returns a feasible mapping and an honest (finite) optimality gap.
    let budget = report
        .get("budget_bounded")
        .ok_or_else(|| CheckError::Shape("missing budget_bounded section".to_string()))?;
    {
        let at = "budget_bounded";
        if bench_u64(budget, "max_nodes", at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero max_nodes")));
        }
        if bench_u64(budget, "partitions", at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero partitions")));
        }
        if bench_u64(budget, "ilp_nodes", at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero ilp_nodes")));
        }
        let gap = bench_f64(budget, "ilp_gap", at)?;
        if !gap.is_finite() || gap < 0.0 {
            return Err(CheckError::Shape(format!(
                "{at}: ilp_gap must be finite and non-negative, got {gap}"
            )));
        }
        let map_ms = bench_f64(budget, "map_ms", at)?;
        if !map_ms.is_finite() || map_ms <= 0.0 {
            return Err(CheckError::Shape(format!("{at}: non-positive map_ms")));
        }
    }
    // The repair section proves the degradation-aware remapping path holds
    // its acceptance bar: much cheaper than a recompile, nearly as good.
    let repair = report
        .get("repair")
        .ok_or_else(|| CheckError::Shape("missing repair section".to_string()))?;
    let repair_speedup;
    {
        let at = "repair";
        if bench_u64(repair, "moved_partitions", at)? == 0 {
            return Err(CheckError::Shape(format!(
                "{at}: no partitions moved off the lost device"
            )));
        }
        let repair_ms = bench_f64(repair, "repair_ms", at)?;
        let recompile_ms = bench_f64(repair, "recompile_ms", at)?;
        if !repair_ms.is_finite() || repair_ms <= 0.0 {
            return Err(CheckError::Shape(format!("{at}: non-positive repair_ms")));
        }
        if !recompile_ms.is_finite() || recompile_ms <= 0.0 {
            return Err(CheckError::Shape(format!(
                "{at}: non-positive recompile_ms"
            )));
        }
        repair_speedup = bench_f64(repair, "speedup", at)?;
        if !repair_speedup.is_finite() || repair_speedup < 5.0 {
            return Err(CheckError::Shape(format!(
                "{at}: repair is only {repair_speedup:.2}x faster than a full recompile (need >= 5x)"
            )));
        }
        let ratio = bench_f64(repair, "objective_ratio", at)?;
        if !ratio.is_finite() || ratio <= 0.0 || ratio > 1.1 {
            return Err(CheckError::Shape(format!(
                "{at}: repaired objective is {ratio:.4}x the recompile objective (need <= 1.1x)"
            )));
        }
    }
    // The stability section proves the robustness preset ran clean and its
    // summary fields are well-formed.
    let stability = report
        .get("stability")
        .ok_or_else(|| CheckError::Shape("missing stability section".to_string()))?;
    let mapping_stability;
    {
        let at = "stability";
        if bench_u64(stability, "points", at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero points")));
        }
        if bench_u64(stability, "failed_points", at)? != 0 {
            return Err(CheckError::Shape(format!("{at}: failed points recorded")));
        }
        let compared = bench_u64(stability, "compared_points", at)?;
        if compared == 0 {
            return Err(CheckError::Shape(format!("{at}: zero compared points")));
        }
        let unchanged = bench_u64(stability, "unchanged_mappings", at)?;
        if unchanged > compared {
            return Err(CheckError::Shape(format!(
                "{at}: {unchanged} unchanged mappings exceed {compared} compared points"
            )));
        }
        mapping_stability = bench_f64(stability, "mapping_stability", at)?;
        if !(0.0..=1.0).contains(&mapping_stability) {
            return Err(CheckError::Shape(format!(
                "{at}: mapping_stability {mapping_stability} outside [0, 1]"
            )));
        }
        let spread = bench_f64(stability, "max_objective_spread", at)?;
        if !spread.is_finite() || spread < 0.0 {
            return Err(CheckError::Shape(format!(
                "{at}: max_objective_spread must be finite and non-negative, got {spread}"
            )));
        }
    }
    let sweep = report
        .get("sweep")
        .ok_or_else(|| CheckError::Shape("missing sweep section".to_string()))?;
    let preloaded = report
        .get("cache_preloaded_entries")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    // A sweep warm-started from a covering cache file must miss nothing; a
    // cold sweep must at least have queried the cache.
    let (sweep_points, sweep_wall_ms) = check_bench_sweep(sweep, "sweep", preloaded > 0)?;
    Ok(BenchCheckSummary {
        compiles: compiles.len(),
        compile_total_ms,
        synthetic_points: synthetic.len(),
        synthetic_max_filters,
        sweep_points,
        sweep_wall_ms,
        repair_speedup,
        mapping_stability,
    })
}

/// What a passing trace file looked like, for the one-line summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCheckSummary {
    /// A Chrome trace-event file (`--trace`).
    Chrome {
        /// Total events in the file.
        events: usize,
        /// Complete (`"ph":"X"`) span events.
        spans: usize,
        /// Instant (`"ph":"i"`) events.
        instants: usize,
        /// Metadata (`"ph":"M"`) events.
        metadata: usize,
    },
    /// An aggregate-metrics file (`--metrics`).
    Metrics {
        /// Distinct counters.
        counters: usize,
        /// Distinct histograms.
        histograms: usize,
        /// Distinct span names.
        spans: usize,
        /// Recorded warnings.
        warnings: usize,
    },
}

impl fmt::Display for TraceCheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCheckSummary::Chrome {
                events,
                spans,
                instants,
                metadata,
            } => write!(
                f,
                "chrome trace ok: {events} events ({spans} spans, {instants} instants, {metadata} metadata)"
            ),
            TraceCheckSummary::Metrics {
                counters,
                histograms,
                spans,
                warnings,
            } => write!(
                f,
                "metrics ok: {counters} counters, {histograms} histograms, {spans} span names, {warnings} warnings"
            ),
        }
    }
}

fn trace_str<'v>(value: &'v Value, field: &str, at: &str) -> Result<&'v str, CheckError> {
    value
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing string '{field}'")))
}

fn trace_num(value: &Value, field: &str, at: &str) -> Result<f64, CheckError> {
    let v = value
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| CheckError::Shape(format!("{at}: missing number '{field}'")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(CheckError::Shape(format!(
            "{at}: '{field}' must be finite and non-negative, got {v}"
        )));
    }
    Ok(v)
}

/// Validates a Chrome trace-event file as the `--trace` exporter writes it.
fn check_chrome_trace(report: &Value) -> Result<TraceCheckSummary, CheckError> {
    let events = report
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("traceEvents is not an array".to_string()))?;
    let (mut spans, mut instants, mut metadata) = (0usize, 0usize, 0usize);
    for (i, event) in events.iter().enumerate() {
        let at = format!("traceEvents[{i}]");
        let name = trace_str(event, "name", &at)?;
        if name.is_empty() {
            return Err(CheckError::Shape(format!("{at}: empty event name")));
        }
        match trace_str(event, "ph", &at)? {
            "X" => {
                trace_num(event, "ts", &at)?;
                trace_num(event, "dur", &at)?;
                trace_num(event, "pid", &at)?;
                trace_num(event, "tid", &at)?;
                spans += 1;
            }
            "i" => {
                trace_num(event, "ts", &at)?;
                match trace_str(event, "s", &at)? {
                    "t" | "p" | "g" => {}
                    s => {
                        return Err(CheckError::Shape(format!("{at}: bad instant scope '{s}'")));
                    }
                }
                instants += 1;
            }
            "M" => {
                let args = event
                    .get("args")
                    .ok_or_else(|| CheckError::Shape(format!("{at}: metadata without args")))?;
                trace_str(args, "name", &at)?;
                metadata += 1;
            }
            ph => return Err(CheckError::Shape(format!("{at}: unknown phase '{ph}'"))),
        }
    }
    if spans == 0 {
        return Err(CheckError::Shape(
            "trace contains no span events".to_string(),
        ));
    }
    Ok(TraceCheckSummary::Chrome {
        events: events.len(),
        spans,
        instants,
        metadata,
    })
}

/// Validates an aggregate-metrics file as the `--metrics` exporter writes it.
fn check_metrics(report: &Value) -> Result<TraceCheckSummary, CheckError> {
    match report.get("version").and_then(Value::as_u64) {
        Some(1) => {}
        other => {
            return Err(CheckError::Shape(format!(
                "unsupported metrics version {other:?}"
            )))
        }
    }
    let counters = report
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| CheckError::Shape("missing counters object".to_string()))?;
    for (name, value) in counters {
        if value.as_u64().is_none() {
            return Err(CheckError::Shape(format!(
                "counter '{name}' is not a non-negative integer"
            )));
        }
    }
    let histograms = report
        .get("histograms")
        .and_then(Value::as_object)
        .ok_or_else(|| CheckError::Shape("missing histograms object".to_string()))?;
    for (name, h) in histograms {
        let at = format!("histogram '{name}'");
        let count = bench_u64(h, "count", &at)?;
        bench_u64(h, "sum", &at)?;
        bench_u64(h, "min", &at)?;
        bench_u64(h, "max", &at)?;
        let buckets = h
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| CheckError::Shape(format!("{at}: missing buckets array")))?;
        let mut total = 0u64;
        for b in buckets {
            total += b
                .as_u64()
                .ok_or_else(|| CheckError::Shape(format!("{at}: non-integer bucket")))?;
        }
        if total != count {
            return Err(CheckError::Shape(format!(
                "{at}: buckets sum to {total} but count is {count}"
            )));
        }
    }
    let spans = report
        .get("spans")
        .and_then(Value::as_object)
        .ok_or_else(|| CheckError::Shape("missing spans object".to_string()))?;
    for (name, s) in spans {
        let at = format!("span '{name}'");
        if bench_u64(s, "count", &at)? == 0 {
            return Err(CheckError::Shape(format!("{at}: zero count")));
        }
        let total = trace_num(s, "total_us", &at)?;
        let max = trace_num(s, "max_us", &at)?;
        if max > total {
            return Err(CheckError::Shape(format!(
                "{at}: max_us {max} exceeds total_us {total}"
            )));
        }
    }
    let warnings = report
        .get("warnings")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("missing warnings array".to_string()))?;
    for (i, w) in warnings.iter().enumerate() {
        let at = format!("warnings[{i}]");
        trace_str(w, "code", &at)?;
        trace_str(w, "message", &at)?;
        trace_num(w, "ts_us", &at)?;
    }
    Ok(TraceCheckSummary::Metrics {
        counters: counters.len(),
        histograms: histograms.len(),
        spans: spans.len(),
        warnings: warnings.len(),
    })
}

/// Validates the JSON text of a trace file written by `sweep --trace` /
/// `perfbench --trace` (Chrome trace-event format) or `--metrics` (the
/// aggregate-metrics format), auto-detected by their top-level keys. This is
/// the validator behind `sweep --check-trace`, used verbatim by CI.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered: a parse error, an
/// unrecognised top-level shape, or a malformed event / counter / histogram /
/// span / warning entry.
pub fn check_trace(src: &str) -> Result<TraceCheckSummary, CheckError> {
    let report = Value::parse(src).map_err(CheckError::Parse)?;
    if report.get("traceEvents").is_some() {
        check_chrome_trace(&report)
    } else if report.get("format").and_then(Value::as_str) == Some("sgmap-metrics") {
        check_metrics(&report)
    } else {
        Err(CheckError::Shape(
            "neither a chrome trace (traceEvents) nor a metrics file (format sgmap-metrics)"
                .to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DedupStats, SweepRecord, SweepReport};
    use crate::spec::{StackConfig, SweepPoint};
    use sgmap_apps::App;
    use sgmap_gpusim::{GpuSpec, PlatformSpec};
    use sgmap_pee::CacheStats;
    use std::time::Duration;

    fn report(records: Vec<SweepRecord>, hits: u64, groups: u64) -> SweepReport {
        let points = records.len() as u64;
        SweepReport {
            spec_name: "t".to_string(),
            records,
            cache: CacheStats {
                hits,
                misses: 2,
                entries: 2,
            },
            dedup: DedupStats {
                expanded_points: points,
                compile_groups: groups,
            },
            stability: None,
            threads: 1,
            wall_clock: Duration::from_millis(1),
        }
    }

    fn point(index: usize) -> SweepPoint {
        SweepPoint {
            index,
            app: App::Des,
            n: 4,
            platform: PlatformSpec::reference(GpuSpec::m2090(), index + 1).named("M2090"),
            stack: StackConfig::ours(),
            enhanced: false,
        }
    }

    fn ok_record(index: usize) -> SweepRecord {
        let mut r = SweepRecord::from_error(&point(index), "placeholder");
        r.error = None;
        r
    }

    #[test]
    fn a_healthy_report_passes_both_renderings() {
        let rep = report(vec![ok_record(0), ok_record(1)], 10, 1);
        for json in [rep.canonical_json(), rep.to_json()] {
            let summary = check_report(&json).unwrap();
            assert_eq!(summary.points, 2);
            assert_eq!(summary.cache_hits, 10);
            assert_eq!(summary.compile_groups, 1);
            assert!(summary.to_string().contains("2 points ok"));
        }
    }

    #[test]
    fn each_failure_mode_is_detected() {
        assert!(matches!(
            check_report("not json"),
            Err(CheckError::Parse(_))
        ));
        assert!(matches!(
            check_report("{\"cache\":{}}"),
            Err(CheckError::Shape(_))
        ));
        assert_eq!(
            check_report(&report(vec![], 10, 1).canonical_json()),
            Err(CheckError::NoPoints)
        );
        let failed = report(
            vec![ok_record(0), SweepRecord::from_error(&point(1), "boom")],
            10,
            1,
        );
        match check_report(&failed.canonical_json()) {
            Err(CheckError::FailedPoints { count, sample }) => {
                assert_eq!(count, 1);
                assert_eq!(sample.len(), 1);
                assert!(sample[0].contains("boom"), "{sample:?}");
            }
            other => panic!("expected FailedPoints, got {other:?}"),
        }
        // The count reports every failure, not just the sampled ones.
        let many = report(
            (0..9)
                .map(|i| SweepRecord::from_error(&point(i % 4), "boom"))
                .collect(),
            10,
            1,
        );
        match check_report(&many.canonical_json()) {
            Err(CheckError::FailedPoints { count, sample }) => {
                assert_eq!(count, 9);
                assert_eq!(sample.len(), 5);
                let shown = CheckError::FailedPoints { count, sample }.to_string();
                assert!(shown.starts_with("9 point(s) failed"), "{shown}");
                assert!(shown.ends_with("; ..."), "{shown}");
            }
            other => panic!("expected FailedPoints, got {other:?}"),
        }
        assert_eq!(
            check_report(&report(vec![ok_record(0)], 0, 1).canonical_json()),
            Err(CheckError::NoCacheHits)
        );
        assert!(matches!(
            check_report(&report(vec![ok_record(0)], 5, 0).canonical_json()),
            Err(CheckError::BadDedup(_))
        ));
        assert!(matches!(
            check_report(&report(vec![ok_record(0)], 5, 3).canonical_json()),
            Err(CheckError::BadDedup(_))
        ));
    }

    #[test]
    fn nonfaulted_comparison_skips_failed_points_and_flags_real_drift() {
        let a = report(vec![ok_record(0), ok_record(1)], 5, 2).canonical_json();
        let mut faulted = vec![ok_record(0), SweepRecord::from_error(&point(1), "boom")];
        faulted[1].index = 1;
        let b = report(faulted, 5, 2).canonical_json();
        // Identical reports compare clean.
        let summary = compare_nonfaulted(&a, &a).unwrap();
        assert_eq!(summary.compared, 2);
        assert_eq!(summary.skipped, 0);
        // A failed point on one side is skipped, not a mismatch.
        let summary = compare_nonfaulted(&a, &b).unwrap();
        assert_eq!(summary.compared, 1);
        assert_eq!(summary.skipped, 1);
        assert!(summary.to_string().contains("1 points byte-identical"));
        // A drifted non-faulted point is an error.
        let drifted = a.replace("\"partitions\":0", "\"partitions\":5");
        let err = compare_nonfaulted(&a, &drifted).unwrap_err();
        assert!(err.to_string().contains("point 0 differs"), "{err}");
        // Length mismatches and parse failures are errors.
        let short = report(vec![ok_record(0)], 5, 1).canonical_json();
        assert!(compare_nonfaulted(&a, &short).is_err());
        assert!(matches!(
            compare_nonfaulted(&a, "nope"),
            Err(CheckError::Parse(_))
        ));
    }

    /// A structurally healthy BENCH.json, as `perfbench` emits it.
    fn bench_json(misses: u64, preloaded: Option<u64>) -> String {
        let preloaded_field = match preloaded {
            Some(n) => format!("\"cache_preloaded_entries\":{n},"),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"version\":4,\"preset\":\"quick\",\"compiles\":[",
                "{{\"app\":\"DES\",\"n\":8,\"platform\":\"Tesla M2090x2\",",
                "\"filters\":34,\"partitions\":8,",
                "\"ilp_nodes\":57,\"lp_iterations\":412,\"lp_warm_starts\":56,",
                "\"lp_refactorizations\":9,\"ilp_gap\":0.0,",
                "\"build_ms\":0.1,\"estimator_ms\":0.2,\"partition_ms\":1.5,",
                "\"partition_phase1_ms\":0.4,\"partition_phase2_ms\":0.3,",
                "\"partition_phase3_ms\":0.5,\"partition_phase4_ms\":0.3,",
                "\"finish_ms\":30.0,\"execute_ms\":0.1,\"total_ms\":31.8,",
                "\"estimate_queries\":126,\"estimate_misses\":88,",
                "\"estimates_per_sec\":84000.0,\"time_per_iteration_us\":12.5}}],",
                "\"synthetic_scaling\":[",
                "{{\"app\":\"SynthPipe\",\"n\":10000,\"filters\":11498,",
                "\"partitions\":67,\"coarsen_levels\":8,",
                "\"build_ms\":5.6,\"estimator_ms\":1.9,\"coarsen_ms\":2200.0,",
                "\"initial_ms\":110.0,\"refine_ms\":900.0,",
                "\"partition_ms\":5608.8,\"map_ms\":88.8,",
                "\"total_ms\":5705.1}}],",
                "\"budget_bounded\":{{\"app\":\"SynthFan\",\"n\":5000,",
                "\"max_nodes\":40,\"partitions\":61,\"ilp_nodes\":41,",
                "\"ilp_gap\":0.0312,\"lp_iterations\":2210,\"map_ms\":120.5}},",
                "\"repair\":{{\"app\":\"FMRadio\",\"n\":16,\"gpus\":4,",
                "\"lost_gpu\":0,\"moved_partitions\":5,",
                "\"repair_ms\":2.4,\"recompile_ms\":84.0,\"speedup\":35.0,",
                "\"repair_tmax_us\":0.081,\"recompile_tmax_us\":0.079,",
                "\"objective_ratio\":1.0253}},",
                "\"stability\":{{\"preset\":\"robustness\",\"points\":38,",
                "\"failed_points\":0,\"wall_ms\":2200.0,",
                "\"baseline_platform\":\"M2090\",\"compared_points\":36,",
                "\"unchanged_mappings\":30,\"mapping_stability\":0.8333,",
                "\"max_objective_spread\":0.4167}},",
                "\"sweep\":{{\"preset\":\"quick\",\"points\":48,\"failed_points\":0,",
                "\"wall_ms\":26000.0,\"cache\":{{\"hits\":1102,\"misses\":{misses},",
                "\"entries\":624,\"hit_rate\":0.64}},",
                "\"dedup\":{{\"expanded_points\":48,\"compile_groups\":16,",
                "\"compiles_saved\":32}}}},",
                "{preloaded}\"meta\":{{\"threads\":1}}}}"
            ),
            misses = misses,
            preloaded = preloaded_field,
        )
    }

    #[test]
    fn exported_traces_pass_the_trace_checker() {
        let collector = sgmap_trace::Collector::new();
        {
            let mut span = collector.span("partition.phase1");
            span.arg("parts", 12u64);
        }
        collector.add("partition.candidates_evaluated", 42);
        collector.record("pee.chars_merged_size", 9);
        collector.instant("sweep.cache_loaded", vec![("entries", 7u64.into())]);
        collector.warning("cache.save_failed", "disk full");
        match check_trace(&collector.chrome_trace_json()).unwrap() {
            TraceCheckSummary::Chrome {
                spans, instants, ..
            } => {
                assert_eq!(spans, 1);
                // The recorded instant plus the warning instant.
                assert_eq!(instants, 2);
            }
            other => panic!("expected a chrome summary, got {other:?}"),
        }
        match check_trace(&collector.metrics_json()).unwrap() {
            TraceCheckSummary::Metrics {
                counters,
                histograms,
                spans,
                warnings,
            } => {
                assert_eq!(counters, 1);
                assert_eq!(histograms, 1);
                assert_eq!(spans, 1);
                assert_eq!(warnings, 1);
            }
            other => panic!("expected a metrics summary, got {other:?}"),
        }
    }

    #[test]
    fn trace_failure_modes_are_detected() {
        assert!(matches!(check_trace("nope"), Err(CheckError::Parse(_))));
        assert!(matches!(check_trace("{}"), Err(CheckError::Shape(_))));
        // A trace with no spans at all is rejected.
        let empty = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
        assert!(matches!(check_trace(empty), Err(CheckError::Shape(_))));
        // A span event with a bad phase.
        let bad_ph = concat!(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\",",
            "\"pid\":1,\"tid\":1,\"ts\":0.0}]}"
        );
        assert!(matches!(check_trace(bad_ph), Err(CheckError::Shape(_))));
        // Metrics whose histogram buckets disagree with the count.
        let bad_hist = concat!(
            "{\"format\":\"sgmap-metrics\",\"version\":1,\"counters\":{},",
            "\"histograms\":{\"h\":{\"count\":3,\"sum\":1,\"min\":0,\"max\":1,",
            "\"buckets\":[1,1]}},\"spans\":{},\"warnings\":[]}"
        );
        let err = check_trace(bad_hist).unwrap_err();
        assert!(err.to_string().contains("buckets sum"), "{err}");
        // An unsupported metrics version.
        let bad_version = "{\"format\":\"sgmap-metrics\",\"version\":2}";
        assert!(matches!(
            check_trace(bad_version),
            Err(CheckError::Shape(_))
        ));
    }

    #[test]
    fn a_healthy_bench_report_passes() {
        let summary = check_bench_report(&bench_json(624, None)).unwrap();
        assert_eq!(summary.compiles, 1);
        assert_eq!(summary.synthetic_points, 1);
        assert_eq!(summary.synthetic_max_filters, 11498);
        assert_eq!(summary.sweep_points, 48);
        assert_eq!(summary.repair_speedup, 35.0);
        assert_eq!(summary.mapping_stability, 0.8333);
        assert!(summary.to_string().contains("48 points"));
        assert!(summary.to_string().contains("11498 filters"));
        assert!(summary.to_string().contains("35.0x faster"));
        // A warm-started report with zero misses passes too.
        check_bench_report(&bench_json(0, Some(624))).unwrap();
    }

    #[test]
    fn bench_failure_modes_are_detected() {
        assert!(matches!(
            check_bench_report("nope"),
            Err(CheckError::Parse(_))
        ));
        assert!(matches!(
            check_bench_report("{\"version\":9}"),
            Err(CheckError::Shape(_))
        ));
        // Version-2 reports (no lp_refactorizations / ilp_gap / budget
        // section) no longer pass.
        assert!(matches!(
            check_bench_report("{\"version\":2}"),
            Err(CheckError::Shape(_))
        ));
        assert!(matches!(
            check_bench_report("{\"version\":3,\"compiles\":[]}"),
            Err(CheckError::Shape(_))
        ));
        // A warm-started sweep that still misses violates the persistence
        // contract.
        let err = check_bench_report(&bench_json(624, Some(624))).unwrap_err();
        assert!(err.to_string().contains("624 misses"), "{err}");
        // Broken counters inside otherwise valid shapes.
        let zero_points = bench_json(624, None).replace("\"points\":48", "\"points\":0");
        assert!(check_bench_report(&zero_points).is_err());
        let failed = bench_json(624, None).replace("\"failed_points\":0", "\"failed_points\":2");
        assert!(check_bench_report(&failed).is_err());
        let bad_dedup =
            bench_json(624, None).replace("\"compile_groups\":16", "\"compile_groups\":0");
        assert!(matches!(
            check_bench_report(&bad_dedup),
            Err(CheckError::BadDedup(_))
        ));
        let no_partitions = bench_json(624, None).replace("\"partitions\":8", "\"partitions\":0");
        assert!(check_bench_report(&no_partitions).is_err());
        // The ILP counters of the revised simplex must be alive: nodes and
        // iterations per compile, warm starts somewhere in the suite.
        for broken in [
            bench_json(624, None).replace("\"ilp_nodes\":57", "\"ilp_nodes\":0"),
            bench_json(624, None).replace("\"lp_iterations\":412", "\"lp_iterations\":0"),
            bench_json(624, None).replace("\"lp_warm_starts\":56", "\"lp_warm_starts\":0"),
            bench_json(624, None).replace("\"ilp_nodes\":57,", ""),
            bench_json(624, None).replace("\"lp_refactorizations\":9,", ""),
            bench_json(624, None).replace("\"ilp_gap\":0.0,", ""),
            // The budget-bounded point is mandatory and must have searched
            // at least one node, a finite gap and a positive wall-clock.
            bench_json(624, None).replace("\"budget_bounded\":", "\"budget_bounded_x\":"),
            bench_json(624, None).replace("\"ilp_nodes\":41", "\"ilp_nodes\":0"),
            bench_json(624, None).replace("\"ilp_gap\":0.0312", "\"ilp_gap\":-0.5"),
            bench_json(624, None).replace("\"map_ms\":120.5", "\"map_ms\":0.0"),
            bench_json(624, None).replace("\"platform\":\"Tesla M2090x2\",", ""),
            bench_json(624, None).replace("\"partition_phase1_ms\":0.4,", ""),
            bench_json(624, None).replace(
                "\"partition_phase3_ms\":0.5",
                "\"partition_phase3_ms\":-0.5",
            ),
            // The synthetic scaling curve is mandatory and must be healthy:
            // present, coarsened, and reaching at least 10k filters.
            bench_json(624, None).replace("\"synthetic_scaling\":[", "\"synthetic_scaling_x\":["),
            bench_json(624, None).replace("\"filters\":11498", "\"filters\":9000"),
            bench_json(624, None).replace("\"coarsen_levels\":8", "\"coarsen_levels\":0"),
            bench_json(624, None).replace("\"coarsen_ms\":2200.0", "\"coarsen_ms\":-1.0"),
            bench_json(624, None).replace("\"refine_ms\":900.0,", ""),
            // The repair section is mandatory and must hold its acceptance
            // bar: >= 5x faster than the recompile, within 10% of its
            // objective, and actually moving work off the lost device.
            bench_json(624, None).replace("\"repair\":", "\"repair_x\":"),
            bench_json(624, None).replace("\"speedup\":35.0", "\"speedup\":3.0"),
            bench_json(624, None).replace("\"objective_ratio\":1.0253", "\"objective_ratio\":1.2"),
            bench_json(624, None).replace("\"moved_partitions\":5", "\"moved_partitions\":0"),
            bench_json(624, None).replace("\"repair_ms\":2.4", "\"repair_ms\":0.0"),
            // The stability section is mandatory and must be well-formed:
            // ran clean, compared something, fraction inside [0, 1].
            bench_json(624, None).replace("\"stability\":", "\"stability_x\":"),
            bench_json(624, None).replace(
                "\"failed_points\":0,\"wall_ms\":2200.0",
                "\"failed_points\":1,\"wall_ms\":2200.0",
            ),
            bench_json(624, None).replace("\"compared_points\":36", "\"compared_points\":0"),
            bench_json(624, None)
                .replace("\"mapping_stability\":0.8333", "\"mapping_stability\":1.5"),
            bench_json(624, None).replace(
                "\"max_objective_spread\":0.4167",
                "\"max_objective_spread\":-1.0",
            ),
        ] {
            let err = check_bench_report(&broken).unwrap_err();
            assert!(matches!(err, CheckError::Shape(_)), "{err}");
        }
        let empty_curve = bench_json(624, None).replace(
            "\"synthetic_scaling\":[{\"app\":\"SynthPipe\"",
            "\"synthetic_scaling\":[],\"ignored\":[{\"app\":\"SynthPipe\"",
        );
        let err = check_bench_report(&empty_curve).unwrap_err();
        assert!(err.to_string().contains("empty synthetic_scaling"), "{err}");
    }
}
