//! Self-checking of sweep reports: the pure-Rust validator behind
//! `sweep --check`.
//!
//! CI used to smoke-check the quick preset with an inline Python script;
//! this module replaces it so the pipeline has no Python dependency and the
//! exact validator CI runs is available to users locally.

use std::fmt;

use crate::json::Value;

/// What a passing report looked like, for the one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSummary {
    /// Number of points in the report.
    pub points: usize,
    /// Shared-cache hits recorded by the sweep.
    pub cache_hits: u64,
    /// Number of expanded grid points according to the dedup counters.
    pub expanded_points: u64,
    /// Number of compile groups that actually ran.
    pub compile_groups: u64,
}

impl fmt::Display for CheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points ok; cache hits {}; {} compiles for {} points ({} saved)",
            self.points,
            self.cache_hits,
            self.compile_groups,
            self.expanded_points,
            self.expanded_points.saturating_sub(self.compile_groups)
        )
    }
}

/// A reason the report failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The file is not valid JSON.
    Parse(String),
    /// A required field is missing or has the wrong shape.
    Shape(String),
    /// The report has no points at all.
    NoPoints,
    /// At least one point carries an error.
    FailedPoints {
        /// Total number of failed points in the report.
        count: usize,
        /// Descriptions of the first few failures.
        sample: Vec<String>,
    },
    /// The shared estimator cache recorded no hits.
    NoCacheHits,
    /// The dedup counters are missing, zero or inconsistent.
    BadDedup(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(msg) => write!(f, "report is not valid JSON: {msg}"),
            CheckError::Shape(msg) => write!(f, "report has unexpected shape: {msg}"),
            CheckError::NoPoints => write!(f, "report contains no points"),
            CheckError::FailedPoints { count, sample } => {
                write!(f, "{count} point(s) failed: {}", sample.join("; "))?;
                if *count > sample.len() {
                    write!(f, "; ...")?;
                }
                Ok(())
            }
            CheckError::NoCacheHits => write!(f, "estimator cache recorded no hits"),
            CheckError::BadDedup(msg) => write!(f, "dedup counters invalid: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

fn require_u64(report: &Value, object: &str, field: &str) -> Result<u64, CheckError> {
    report
        .get(object)
        .and_then(|o| o.get(field))
        .and_then(Value::as_u64)
        .ok_or_else(|| CheckError::Shape(format!("missing counter {object}.{field}")))
}

/// Validates the JSON text of a sweep report: it must parse, contain at
/// least one point, contain no failed points, record at least one shared-
/// cache hit and report consistent, nonzero compile-dedup counters.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered, in the order listed above.
pub fn check_report(src: &str) -> Result<CheckSummary, CheckError> {
    let report = Value::parse(src).map_err(CheckError::Parse)?;
    let points = report
        .get("points")
        .and_then(Value::as_array)
        .ok_or_else(|| CheckError::Shape("missing points array".to_string()))?;
    if points.is_empty() {
        return Err(CheckError::NoPoints);
    }
    let mut failed = 0usize;
    let mut sample = Vec::new();
    for point in points {
        let error = point
            .get("error")
            .ok_or_else(|| CheckError::Shape("point without error field".to_string()))?;
        if !error.is_null() {
            failed += 1;
            if sample.len() < 5 {
                let describe = |field: &str| {
                    point
                        .get(field)
                        .map(|v| v.render())
                        .unwrap_or_else(|| "?".to_string())
                };
                sample.push(format!(
                    "{} N={} G={} {}: {}",
                    describe("app"),
                    describe("n"),
                    describe("gpus"),
                    describe("stack"),
                    error.as_str().unwrap_or("non-string error")
                ));
            }
        }
    }
    if failed > 0 {
        return Err(CheckError::FailedPoints {
            count: failed,
            sample,
        });
    }
    let cache_hits = require_u64(&report, "cache", "hits")?;
    if cache_hits == 0 {
        return Err(CheckError::NoCacheHits);
    }
    let expanded_points = require_u64(&report, "dedup", "expanded_points")?;
    let compile_groups = require_u64(&report, "dedup", "compile_groups")?;
    if compile_groups == 0 {
        return Err(CheckError::BadDedup("zero compile groups".to_string()));
    }
    if compile_groups > expanded_points {
        return Err(CheckError::BadDedup(format!(
            "{compile_groups} compile groups exceed {expanded_points} expanded points"
        )));
    }
    if expanded_points != points.len() as u64 {
        return Err(CheckError::BadDedup(format!(
            "dedup says {expanded_points} expanded points but the report has {}",
            points.len()
        )));
    }
    Ok(CheckSummary {
        points: points.len(),
        cache_hits,
        expanded_points,
        compile_groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DedupStats, SweepRecord, SweepReport};
    use crate::spec::{GpuModel, StackConfig, SweepPoint};
    use sgmap_apps::App;
    use sgmap_pee::CacheStats;
    use std::time::Duration;

    fn report(records: Vec<SweepRecord>, hits: u64, groups: u64) -> SweepReport {
        let points = records.len() as u64;
        SweepReport {
            spec_name: "t".to_string(),
            records,
            cache: CacheStats {
                hits,
                misses: 2,
                entries: 2,
            },
            dedup: DedupStats {
                expanded_points: points,
                compile_groups: groups,
            },
            threads: 1,
            wall_clock: Duration::from_millis(1),
        }
    }

    fn point(index: usize) -> SweepPoint {
        SweepPoint {
            index,
            app: App::Des,
            n: 4,
            gpu_model: GpuModel::M2090,
            gpu_count: index + 1,
            stack: StackConfig::ours(),
            enhanced: false,
        }
    }

    fn ok_record(index: usize) -> SweepRecord {
        let mut r = SweepRecord::from_error(&point(index), "placeholder");
        r.error = None;
        r
    }

    #[test]
    fn a_healthy_report_passes_both_renderings() {
        let rep = report(vec![ok_record(0), ok_record(1)], 10, 1);
        for json in [rep.canonical_json(), rep.to_json()] {
            let summary = check_report(&json).unwrap();
            assert_eq!(summary.points, 2);
            assert_eq!(summary.cache_hits, 10);
            assert_eq!(summary.compile_groups, 1);
            assert!(summary.to_string().contains("2 points ok"));
        }
    }

    #[test]
    fn each_failure_mode_is_detected() {
        assert!(matches!(
            check_report("not json"),
            Err(CheckError::Parse(_))
        ));
        assert!(matches!(
            check_report("{\"cache\":{}}"),
            Err(CheckError::Shape(_))
        ));
        assert_eq!(
            check_report(&report(vec![], 10, 1).canonical_json()),
            Err(CheckError::NoPoints)
        );
        let failed = report(
            vec![ok_record(0), SweepRecord::from_error(&point(1), "boom")],
            10,
            1,
        );
        match check_report(&failed.canonical_json()) {
            Err(CheckError::FailedPoints { count, sample }) => {
                assert_eq!(count, 1);
                assert_eq!(sample.len(), 1);
                assert!(sample[0].contains("boom"), "{sample:?}");
            }
            other => panic!("expected FailedPoints, got {other:?}"),
        }
        // The count reports every failure, not just the sampled ones.
        let many = report(
            (0..9)
                .map(|i| SweepRecord::from_error(&point(i % 4), "boom"))
                .collect(),
            10,
            1,
        );
        match check_report(&many.canonical_json()) {
            Err(CheckError::FailedPoints { count, sample }) => {
                assert_eq!(count, 9);
                assert_eq!(sample.len(), 5);
                let shown = CheckError::FailedPoints { count, sample }.to_string();
                assert!(shown.starts_with("9 point(s) failed"), "{shown}");
                assert!(shown.ends_with("; ..."), "{shown}");
            }
            other => panic!("expected FailedPoints, got {other:?}"),
        }
        assert_eq!(
            check_report(&report(vec![ok_record(0)], 0, 1).canonical_json()),
            Err(CheckError::NoCacheHits)
        );
        assert!(matches!(
            check_report(&report(vec![ok_record(0)], 5, 0).canonical_json()),
            Err(CheckError::BadDedup(_))
        ));
        assert!(matches!(
            check_report(&report(vec![ok_record(0)], 5, 3).canonical_json()),
            Err(CheckError::BadDedup(_))
        ));
    }
}
