//! Parallel experiment-sweep engine for the `sgmap` flow.
//!
//! The paper's evaluation is a grid of (application, size `N`, GPU count,
//! mapper, partitioner, transfer mode) runs. This crate turns that grid into
//! a first-class object:
//!
//! * [`SweepSpec`] — a declarative description of the grid: per-application
//!   `N` axes, named platforms (reference boxes, NVLink islands, clusters,
//!   mixed-model boxes — or the legacy GPU-model × count product), correlated
//!   partitioner/mapper/transfer "stacks" and per-axis [`PointFilter`]s,
//! * [`SweepSpec::expand`] — deterministic expansion into an indexed work
//!   list of [`SweepPoint`]s,
//! * [`run_sweep`] — execution on a scoped worker pool. Points are grouped
//!   by compile key (app, N, estimation device, stack, enhancement); each
//!   group builds its graph and runs the partition search exactly once and
//!   fans the result out to every platform, while all groups share one
//!   thread-safe [`EstimateCache`](sgmap_pee::EstimateCache) and the
//!   partition search inside each compile runs on the same worker-thread
//!   budget,
//! * [`SweepReport`] — per-point [`SweepRecord`]s (throughput, bottleneck
//!   kind, speedup over the 1-GPU baseline) plus cache and compile-dedup
//!   statistics, rendered as stable JSON,
//! * [`check_report`] — the pure-Rust report validator behind
//!   `sweep --check`, used verbatim by CI.
//!
//! Reports are deterministic by construction: points are reassembled in
//! work-list order, the ILP budget is node-bound rather than wall-clock
//! bound, and the single-flight cache makes even the hit/miss counters
//! independent of thread scheduling. Running the same spec with 1 or N
//! worker threads therefore renders byte-identical
//! [`SweepReport::canonical_json`].
//!
//! ```rust
//! use sgmap_sweep::{run_sweep, AppSweep, GpuModel, StackConfig, SweepSpec};
//! use sgmap_apps::App;
//!
//! let spec = SweepSpec::new(
//!     "doc",
//!     vec![AppSweep::explicit(App::FmRadio, vec![4])],
//!     vec![GpuModel::M2090],
//!     vec![1, 2],
//!     vec![StackConfig::ours()],
//! );
//! let report = run_sweep(&spec, 2).unwrap();
//! assert_eq!(report.records.len(), 2);
//! assert!(report.records.iter().all(|r| r.is_ok()));
//! ```
//!
//! The `sweep` binary exposes the named presets on the command line; see the
//! repository README's "Running sweeps" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache_io;
mod check;
mod json;
mod platform_json;
mod report;
mod runner;
mod spec;
mod spec_json;

pub use cache_io::{
    cache_from_json, cache_to_json, load_cache_file, load_cache_file_if_exists, save_cache_file,
    CACHE_FORMAT_VERSION,
};
pub use check::{
    check_bench_report, check_report, check_trace, compare_nonfaulted, BenchCheckSummary,
    CheckError, CheckSummary, CompareSummary, TraceCheckSummary,
};
pub use json::Value as JsonValue;
pub use platform_json::{
    platform_spec_from_json, platform_spec_from_value, platform_spec_to_json,
    platform_spec_to_value,
};
pub use report::{Bottleneck, DedupStats, StabilityReport, SweepRecord, SweepReport};
pub use runner::{
    default_threads, run_sweep, run_sweep_traced, run_sweep_with_cache, run_sweep_with_cache_traced,
};
pub use spec::{
    mapper_name, partitioner_name, transfer_name, AppSweep, FaultInjectionSpec, GpuModel,
    PointFilter, StackConfig, SweepError, SweepPoint, SweepSpec,
};
pub use spec_json::{
    sweep_spec_from_json, sweep_spec_from_value, sweep_spec_to_json, sweep_spec_to_value,
};
