//! Parallel execution of an expanded sweep.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sgmap_core::{compile_with_estimator, execute, FlowConfig};
use sgmap_pee::{EstimateCache, Estimator};

use crate::report::{SweepRecord, SweepReport};
use crate::spec::{SweepError, SweepPoint, SweepSpec};

/// The number of worker threads `run_sweep` uses when the caller passes 0:
/// the machine's available parallelism, capped at 8 (points are coarse
/// enough that more workers only add scheduling noise).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Expands `spec` and executes every point on `threads` worker threads
/// (0 = [`default_threads`]). Workers pull points from a shared queue, so a
/// slow point never stalls the rest of the grid; results are reassembled in
/// work-list order, which makes the report independent of scheduling.
///
/// All points share one [`EstimateCache`], so estimation work done for one
/// point (say, DES at N=8 on 1 GPU) is reused by every other point that asks
/// the same physical question (DES at N=8 on 4 GPUs, or with a different
/// mapper). Points that fail to build or compile become error records rather
/// than aborting the sweep.
///
/// # Errors
///
/// Returns an error if the spec fails validation.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a bug in the flow itself, not a
/// recoverable per-point failure).
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SweepError> {
    let points = spec.expand()?;
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(points.len().max(1));
    let cache = EstimateCache::shared();
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SweepRecord>>> = Mutex::new(vec![None; points.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let record = run_point(spec, &points[i], &cache);
                results.lock().expect("sweep results lock poisoned")[i] = Some(record);
            });
        }
    });

    let mut records: Vec<SweepRecord> = results
        .into_inner()
        .expect("sweep results lock poisoned")
        .into_iter()
        .map(|r| r.expect("every point produces a record"))
        .collect();
    attach_speedups(&mut records);

    Ok(SweepReport {
        spec_name: spec.name.clone(),
        records,
        cache: cache.stats(),
        threads,
        wall_clock: started.elapsed(),
    })
}

/// Runs a single expanded point against the shared cache.
fn run_point(spec: &SweepSpec, point: &SweepPoint, cache: &Arc<EstimateCache>) -> SweepRecord {
    let graph = match point.app.build(point.n) {
        Ok(graph) => graph,
        Err(e) => return SweepRecord::from_error(point, e),
    };
    let mut config = FlowConfig::new()
        .with_gpu(point.gpu_model.spec())
        .with_gpu_count(point.gpu_count)
        .with_partitioner(point.stack.partitioner)
        .with_mapper(point.stack.mapper)
        .with_enhancement(point.enhanced);
    config.mapping_options = spec.mapping_options.clone();
    config.plan = spec.plan.clone();
    // The stack axis is authoritative for routing; the spec-level plan only
    // contributes the fragment/iteration shape.
    config.plan.transfer_mode = point.stack.transfer_mode;

    let estimator = match Estimator::new(&graph, config.gpu.clone()) {
        Ok(est) => est
            .with_enhancement(point.enhanced)
            .with_shared_cache(cache.clone()),
        Err(e) => return SweepRecord::from_error(point, e),
    };
    match compile_with_estimator(&graph, &config, &estimator) {
        Ok(compiled) => SweepRecord::from_run(point, &execute(&compiled, &config)),
        Err(e) => SweepRecord::from_error(point, e),
    }
}

/// Fills `speedup_vs_1gpu` for every record whose (app, N, model, stack,
/// enhancement) group also contains a successful 1-GPU record.
fn attach_speedups(records: &mut [SweepRecord]) {
    let baselines: Vec<(usize, f64)> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_ok() && r.gpus == 1 && r.time_per_iteration_us > 0.0)
        .map(|(i, r)| (i, r.time_per_iteration_us))
        .collect();
    for (baseline_idx, baseline_time) in baselines {
        let group = {
            let r = &records[baseline_idx];
            (r.app, r.n, r.gpu_model.clone(), r.stack.clone(), r.enhanced)
        };
        for record in records.iter_mut() {
            let same_group = record.scaling_group()
                == (
                    group.0,
                    group.1,
                    group.2.as_str(),
                    group.3.as_str(),
                    group.4,
                );
            if same_group && record.is_ok() && record.time_per_iteration_us > 0.0 {
                record.speedup_vs_1gpu = Some(baseline_time / record.time_per_iteration_us);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSweep, GpuModel, StackConfig};
    use sgmap_apps::App;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new(
            "tiny",
            vec![AppSweep::explicit(App::FmRadio, vec![4])],
            vec![GpuModel::M2090],
            vec![1, 2],
            vec![StackConfig::ours()],
        )
    }

    #[test]
    fn a_tiny_sweep_runs_and_reports_speedups() {
        let report = run_sweep(&tiny_spec(), 2).unwrap();
        assert_eq!(report.records.len(), 2);
        assert!(report.records.iter().all(|r| r.is_ok()), "{report:?}");
        let one = report.find(App::FmRadio, 4, 1, "ours", None, None).unwrap();
        let two = report.find(App::FmRadio, 4, 2, "ours", None, None).unwrap();
        assert_eq!(one.speedup_vs_1gpu, Some(1.0));
        assert!(two.speedup_vs_1gpu.unwrap() > 0.0);
        assert!(report.cache.misses > 0);
    }

    #[test]
    fn unbuildable_points_become_error_records() {
        // FFT requires a power-of-two N; 7 cannot build.
        let mut spec = tiny_spec();
        spec.apps = vec![AppSweep::explicit(App::Fft, vec![7])];
        spec.gpu_counts = vec![1];
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].error.is_some());
        assert_eq!(report.records[0].time_per_iteration_us, 0.0);
    }
}
