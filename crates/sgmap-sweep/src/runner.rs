//! Parallel execution of an expanded sweep, deduplicated by compile group.
//!
//! Partitioning depends only on (application, N, estimation device, stack,
//! enhancement) — never on the platform's GPU count or interconnect shape —
//! so the runner groups expanded points by that key, compiles each group
//! exactly once (graph construction, profiling and the partition search all
//! happen once per group) and fans the compiled
//! [`PartitionStage`](sgmap_core::PartitionStage) out to every platform in
//! the group. On the quick preset this cuts the number of partition searches
//! to a third of the point count.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sgmap_apps::App;
use sgmap_core::{
    compile_from_stage, execute, partition_graph, FlowConfig, PartitionSearchOptions,
};
use sgmap_mapping::Mapping;
use sgmap_pee::{EstimateCache, Estimator};

use crate::report::{DedupStats, StabilityReport, SweepRecord, SweepReport};
use crate::spec::{SweepError, SweepPoint, SweepSpec};

/// How many times a point is attempted before its transient failure is
/// recorded: the first attempt plus two retries. Only errors classified as
/// transient by [`is_transient`] are retried; everything else (including
/// panics) fails on first occurrence.
const MAX_ATTEMPTS: usize = 3;

/// Classifies a per-point failure as transient (worth retrying) or
/// permanent. The flow marks retryable conditions by prefixing the message
/// with `transient:`; everything else — model errors, invalid points,
/// panics — is deterministic and retrying it would only repeat the failure.
fn is_transient(message: &str) -> bool {
    message.starts_with("transient:") || message.contains(" transient:")
}

/// Renders a caught panic payload as a message (panics carry `&str` or
/// `String` payloads in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Deterministic backoff between retry attempts: a bounded number of
/// scheduler yields instead of a wall-clock sleep, so retried sweeps stay
/// byte-identical and fast under test.
fn backoff(attempt: usize) {
    for _ in 0..(attempt + 1) * 16 {
        std::thread::yield_now();
    }
}

/// The canonical partition→GPU assignment rendering recorded on
/// stability-aware sweeps.
fn mapping_signature(mapping: &Mapping) -> String {
    let parts: Vec<String> = mapping.assignment.iter().map(ToString::to_string).collect();
    parts.join(",")
}

/// The number of worker threads `run_sweep` uses when the caller passes 0:
/// the machine's available parallelism, capped at 8 (points are coarse
/// enough that more workers only add scheduling noise). This is the same
/// auto-resolution the partition search applies, so "both levels share one
/// thread budget" also holds for the auto case.
pub fn default_threads() -> usize {
    PartitionSearchOptions::new()
        .with_threads(0)
        .resolved_threads()
}

/// The key everything platform-shape-independent hangs off: two points with
/// equal keys share one graph, one estimator, one partition search. The
/// platform contributes only its estimation device (by name — device models
/// are assumed to have distinct names, which
/// [`SweepSpec::validate`](crate::SweepSpec::validate) enforces per platform
/// name), so a reference box, an NVLink-island box and a cluster that all
/// estimate on the same GPU share one compile.
type CompileKey<'p> = (App, u32, &'p str, &'p str, bool);

fn compile_key(point: &SweepPoint) -> CompileKey<'_> {
    (
        point.app,
        point.n,
        point.platform.primary_gpu().name.as_str(),
        point.stack.label.as_str(),
        point.enhanced,
    )
}

/// Groups point indices by compile key, in first-appearance (work-list)
/// order. Within a group the indices stay in work-list order too, so the
/// grouping is deterministic for a given expansion.
fn group_points(points: &[SweepPoint]) -> Vec<Vec<usize>> {
    let mut by_key: HashMap<CompileKey<'_>, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, point) in points.iter().enumerate() {
        let g = *by_key.entry(compile_key(point)).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    groups
}

/// Expands `spec` and executes every point on `threads` worker threads
/// (0 = [`default_threads`]). Workers pull *compile groups* from a shared
/// queue: each group builds its graph, profiles it and runs the partition
/// search once, then maps and executes every GPU count in the group against
/// that shared artefact. The same thread count is handed to the partition
/// search inside each compile, so one large compile also scales.
///
/// All groups share one [`EstimateCache`], so estimation work done for one
/// group (say, DES at N=8 with the proposed partitioner) is reused by every
/// other group that asks the same physical question (another mapper, another
/// GPU model with equal relevant limits). Points that fail to build or
/// compile become error records rather than aborting the sweep; results are
/// reassembled in work-list order, which makes the report independent of
/// scheduling.
///
/// When the spec names a [`cache_file`](SweepSpec::cache_file), the shared
/// cache is warm-started from that file (if it exists) before the sweep and
/// saved back — merged with the new entries — afterwards, so a repeated
/// sweep answers every shared-cache query without recomputation.
///
/// # Errors
///
/// Returns an error if the spec fails validation or its cache file exists
/// but cannot be read, parsed or written.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a bug in the flow itself, not a
/// recoverable per-point failure).
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepReport, SweepError> {
    run_sweep_traced(spec, threads, None)
}

/// [`run_sweep`] with an optional trace collector: compile groups and points
/// run under `sweep.group` / `sweep.point` spans, cache persistence emits
/// `sweep.cache_loaded` / `sweep.cache_saved` instants, and a failed cache
/// save becomes a structured `cache.save_failed` warning instead of a bare
/// stderr line. The collector is write-only, so the report is byte-identical
/// with and without it.
///
/// # Errors
///
/// Same as [`run_sweep`].
///
/// # Panics
///
/// Same as [`run_sweep`].
pub fn run_sweep_traced(
    spec: &SweepSpec,
    threads: usize,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<SweepReport, SweepError> {
    let cache = EstimateCache::shared();
    match &spec.cache_file {
        None => run_sweep_with_cache_traced(spec, threads, cache, trace),
        Some(path) => {
            // A corrupt or version-mismatched cache file degrades to a cold
            // start by default — the cache is an optimisation, not an input.
            // `strict_cache` turns that degradation into a hard error for
            // pipelines that must notice a damaged cache.
            match crate::cache_io::load_cache_file_if_exists(path, &cache) {
                Ok(_) => sgmap_trace::instant(
                    trace,
                    "sweep.cache_loaded",
                    vec![("entries", (cache.len() as u64).into())],
                ),
                Err(e) if spec.strict_cache => return Err(SweepError::CacheIo(e)),
                Err(e) => sgmap_trace::warn(
                    trace,
                    "cache.load_failed",
                    format!("estimate cache ignored (cold start): {e}"),
                ),
            }
            let report = run_sweep_with_cache_traced(spec, threads, cache.clone(), trace)?;
            // Saving is an optimisation for the *next* run; failing to write
            // it must not throw away the sweep that just completed.
            match crate::cache_io::save_cache_file(path, &cache) {
                Ok(entries) => sgmap_trace::instant(
                    trace,
                    "sweep.cache_saved",
                    vec![("entries", entries.into())],
                ),
                Err(e) => sgmap_trace::warn(
                    trace,
                    "cache.save_failed",
                    format!("estimate cache not persisted: {e}"),
                ),
            }
            Ok(report)
        }
    }
}

/// Like [`run_sweep`], but answers estimation queries from (and records them
/// into) a caller-supplied shared cache — the hook batch drivers and the
/// persistent-cache plumbing use. The report's cache counters are the
/// cache's totals at the end of the sweep, so a warm-started cache reports
/// fewer misses than a cold one (and zero once fully warmed).
///
/// # Errors
///
/// Returns an error if the spec fails validation.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a bug in the flow itself, not a
/// recoverable per-point failure).
pub fn run_sweep_with_cache(
    spec: &SweepSpec,
    threads: usize,
    cache: Arc<EstimateCache>,
) -> Result<SweepReport, SweepError> {
    run_sweep_with_cache_traced(spec, threads, cache, None)
}

/// [`run_sweep_with_cache`] with an optional trace collector (see
/// [`run_sweep_traced`]).
///
/// # Errors
///
/// Returns an error if the spec fails validation.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a bug in the flow itself, not a
/// recoverable per-point failure).
pub fn run_sweep_with_cache_traced(
    spec: &SweepSpec,
    threads: usize,
    cache: Arc<EstimateCache>,
    trace: sgmap_trace::TraceRef<'_>,
) -> Result<SweepReport, SweepError> {
    let points = spec.expand()?;
    let groups = group_points(&points);
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let workers = threads.min(groups.len().max(1));
    // When there are fewer groups than threads (e.g. one combination swept
    // over the GPU-count axis), the spare threads go to the per-point
    // mapping/execution inside each group, so a thin grid still uses the
    // whole budget.
    let point_threads = (threads / workers.max(1)).max(1);
    // The partition search inside each compile uses the same thread count as
    // the sweep itself; the batch size is a fixed constant, so the report —
    // including every cache counter — is byte-identical for any `threads`.
    let search = PartitionSearchOptions::new().with_threads(threads);
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SweepRecord>>> = Mutex::new(vec![None; points.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= groups.len() {
                    break;
                }
                // A panic anywhere in the group's compile phase (or one that
                // escapes the per-point isolation) fails that group's points
                // with structured error records instead of taking down the
                // sweep; the payload is deterministic, so the records are
                // too.
                let group_records = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_group(
                        spec,
                        &points,
                        &groups[g],
                        &cache,
                        &search,
                        point_threads,
                        trace,
                    )
                }))
                .unwrap_or_else(|payload| {
                    let msg = panic_message(payload.as_ref());
                    sgmap_trace::add(trace, "sweep.panics_caught", 1);
                    sgmap_trace::warn(
                        trace,
                        "sweep.group_panicked",
                        format!("compile group panicked; its points failed: {msg}"),
                    );
                    groups[g]
                        .iter()
                        .map(|&i| {
                            (
                                i,
                                SweepRecord::from_error(&points[i], format!("panic: {msg}")),
                            )
                        })
                        .collect()
                });
                let mut results = results.lock().expect("sweep results lock poisoned");
                for (i, record) in group_records {
                    results[i] = Some(record);
                }
            });
        }
    });

    let mut records: Vec<SweepRecord> = results
        .into_inner()
        .expect("sweep results lock poisoned")
        .into_iter()
        .map(|r| r.expect("every point produces a record"))
        .collect();
    attach_speedups(&mut records);
    let stability = spec
        .stability_baseline
        .as_deref()
        .map(|baseline| StabilityReport::compute(&records, baseline));
    sgmap_trace::add(trace, "sweep.points", points.len() as u64);
    sgmap_trace::add(trace, "sweep.compile_groups", groups.len() as u64);

    Ok(SweepReport {
        spec_name: spec.name.clone(),
        records,
        cache: cache.stats(),
        dedup: DedupStats {
            expanded_points: points.len() as u64,
            compile_groups: groups.len() as u64,
        },
        stability,
        threads,
        wall_clock: started.elapsed(),
    })
}

/// The per-point flow configuration (the platform and the stack's routing
/// knobs vary inside a group; everything else is shared).
fn point_config(
    spec: &SweepSpec,
    point: &SweepPoint,
    search: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> FlowConfig {
    let mut config = FlowConfig::new()
        .with_platform(point.platform.clone())
        .with_partitioner(point.stack.partitioner)
        .with_algorithm(point.stack.algorithm.clone())
        .with_mapper(point.stack.mapper)
        .with_enhancement(point.enhanced)
        .with_partition_search(search.clone());
    config.mapping_options = spec.mapping_options.clone();
    config.plan = spec.plan.clone();
    // The stack axis is authoritative for routing; the spec-level plan only
    // contributes the fragment/iteration shape.
    config.plan.transfer_mode = point.stack.transfer_mode;
    if let Some(collector) = trace {
        config = config.with_trace(collector.clone());
    }
    config
}

/// Maps `f` over `0..n` on `threads` scoped worker threads, returning the
/// results in index order (inline for a single thread or item).
fn par_collect<R: Send>(threads: usize, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                results.lock().expect("point results lock poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("point results lock poisoned")
        .into_iter()
        .map(|r| r.expect("every index is mapped"))
        .collect()
}

/// Compiles one group (graph, estimator, partition stage — all built once)
/// and executes every point in it on `point_threads` threads, returning
/// `(point index, record)` pairs.
#[allow(clippy::too_many_arguments)]
fn run_group(
    spec: &SweepSpec,
    points: &[SweepPoint],
    group: &[usize],
    cache: &Arc<EstimateCache>,
    search: &PartitionSearchOptions,
    point_threads: usize,
    trace: sgmap_trace::TraceRef<'_>,
) -> Vec<(usize, SweepRecord)> {
    let fail_all = |message: String| -> Vec<(usize, SweepRecord)> {
        group
            .iter()
            .map(|&i| (i, SweepRecord::from_error(&points[i], &message)))
            .collect()
    };
    let first = &points[group[0]];
    let mut group_span = sgmap_trace::span(trace, "sweep.group");
    group_span.arg("app", first.app.name());
    group_span.arg("n", u64::from(first.n));
    group_span.arg("stack", first.stack.label.as_str());
    group_span.arg("points", group.len());
    let graph = match first.app.build_traced(first.n, trace) {
        Ok(graph) => graph,
        Err(e) => return fail_all(e.to_string()),
    };
    let estimator = match Estimator::new(&graph, first.platform.primary_gpu().clone()) {
        Ok(est) => est
            .with_enhancement(first.enhanced)
            .with_shared_cache(cache.clone())
            .with_trace(trace.cloned()),
        Err(e) => return fail_all(e.to_string()),
    };
    let stage = match partition_graph(
        &graph,
        &point_config(spec, first, search, trace),
        &estimator,
    ) {
        Ok(stage) => stage,
        Err(e) => return fail_all(e.to_string()),
    };
    par_collect(point_threads, group.len(), |k| {
        let i = group[k];
        let point = &points[i];
        let mut point_span = sgmap_trace::span(trace, "sweep.point");
        point_span.arg("app", point.app.name());
        point_span.arg("n", u64::from(point.n));
        point_span.arg("platform", point.platform.name.as_str());
        (
            i,
            run_point(spec, point, &graph, &estimator, &stage, search, trace),
        )
    })
}

/// Maps and executes one point in isolation: each attempt runs under
/// `catch_unwind`, transient-classified failures are retried up to
/// [`MAX_ATTEMPTS`] times with a deterministic backoff, and panics become
/// structured error records rather than taking the worker (and the sweep)
/// down.
fn run_point(
    spec: &SweepSpec,
    point: &SweepPoint,
    graph: &sgmap_graph::StreamGraph,
    estimator: &Estimator<'_>,
    stage: &sgmap_core::PartitionStage,
    search: &PartitionSearchOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> SweepRecord {
    let attempt_once = |attempt: usize| -> Result<SweepRecord, String> {
        if spec.inject.panic_points.contains(&point.index) {
            panic!("injected panic at point {}", point.index);
        }
        if attempt == 0 && spec.inject.transient_points.contains(&point.index) {
            return Err(format!(
                "transient: injected transient fault at point {}",
                point.index
            ));
        }
        let config = point_config(spec, point, search, trace);
        match compile_from_stage(graph, &config, estimator, stage) {
            Ok(compiled) => {
                let run = execute(&compiled, &config);
                let mut record = SweepRecord::from_run(point, &run);
                if spec.stability_baseline.is_some() {
                    record.mapping_signature = Some(mapping_signature(&run.mapping));
                }
                Ok(record)
            }
            Err(e) => Err(e.to_string()),
        }
    };
    let mut last_error = String::new();
    for attempt in 0..MAX_ATTEMPTS {
        match std::panic::catch_unwind(AssertUnwindSafe(|| attempt_once(attempt))) {
            Ok(Ok(record)) => return record,
            Ok(Err(message)) => {
                let retryable = is_transient(&message) && attempt + 1 < MAX_ATTEMPTS;
                last_error = message;
                if !retryable {
                    break;
                }
                sgmap_trace::add(trace, "sweep.retries", 1);
                sgmap_trace::warn(
                    trace,
                    "sweep.point_retried",
                    format!(
                        "point {} attempt {} failed transiently; retrying: {last_error}",
                        point.index,
                        attempt + 1
                    ),
                );
                backoff(attempt);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                sgmap_trace::add(trace, "sweep.panics_caught", 1);
                sgmap_trace::warn(
                    trace,
                    "sweep.point_panicked",
                    format!("point {} panicked: {msg}", point.index),
                );
                last_error = format!("panic: {msg}");
                break;
            }
        }
    }
    SweepRecord::from_error(point, &last_error)
}

/// Fills `speedup_vs_1gpu` for every record whose (app, N, model, stack,
/// enhancement) group also contains a successful 1-GPU record. Baselines are
/// indexed by scaling-group key, so this is one pass over the records
/// instead of a rescan per baseline.
fn attach_speedups(records: &mut [SweepRecord]) {
    type GroupKey = (App, u32, String, String, bool);
    let mut baselines: HashMap<GroupKey, f64> = HashMap::new();
    for r in records.iter() {
        if r.is_ok() && r.gpus == 1 && r.time_per_iteration_us > 0.0 {
            baselines
                .entry((r.app, r.n, r.gpu_model.clone(), r.stack.clone(), r.enhanced))
                .or_insert(r.time_per_iteration_us);
        }
    }
    for record in records.iter_mut() {
        if !record.is_ok() || record.time_per_iteration_us <= 0.0 {
            continue;
        }
        let key = (
            record.app,
            record.n,
            record.gpu_model.clone(),
            record.stack.clone(),
            record.enhanced,
        );
        if let Some(&baseline_time) = baselines.get(&key) {
            record.speedup_vs_1gpu = Some(baseline_time / record.time_per_iteration_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSweep, GpuModel, StackConfig};
    use sgmap_apps::App;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new(
            "tiny",
            vec![AppSweep::explicit(App::FmRadio, vec![4])],
            vec![GpuModel::M2090],
            vec![1, 2],
            vec![StackConfig::ours()],
        )
    }

    #[test]
    fn a_tiny_sweep_runs_and_reports_speedups() {
        let report = run_sweep(&tiny_spec(), 2).unwrap();
        assert_eq!(report.records.len(), 2);
        assert!(report.records.iter().all(|r| r.is_ok()), "{report:?}");
        let one = report.find(App::FmRadio, 4, 1, "ours", None, None).unwrap();
        let two = report.find(App::FmRadio, 4, 2, "ours", None, None).unwrap();
        assert_eq!(one.speedup_vs_1gpu, Some(1.0));
        assert!(two.speedup_vs_1gpu.unwrap() > 0.0);
        assert!(report.cache.misses > 0);
    }

    #[test]
    fn points_that_differ_only_in_gpu_count_share_one_compile_group() {
        let report = run_sweep(&tiny_spec(), 1).unwrap();
        // One (app, N, model, stack, enhancement) combination swept over two
        // GPU counts: two points, one compile.
        assert_eq!(report.dedup.expanded_points, 2);
        assert_eq!(report.dedup.compile_groups, 1);
        assert_eq!(report.dedup.compiles_saved(), 1);
    }

    #[test]
    fn grouping_preserves_work_list_order() {
        let mut spec = tiny_spec();
        spec.apps = vec![
            AppSweep::explicit(App::FmRadio, vec![4]),
            AppSweep::explicit(App::MatMul2, vec![2]),
        ];
        spec.stacks = vec![StackConfig::ours(), StackConfig::previous()];
        let points = spec.expand().unwrap();
        let groups = group_points(&points);
        // 2 apps x 2 stacks = 4 groups of 2 GPU counts each.
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 2));
        // Groups appear in work-list order of their first point, and indices
        // inside each group ascend.
        let firsts: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        assert!(groups.iter().all(|g| g.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn unbuildable_points_become_error_records() {
        // FFT requires a power-of-two N; 7 cannot build.
        let mut spec = tiny_spec();
        spec.apps = vec![AppSweep::explicit(App::Fft, vec![7])];
        spec.platforms.truncate(1);
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].error.is_some());
        assert_eq!(report.records[0].time_per_iteration_us, 0.0);
        // A failed group still counts as a group.
        assert_eq!(report.dedup.compile_groups, 1);
    }
}
