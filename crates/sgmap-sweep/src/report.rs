//! Sweep records and the JSON report.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use sgmap_apps::App;
use sgmap_core::RunReport;
use sgmap_pee::CacheStats;

use crate::json::Value;
use crate::spec::{mapper_name, partitioner_name, transfer_name, SweepPoint};

/// What limited the throughput of a point, judged from the mapping's
/// predicted per-GPU and per-link busy times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The busiest GPU bounds the throughput.
    Compute,
    /// The busiest PCIe link bounds the throughput.
    Interconnect,
}

impl Bottleneck {
    /// Stable lower-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Interconnect => "interconnect",
        }
    }
}

/// The serializable outcome of one sweep point — a [`RunReport`] flattened
/// into the stable record shape the JSON report emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Position in the deterministic work list.
    pub index: usize,
    /// The application.
    pub app: App,
    /// The size parameter.
    pub n: u32,
    /// Platform name (the GPU-model short name for reference-tree platforms
    /// expanded from a model × count grid, e.g. `"M2090"`; the platform's
    /// own name, e.g. `"nvlink8"`, otherwise).
    pub gpu_model: String,
    /// Number of GPUs in the platform.
    pub gpus: usize,
    /// Stack label (e.g. `"ours"`).
    pub stack: String,
    /// Partitioner name.
    pub partitioner: String,
    /// Mapper name.
    pub mapper: String,
    /// Transfer-mode name.
    pub transfer: String,
    /// Whether the Chapter-V enhancement was applied.
    pub enhanced: bool,
    /// The failure message when the point could not be compiled (all
    /// measurement fields are zero in that case).
    pub error: Option<String>,
    /// Number of partitions the graph was compiled into.
    pub partitions: usize,
    /// GPUs actually used by the mapping.
    pub gpus_used: usize,
    /// Average time per steady-state iteration, microseconds.
    pub time_per_iteration_us: f64,
    /// End-to-end makespan, microseconds.
    pub makespan_us: f64,
    /// The mapper's predicted bottleneck time, microseconds.
    pub predicted_tmax_us: f64,
    /// What limited the throughput (`None` for failed points).
    pub bottleneck: Option<Bottleneck>,
    /// Speedup over the matching 1-GPU point of the same (app, N, model,
    /// stack, enhancement) group, when that point exists in the sweep.
    pub speedup_vs_1gpu: Option<f64>,
    /// Canonical rendering of the mapping's partition→GPU assignment
    /// (indices joined by `","`), recorded only on sweeps that request a
    /// stability analysis ([`SweepSpec::stability_baseline`]). `None`
    /// elsewhere, and omitted from the JSON when `None`, so reports from
    /// other presets keep their historical byte shape.
    ///
    /// [`SweepSpec::stability_baseline`]: crate::SweepSpec::stability_baseline
    #[serde(default)]
    pub mapping_signature: Option<String>,
}

impl SweepRecord {
    /// Builds the record for a successfully executed point.
    pub fn from_run(point: &SweepPoint, report: &RunReport) -> Self {
        let max_gpu = report
            .mapping
            .per_gpu_time_us
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        let max_link = report
            .mapping
            .per_link_time_us
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        let bottleneck = if max_link > max_gpu {
            Bottleneck::Interconnect
        } else {
            Bottleneck::Compute
        };
        SweepRecord {
            partitions: report.partition_count,
            gpus_used: report.mapping.gpus_used(),
            time_per_iteration_us: report.time_per_iteration_us,
            makespan_us: report.makespan_us,
            predicted_tmax_us: report.mapping.predicted_tmax_us,
            bottleneck: Some(bottleneck),
            error: None,
            ..SweepRecord::empty(point)
        }
    }

    /// Builds the record for a point that failed to compile.
    pub fn from_error(point: &SweepPoint, error: impl std::fmt::Display) -> Self {
        SweepRecord {
            error: Some(error.to_string()),
            ..SweepRecord::empty(point)
        }
    }

    fn empty(point: &SweepPoint) -> Self {
        SweepRecord {
            index: point.index,
            app: point.app,
            n: point.n,
            gpu_model: point.platform.name.clone(),
            gpus: point.platform.gpu_count(),
            stack: point.stack.label.clone(),
            partitioner: partitioner_name(point.stack.partitioner).to_string(),
            mapper: mapper_name(point.stack.mapper).to_string(),
            transfer: transfer_name(point.stack.transfer_mode).to_string(),
            enhanced: point.enhanced,
            error: None,
            partitions: 0,
            gpus_used: 0,
            time_per_iteration_us: 0.0,
            makespan_us: 0.0,
            predicted_tmax_us: 0.0,
            bottleneck: None,
            speedup_vs_1gpu: None,
            mapping_signature: None,
        }
    }

    /// `true` when the point compiled and ran.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("index", Value::Uint(self.index as u64)),
            ("app", Value::str(self.app.name())),
            ("n", Value::Uint(u64::from(self.n))),
            ("gpu_model", Value::str(&*self.gpu_model)),
            ("gpus", Value::Uint(self.gpus as u64)),
            ("stack", Value::str(&*self.stack)),
            ("partitioner", Value::str(&*self.partitioner)),
            ("mapper", Value::str(&*self.mapper)),
            ("transfer", Value::str(&*self.transfer)),
            ("enhanced", Value::Bool(self.enhanced)),
            (
                "error",
                match &self.error {
                    Some(e) => Value::str(&**e),
                    None => Value::Null,
                },
            ),
            ("partitions", Value::Uint(self.partitions as u64)),
            ("gpus_used", Value::Uint(self.gpus_used as u64)),
            (
                "time_per_iteration_us",
                Value::Float(self.time_per_iteration_us),
            ),
            ("makespan_us", Value::Float(self.makespan_us)),
            ("predicted_tmax_us", Value::Float(self.predicted_tmax_us)),
            (
                "bottleneck",
                match self.bottleneck {
                    Some(b) => Value::str(b.name()),
                    None => Value::Null,
                },
            ),
            (
                "speedup_vs_1gpu",
                match self.speedup_vs_1gpu {
                    Some(s) => Value::Float(s),
                    None => Value::Null,
                },
            ),
        ];
        if let Some(sig) = &self.mapping_signature {
            fields.push(("mapping_signature", Value::str(&**sig)));
        }
        Value::object(fields)
    }
}

/// Compile-deduplication counters: how many grid points the sweep expanded
/// to versus how many compiles (graph build + profile + partition search)
/// actually ran after grouping points by their compile key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DedupStats {
    /// Number of expanded grid points.
    pub expanded_points: u64,
    /// Number of distinct (app, N, GPU model, stack, enhancement) compile
    /// groups — the number of partition searches that ran.
    pub compile_groups: u64,
}

impl DedupStats {
    /// Compiles avoided by grouping (`expanded_points - compile_groups`).
    pub fn compiles_saved(&self) -> u64 {
        self.expanded_points.saturating_sub(self.compile_groups)
    }
}

/// How stable the compiled mappings are under small model perturbations:
/// every perturbed-platform point is compared against the unperturbed
/// baseline point of the same (app, N, stack, enhancement, GPU-count)
/// coordinate. Produced by sweeps with a
/// [`stability_baseline`](crate::SweepSpec::stability_baseline), e.g. the
/// `robustness` preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Name of the unperturbed baseline platform.
    pub baseline_platform: String,
    /// Number of perturbed points compared against a baseline.
    pub compared_points: u64,
    /// How many of those kept the baseline's partition→GPU assignment.
    pub unchanged_mappings: u64,
    /// `unchanged_mappings / compared_points` (`1.0` when nothing was
    /// compared).
    pub mapping_stability: f64,
    /// Largest relative spread of the predicted bottleneck time inside any
    /// coordinate group: `(max − min) / baseline`.
    pub max_objective_spread: f64,
}

impl StabilityReport {
    /// Compares every perturbed point against the baseline point of its
    /// coordinate. Failed points and coordinates without a baseline are
    /// skipped; records without a mapping signature count as changed only
    /// if the baseline has one.
    pub fn compute(records: &[SweepRecord], baseline_platform: &str) -> StabilityReport {
        let mut compared = 0u64;
        let mut unchanged = 0u64;
        let mut max_spread = 0.0f64;
        let baselines: Vec<&SweepRecord> = records
            .iter()
            .filter(|r| r.is_ok() && r.gpu_model == baseline_platform)
            .collect();
        for base in &baselines {
            let mut lo = base.predicted_tmax_us;
            let mut hi = base.predicted_tmax_us;
            for rec in records {
                let same_coord = rec.is_ok()
                    && rec.gpu_model != baseline_platform
                    && rec.app == base.app
                    && rec.n == base.n
                    && rec.stack == base.stack
                    && rec.enhanced == base.enhanced
                    && rec.gpus == base.gpus;
                if !same_coord {
                    continue;
                }
                compared += 1;
                if rec.mapping_signature.is_some()
                    && rec.mapping_signature == base.mapping_signature
                {
                    unchanged += 1;
                }
                lo = lo.min(rec.predicted_tmax_us);
                hi = hi.max(rec.predicted_tmax_us);
            }
            if base.predicted_tmax_us > 0.0 {
                max_spread = max_spread.max((hi - lo) / base.predicted_tmax_us);
            }
        }
        StabilityReport {
            baseline_platform: baseline_platform.to_string(),
            compared_points: compared,
            unchanged_mappings: unchanged,
            mapping_stability: if compared == 0 {
                1.0
            } else {
                unchanged as f64 / compared as f64
            },
            max_objective_spread: max_spread,
        }
    }

    pub(crate) fn to_value(&self) -> Value {
        Value::object(vec![
            ("baseline_platform", Value::str(&*self.baseline_platform)),
            ("compared_points", Value::Uint(self.compared_points)),
            ("unchanged_mappings", Value::Uint(self.unchanged_mappings)),
            ("mapping_stability", Value::Float(self.mapping_stability)),
            (
                "max_objective_spread",
                Value::Float(self.max_objective_spread),
            ),
        ])
    }
}

/// The result of running a sweep: the per-point records in work-list order
/// plus shared-cache statistics and (non-deterministic) execution metadata.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Name of the sweep spec that produced this report.
    pub spec_name: String,
    /// Per-point records, ordered by [`SweepRecord::index`].
    pub records: Vec<SweepRecord>,
    /// Shared estimator-cache counters at the end of the sweep. These are
    /// deterministic for a given spec (single-flight caching makes the miss
    /// count equal the number of distinct keys, independent of scheduling).
    pub cache: CacheStats,
    /// Compile-group deduplication counters (deterministic: a function of
    /// the expansion alone).
    pub dedup: DedupStats,
    /// Mapping-stability analysis, present only on sweeps that set a
    /// [`stability_baseline`](crate::SweepSpec::stability_baseline).
    /// Omitted from the JSON when `None`, so other presets' reports keep
    /// their historical byte shape.
    pub stability: Option<StabilityReport>,
    /// Number of worker threads used (metadata; excluded from canonical
    /// JSON).
    pub threads: usize,
    /// Wall-clock duration of the sweep (metadata; excluded from canonical
    /// JSON).
    pub wall_clock: Duration,
}

impl SweepReport {
    /// The deterministic part of the report: spec name, records and cache
    /// statistics. Two runs of the same spec — with any thread counts —
    /// render byte-identical canonical JSON.
    pub fn canonical_json(&self) -> String {
        self.body_value().render()
    }

    /// The full report: the canonical body plus an execution-metadata object
    /// (thread count, wall-clock time).
    pub fn to_json(&self) -> String {
        let mut body = match self.body_value() {
            Value::Object(fields) => fields,
            _ => unreachable!("body is always an object"),
        };
        body.push((
            "meta".to_string(),
            Value::object(vec![
                ("threads", Value::Uint(self.threads as u64)),
                (
                    "wall_clock_ms",
                    Value::Float(self.wall_clock.as_secs_f64() * 1000.0),
                ),
            ]),
        ));
        Value::Object(body).render()
    }

    fn body_value(&self) -> Value {
        let mut fields = vec![
            ("sweep", Value::str(&*self.spec_name)),
            (
                "points",
                Value::Array(self.records.iter().map(SweepRecord::to_value).collect()),
            ),
            (
                "cache",
                Value::object(vec![
                    ("hits", Value::Uint(self.cache.hits)),
                    ("misses", Value::Uint(self.cache.misses)),
                    ("entries", Value::Uint(self.cache.entries)),
                ]),
            ),
            (
                "dedup",
                Value::object(vec![
                    ("expanded_points", Value::Uint(self.dedup.expanded_points)),
                    ("compile_groups", Value::Uint(self.dedup.compile_groups)),
                    ("compiles_saved", Value::Uint(self.dedup.compiles_saved())),
                ]),
            ),
        ];
        if let Some(stability) = &self.stability {
            fields.push(("stability", stability.to_value()));
        }
        Value::object(fields)
    }

    /// Looks up the record for an exact (app, N, GPU count, stack label)
    /// coordinate. The GPU-model and enhancement axes are ignored when
    /// `None`; pass them explicitly on sweeps that vary those axes, or the
    /// first matching record (in work-list order) wins.
    pub fn find(
        &self,
        app: App,
        n: u32,
        gpus: usize,
        stack: &str,
        gpu_model: Option<&str>,
        enhanced: Option<bool>,
    ) -> Option<&SweepRecord> {
        self.records.iter().find(|r| {
            r.app == app
                && r.n == n
                && r.gpus == gpus
                && r.stack == stack
                && gpu_model.is_none_or(|m| r.gpu_model == m)
                && enhanced.is_none_or(|e| r.enhanced == e)
        })
    }

    /// All successfully executed records.
    pub fn ok_records(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records.iter().filter(|r| r.is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StackConfig;
    use sgmap_gpusim::{GpuSpec, PlatformSpec};

    fn point() -> SweepPoint {
        SweepPoint {
            index: 0,
            app: App::Des,
            n: 4,
            platform: PlatformSpec::reference(GpuSpec::m2090(), 2).named("M2090"),
            stack: StackConfig::ours(),
            enhanced: false,
        }
    }

    #[test]
    fn error_records_serialise_with_null_measurements() {
        let rec = SweepRecord::from_error(&point(), "boom");
        assert!(!rec.is_ok());
        let report = SweepReport {
            spec_name: "t".to_string(),
            records: vec![rec],
            cache: CacheStats::default(),
            dedup: DedupStats {
                expanded_points: 1,
                compile_groups: 1,
            },
            stability: None,
            threads: 1,
            wall_clock: Duration::from_millis(1),
        };
        let json = report.canonical_json();
        assert!(json.contains(r#""error":"boom""#));
        assert!(json.contains(r#""bottleneck":null"#));
        assert!(
            json.contains(r#""dedup":{"expanded_points":1,"compile_groups":1,"compiles_saved":0}"#)
        );
        assert!(!json.contains("meta"));
        assert!(report.to_json().contains(r#""meta":{"threads":1"#));
    }
}
