//! The `sweep` CLI: run a named sweep preset and emit a JSON report, or
//! validate an existing report.
//!
//! ```text
//! sweep [--preset NAME | --spec FILE] [--threads N] [--out FILE]
//!       [--cache-file FILE] [--strict-cache] [--canonical]
//!       [--trace FILE] [--metrics FILE] [--allow-failed-points]
//!       [--inject-panic IDX] [--inject-transient IDX] [--list]
//! sweep --check REPORT.json
//! sweep --check-trace TRACE.json
//! sweep --compare-nonfaulted A.json B.json
//! ```
//!
//! * `--preset NAME` — which grid to run (default `quick`); see `--list`.
//! * `--spec FILE` — run a sweep described by a JSON spec file instead of a
//!   named preset (see the `sgmap-sweep` spec-JSON docs for the format).
//!   Mutually exclusive with `--preset`.
//! * `--threads N` — worker threads (default: available parallelism, max 8).
//!   The same count drives the sweep workers *and* the partition search
//!   inside each compile; any value produces byte-identical canonical JSON.
//! * `--out FILE` — write the JSON report to `FILE` instead of stdout.
//! * `--cache-file FILE` — persist the shared estimate cache across runs:
//!   load `FILE` (if it exists) before the sweep and save the merged cache
//!   back afterwards. A repeated sweep then reports zero cache misses. A
//!   corrupt or version-mismatched file is ignored with a structured
//!   `cache.load_failed` warning (cold start) by default.
//! * `--strict-cache` — make a corrupt or version-mismatched cache file a
//!   hard error instead of a warn-and-cold-start.
//! * `--canonical` — emit only the deterministic report body (no wall-clock
//!   metadata), for byte-for-byte comparisons between runs.
//! * `--trace FILE` — record a trace of the whole sweep (compile groups,
//!   partition phases, ILP nodes, kernel launches) and write it as Chrome
//!   trace-event JSON, loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev). Tracing never changes the report.
//! * `--metrics FILE` — write the trace's aggregate counters / histograms /
//!   span totals as canonical metrics JSON.
//! * `--allow-failed-points` — exit 0 even when some points carry per-point
//!   error entries (the default exit is 1 so CI notices failures). The
//!   report itself always includes every point either way.
//! * `--inject-panic IDX` / `--inject-transient IDX` — deterministic fault
//!   hooks for testing the sweep's failure isolation: panic at the expanded
//!   point index `IDX` (caught, recorded as a per-point error), or fail its
//!   first attempt with a transient error (retried, succeeds). May be
//!   repeated.
//! * `--list` — print the available presets and exit.
//! * `--check FILE` — validate a previously written report (non-empty, no
//!   failed points, nonzero cache hits, nonzero compile-dedup groups) and
//!   exit 0/1. This is exactly the validator CI runs.
//! * `--check-trace FILE` — validate a previously written `--trace` or
//!   `--metrics` file (auto-detected) and exit 0/1; also used by CI.
//! * `--compare-nonfaulted A B` — compare the point records of two reports
//!   byte-for-byte, skipping indices at which either report recorded a
//!   per-point error, and exit 0/1. CI's robustness gate uses this to assert
//!   that an injected fault leaves every other point untouched.
//!
//! A human-readable summary always goes to stderr, so stdout stays valid
//! JSON for piping.

use std::process::ExitCode;
use std::sync::Arc;

use sgmap_sweep::{
    check_report, check_trace, compare_nonfaulted, default_threads, run_sweep_traced,
    sweep_spec_from_json, SweepSpec,
};

const USAGE: &str = "usage: sweep [--preset NAME | --spec FILE] [--threads N] [--out FILE] [--cache-file FILE] [--strict-cache] [--canonical] [--trace FILE] [--metrics FILE] [--allow-failed-points] [--inject-panic IDX] [--inject-transient IDX] [--list]\n       sweep --check REPORT.json\n       sweep --check-trace TRACE.json\n       sweep --compare-nonfaulted A.json B.json";

struct Args {
    preset: Option<String>,
    spec: Option<String>,
    threads: usize,
    out: Option<String>,
    cache_file: Option<String>,
    strict_cache: bool,
    canonical: bool,
    trace: Option<String>,
    metrics: Option<String>,
    allow_failed_points: bool,
    inject_panic: Vec<usize>,
    inject_transient: Vec<usize>,
    list: bool,
    check: Option<String>,
    check_trace: Option<String>,
    compare_nonfaulted: Option<(String, String)>,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: None,
        spec: None,
        threads: 0,
        out: None,
        cache_file: None,
        strict_cache: false,
        canonical: false,
        trace: None,
        metrics: None,
        allow_failed_points: false,
        inject_panic: Vec::new(),
        inject_transient: Vec::new(),
        list: false,
        check: None,
        check_trace: None,
        compare_nonfaulted: None,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                args.preset = Some(it.next().ok_or("--preset needs a value")?);
            }
            "--spec" => {
                args.spec = Some(it.next().ok_or("--spec needs a file")?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a value")?);
            }
            "--cache-file" => {
                args.cache_file = Some(it.next().ok_or("--cache-file needs a value")?);
            }
            "--strict-cache" => args.strict_cache = true,
            "--allow-failed-points" => args.allow_failed_points = true,
            "--inject-panic" => {
                let v = it.next().ok_or("--inject-panic needs a point index")?;
                args.inject_panic.push(
                    v.parse()
                        .map_err(|_| format!("--inject-panic: not a point index: {v}"))?,
                );
            }
            "--inject-transient" => {
                let v = it.next().ok_or("--inject-transient needs a point index")?;
                args.inject_transient.push(
                    v.parse()
                        .map_err(|_| format!("--inject-transient: not a point index: {v}"))?,
                );
            }
            "--canonical" => args.canonical = true,
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a value")?);
            }
            "--metrics" => {
                args.metrics = Some(it.next().ok_or("--metrics needs a value")?);
            }
            "--list" => args.list = true,
            "--check" => {
                args.check = Some(it.next().ok_or("--check needs a report file")?);
            }
            "--check-trace" => {
                args.check_trace = Some(it.next().ok_or("--check-trace needs a trace file")?);
            }
            "--compare-nonfaulted" => {
                let a = it.next().ok_or("--compare-nonfaulted needs two files")?;
                let b = it.next().ok_or("--compare-nonfaulted needs two files")?;
                args.compare_nonfaulted = Some((a, b));
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if args.preset.is_some() && args.spec.is_some() {
        return Err(format!(
            "--preset and --spec are mutually exclusive\n{USAGE}"
        ));
    }
    Ok(args)
}

/// Runs the `--check` / `--check-trace` subcommands: read, validate with the
/// given validator, report, exit.
fn run_check<S: std::fmt::Display, E: std::fmt::Display>(
    path: &str,
    validate: impl Fn(&str) -> Result<S, E>,
) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&src) {
        Ok(summary) => {
            eprintln!("{path}: OK — {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: FAILED — {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes a trace / metrics export, reporting any I/O failure on stderr.
fn write_export(path: &str, what: &str, contents: String) -> ExitCode {
    match std::fs::write(path, contents) {
        Ok(()) => {
            eprintln!("{what} written to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {what} {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.check {
        return run_check(path, check_report);
    }
    if let Some(path) = &args.check_trace {
        return run_check(path, check_trace);
    }
    if let Some((a, b)) = &args.compare_nonfaulted {
        let read = |path: &str| match std::fs::read_to_string(path) {
            Ok(src) => Some(src),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                None
            }
        };
        let (Some(src_a), Some(src_b)) = (read(a), read(b)) else {
            return ExitCode::FAILURE;
        };
        return match compare_nonfaulted(&src_a, &src_b) {
            Ok(summary) => {
                eprintln!("{a} vs {b}: OK — {summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{a} vs {b}: FAILED — {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.list {
        for name in SweepSpec::PRESETS {
            let points = SweepSpec::preset(name)
                .and_then(|s| s.expand())
                .map(|p| p.len())
                .unwrap_or(0);
            println!("{name:<12} {points} points");
        }
        return ExitCode::SUCCESS;
    }

    let spec = match &args.spec {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match sweep_spec_from_json(&src).and_then(|spec| {
                spec.validate().map_err(|e| e.to_string())?;
                Ok(spec)
            }) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let name = args.preset.as_deref().unwrap_or("quick");
            match SweepSpec::preset(name) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let mut spec = match &args.cache_file {
        Some(path) => spec.with_cache_file(path),
        None => spec,
    };
    spec = spec.with_strict_cache(args.strict_cache);
    for &idx in &args.inject_panic {
        spec = spec.with_injected_panic(idx);
    }
    for &idx in &args.inject_transient {
        spec = spec.with_injected_transient(idx);
    }
    let threads = if args.threads == 0 {
        default_threads()
    } else {
        args.threads
    };
    eprintln!("sweep '{}' on {} threads...", spec.name, threads);
    let collector = if args.trace.is_some() || args.metrics.is_some() {
        Some(Arc::new(sgmap_trace::Collector::new()))
    } else {
        None
    };
    let report = match run_sweep_traced(&spec, threads, collector.as_ref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Stamp the trace with the sweep's own summary before exporting, so a
    // captured trace is self-describing about the run it came from.
    sgmap_trace::instant(
        collector.as_ref(),
        "sweep.summary",
        vec![
            ("points", (report.records.len() as u64).into()),
            ("compile_groups", report.dedup.compile_groups.into()),
            ("cache_hits", report.cache.hits.into()),
            ("cache_misses", report.cache.misses.into()),
        ],
    );
    if let Some(collector) = &collector {
        if let Some(path) = &args.trace {
            let code = write_export(path, "trace", collector.chrome_trace_json());
            if code != ExitCode::SUCCESS {
                return code;
            }
        }
        if let Some(path) = &args.metrics {
            let code = write_export(path, "metrics", collector.metrics_json());
            if code != ExitCode::SUCCESS {
                return code;
            }
        }
    }

    let ok = report.ok_records().count();
    let failed = report.records.len() - ok;
    eprintln!(
        "{} points ({} ok, {} failed) in {:.2}s; {} compile groups ({} compiles saved); cache: {} hits / {} misses ({:.0}% hit rate)",
        report.records.len(),
        ok,
        failed,
        report.wall_clock.as_secs_f64(),
        report.dedup.compile_groups,
        report.dedup.compiles_saved(),
        report.cache.hits,
        report.cache.misses,
        report.cache.hit_rate() * 100.0,
    );

    let json = if args.canonical {
        report.canonical_json()
    } else {
        report.to_json()
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
    if failed > 0 && !args.allow_failed_points {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
