//! A minimal, deterministic JSON writer.
//!
//! The vendored `serde` shim has no serializer back-end, so the sweep report
//! formats itself with this tiny builder instead. Output is deterministic by
//! construction: object keys appear in insertion order and `f64` values use
//! Rust's shortest-round-trip formatting, so equal reports serialise to equal
//! bytes.

use std::fmt::Write;

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value rendered to a string.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, Value)>) -> Self {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{}` is the shortest round-trip representation; add
                    // `.0` to integral floats so the value stays
                    // unambiguously a float for JSON consumers.
                    let mut s = x.to_string();
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_compact_deterministic_json() {
        let v = Value::object(vec![
            ("name", Value::str("a \"b\"\n")),
            ("count", Value::Uint(3)),
            ("ratio", Value::Float(1.5)),
            ("whole", Value::Float(2.0)),
            ("nan", Value::Float(f64::NAN)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            ("list", Value::Array(vec![Value::Int(-1), Value::Uint(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"a \"b\"\n","count":3,"ratio":1.5,"whole":2.0,"nan":null,"flag":true,"none":null,"list":[-1,2]}"#
        );
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("t\ta"), "t\\ta");
    }
}
