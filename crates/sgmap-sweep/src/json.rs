//! A minimal, deterministic JSON writer and reader.
//!
//! The vendored `serde` shim has no serializer back-end, so the sweep report
//! formats itself with this tiny builder instead. Output is deterministic by
//! construction: object keys appear in insertion order and `f64` values use
//! Rust's shortest-round-trip formatting, so equal reports serialise to equal
//! bytes. [`Value::parse`] is the matching recursive-descent reader; the
//! `sweep --check` validator uses it so report checking needs no Python (or
//! any other external tooling).

use std::fmt::Write;

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value rendered to a string.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// Integral numbers without sign become [`Value::Uint`], with a sign
    /// [`Value::Int`]; anything with a fraction or exponent becomes
    /// [`Value::Float`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description (with byte offset) of the first
    /// syntax error.
    pub fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_whitespace();
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key of an object (`None` for other variants or missing
    /// keys; the first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other variants).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs of an object in document order (`None` for other
    /// variants).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a non-negative integer (`None` for other variants and
    /// negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert; `None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Uint(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` exactly for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, Value)>) -> Self {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{}` is the shortest round-trip representation; add
                    // `.0` to integral floats so the value stays
                    // unambiguously a float for JSON consumers.
                    let mut s = x.to_string();
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A recursive-descent JSON parser over raw bytes.
struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting [`Value::parse`] accepts. Sweep reports nest
/// three levels deep; the cap exists so a corrupt or adversarial file fed to
/// `sweep --check` produces a parse error instead of exhausting the stack.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates (the writer never emits them) decode
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos - 1
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .ok_or_else(|| format!("invalid number '{text}' at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Value::Uint)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Value::object(vec![
            ("name", Value::str("a \"b\"\n\u{1}")),
            ("count", Value::Uint(3)),
            ("neg", Value::Int(-7)),
            ("ratio", Value::Float(1.5)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            (
                "list",
                Value::Array(vec![Value::Uint(2), Value::Float(0.25)]),
            ),
            ("empty", Value::Array(vec![])),
            ("nested", Value::object(vec![])),
        ]);
        let rendered = v.render();
        let parsed = Value::parse(&rendered).unwrap();
        assert_eq!(parsed.render(), rendered);
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("neg").unwrap().as_u64(), None);
        assert_eq!(parsed.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("a \"b\"\n\u{1}"));
        assert!(parsed.get("none").unwrap().is_null());
        assert_eq!(parsed.get("list").unwrap().as_array().unwrap().len(), 2);
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(Value::parse(&ok).is_ok());
        let over = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(Value::parse(&over).is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        assert!(Value::parse(" { \"a\" : [ 1 , 2.0e1 , null ] } \n").is_ok());
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn values_render_compact_deterministic_json() {
        let v = Value::object(vec![
            ("name", Value::str("a \"b\"\n")),
            ("count", Value::Uint(3)),
            ("ratio", Value::Float(1.5)),
            ("whole", Value::Float(2.0)),
            ("nan", Value::Float(f64::NAN)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            ("list", Value::Array(vec![Value::Int(-1), Value::Uint(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"a \"b\"\n","count":3,"ratio":1.5,"whole":2.0,"nan":null,"flag":true,"none":null,"list":[-1,2]}"#
        );
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("t\ta"), "t\\ta");
    }
}
