//! JSON codec for [`SweepSpec`] — the file format behind `sweep --spec`.
//!
//! A spec file describes the grid axes declaratively:
//!
//! ```json
//! {
//!   "name": "my-sweep",
//!   "apps": [{"app": "DES", "n_values": [4, 8]}],
//!   "platforms": ["paper", {"name": "...", "interconnect": {...}, "gpus": [...]}],
//!   "stacks": [{"label": "ours", "partitioner": "proposed", "mapper": "ilp",
//!               "transfer": "p2p"}],
//!   "enhanced": [false]
//! }
//! ```
//!
//! Applications are referenced by their display name ([`App::by_name`] — the
//! synthetic families included). Platforms are either a named preset
//! (`"paper"`, `"nvlink8_m2090"`, `"cluster2x4_m2090"`, `"mixed_m2090_c2070"`)
//! or a full platform object in the [`platform_json`](crate::platform_json)
//! codec. Stacks may select the multilevel algorithm with
//! `"algorithm": {"multilevel": {"coarsen_target": 96, ...}}` (the default is
//! `"flat"`) and may pin GPU counts with `"gpu_counts": [1, 2]`. The
//! `enhanced` axis defaults to `[false]` when omitted.
//!
//! Encoding is deterministic (insertion-ordered objects, shortest
//! round-trip floats), so `to_json(from_json(s))` is a fixed point:
//! re-encoding an encoded spec reproduces it byte for byte. Axes not
//! expressible in the file (point filters, ILP budget, plan shape, cache
//! file) take the same defaults [`SweepSpec::on_platforms`] applies.

use sgmap_apps::App;
use sgmap_gpusim::{PlatformSpec, TransferMode};
use sgmap_mapping::MappingMethod;
use sgmap_partition::{Algorithm, MultilevelOptions, PartitionerKind};

use crate::json::Value;
use crate::platform_json::{platform_spec_from_value, platform_spec_to_value};
use crate::spec::{mapper_name, partitioner_name, transfer_name, AppSweep, StackConfig, SweepSpec};

/// Encodes a sweep spec as a JSON value (the codec-covered axes: name, apps,
/// platforms, stacks, enhancement).
pub fn sweep_spec_to_value(spec: &SweepSpec) -> Value {
    let apps = spec
        .apps
        .iter()
        .map(|sweep| {
            Value::object(vec![
                ("app", Value::str(sweep.app.name())),
                (
                    "n_values",
                    Value::Array(
                        sweep
                            .n_values
                            .iter()
                            .map(|&n| Value::Uint(u64::from(n)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let platforms = spec.platforms.iter().map(platform_spec_to_value).collect();
    let stacks = spec.stacks.iter().map(stack_to_value).collect();
    Value::object(vec![
        ("name", Value::str(&*spec.name)),
        ("apps", Value::Array(apps)),
        ("platforms", Value::Array(platforms)),
        ("stacks", Value::Array(stacks)),
        (
            "enhanced",
            Value::Array(spec.enhanced.iter().map(|&e| Value::Bool(e)).collect()),
        ),
    ])
}

/// Renders a sweep spec as compact JSON text.
pub fn sweep_spec_to_json(spec: &SweepSpec) -> String {
    sweep_spec_to_value(spec).render()
}

/// Decodes a sweep spec from a JSON value.
///
/// # Errors
///
/// Returns a description of the first missing field, ill-typed value,
/// unknown application / platform / stack-component name.
pub fn sweep_spec_from_value(value: &Value) -> Result<SweepSpec, String> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or("spec: missing string 'name'")?
        .to_string();
    let apps = value
        .get("apps")
        .and_then(Value::as_array)
        .ok_or("spec: missing array 'apps'")?
        .iter()
        .map(app_sweep_from_value)
        .collect::<Result<Vec<AppSweep>, String>>()?;
    let platforms = value
        .get("platforms")
        .and_then(Value::as_array)
        .ok_or("spec: missing array 'platforms'")?
        .iter()
        .map(platform_from_value)
        .collect::<Result<Vec<PlatformSpec>, String>>()?;
    let stacks = value
        .get("stacks")
        .and_then(Value::as_array)
        .ok_or("spec: missing array 'stacks'")?
        .iter()
        .map(stack_from_value)
        .collect::<Result<Vec<StackConfig>, String>>()?;
    let mut spec = SweepSpec::on_platforms(name, apps, platforms, stacks);
    if let Some(enhanced) = value.get("enhanced") {
        spec.enhanced = enhanced
            .as_array()
            .ok_or("spec: 'enhanced' must be an array of booleans")?
            .iter()
            .map(|v| match v {
                Value::Bool(b) => Ok(*b),
                _ => Err("spec: 'enhanced' must be an array of booleans".to_string()),
            })
            .collect::<Result<Vec<bool>, String>>()?;
    }
    Ok(spec)
}

/// Parses a sweep spec from JSON text.
///
/// # Errors
///
/// Returns a description of the first parse or shape error.
pub fn sweep_spec_from_json(src: &str) -> Result<SweepSpec, String> {
    sweep_spec_from_value(&Value::parse(src)?)
}

fn app_sweep_from_value(value: &Value) -> Result<AppSweep, String> {
    let name = value
        .get("app")
        .and_then(Value::as_str)
        .ok_or("spec: app entry missing string 'app'")?;
    let app = App::by_name(name).ok_or_else(|| {
        let known: Vec<&str> = App::all()
            .into_iter()
            .chain(App::synthetic())
            .map(|a| a.name())
            .collect();
        format!(
            "spec: unknown application '{name}' (available: {})",
            known.join(", ")
        )
    })?;
    let n_values = value
        .get("n_values")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("spec: app '{name}' missing array 'n_values'"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("spec: app '{name}' has a non-u32 N value"))
        })
        .collect::<Result<Vec<u32>, String>>()?;
    Ok(AppSweep::explicit(app, n_values))
}

fn platform_from_value(value: &Value) -> Result<PlatformSpec, String> {
    match value {
        Value::Str(preset) => match preset.as_str() {
            "paper" => Ok(PlatformSpec::paper()),
            "nvlink8_m2090" => Ok(PlatformSpec::nvlink8_m2090()),
            "cluster2x4_m2090" => Ok(PlatformSpec::cluster2x4_m2090()),
            "mixed_m2090_c2070" => Ok(PlatformSpec::mixed_m2090_c2070()),
            other => Err(format!(
                "spec: unknown platform preset '{other}' (available: paper, \
                 nvlink8_m2090, cluster2x4_m2090, mixed_m2090_c2070)"
            )),
        },
        _ => platform_spec_from_value(value),
    }
}

fn stack_to_value(stack: &StackConfig) -> Value {
    let mut fields = vec![
        ("label", Value::str(&*stack.label)),
        (
            "partitioner",
            Value::str(partitioner_name(stack.partitioner)),
        ),
        ("algorithm", algorithm_to_value(&stack.algorithm)),
        ("mapper", Value::str(mapper_name(stack.mapper))),
        ("transfer", Value::str(transfer_name(stack.transfer_mode))),
    ];
    if let Some(counts) = &stack.gpu_counts {
        fields.push((
            "gpu_counts",
            Value::Array(counts.iter().map(|&c| Value::Uint(c as u64)).collect()),
        ));
    }
    Value::object(fields)
}

fn stack_from_value(value: &Value) -> Result<StackConfig, String> {
    let label = value
        .get("label")
        .and_then(Value::as_str)
        .ok_or("spec: stack missing string 'label'")?
        .to_string();
    let partitioner = match value.get("partitioner").and_then(Value::as_str) {
        Some("proposed") => PartitionerKind::Proposed,
        Some("baseline") => PartitionerKind::Baseline,
        Some("single") => PartitionerKind::Single,
        Some(other) => {
            return Err(format!(
                "spec: stack '{label}' has unknown partitioner '{other}' \
                 (available: proposed, baseline, single)"
            ))
        }
        None => {
            return Err(format!(
                "spec: stack '{label}' missing string 'partitioner'"
            ))
        }
    };
    let algorithm = match value.get("algorithm") {
        None => Algorithm::Flat,
        Some(v) => algorithm_from_value(&label, v)?,
    };
    let mapper = match value.get("mapper").and_then(Value::as_str) {
        Some("ilp") => MappingMethod::Ilp,
        Some("greedy") => MappingMethod::Greedy,
        Some("round-robin") => MappingMethod::RoundRobin,
        Some(other) => {
            return Err(format!(
                "spec: stack '{label}' has unknown mapper '{other}' \
                 (available: ilp, greedy, round-robin)"
            ))
        }
        None => return Err(format!("spec: stack '{label}' missing string 'mapper'")),
    };
    let transfer_mode = match value.get("transfer").and_then(Value::as_str) {
        Some("p2p") => TransferMode::PeerToPeer,
        Some("via-host") => TransferMode::ViaHost,
        Some(other) => {
            return Err(format!(
                "spec: stack '{label}' has unknown transfer mode '{other}' \
                 (available: p2p, via-host)"
            ))
        }
        None => return Err(format!("spec: stack '{label}' missing string 'transfer'")),
    };
    let gpu_counts = match value.get("gpu_counts") {
        None => None,
        Some(v) => Some(
            v.as_array()
                .ok_or_else(|| format!("spec: stack '{label}': 'gpu_counts' must be an array"))?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| format!("spec: stack '{label}' has a non-integer GPU count"))
                })
                .collect::<Result<Vec<usize>, String>>()?,
        ),
    };
    Ok(StackConfig {
        label,
        partitioner,
        algorithm,
        mapper,
        transfer_mode,
        gpu_counts,
    })
}

fn algorithm_to_value(algorithm: &Algorithm) -> Value {
    match algorithm {
        Algorithm::Flat => Value::str("flat"),
        Algorithm::Multilevel(o) => Value::object(vec![(
            "multilevel",
            Value::object(vec![
                ("coarsen_target", Value::Uint(o.coarsen_target as u64)),
                ("max_levels", Value::Uint(o.max_levels as u64)),
                ("matching_attempts", Value::Uint(o.matching_attempts as u64)),
            ]),
        )]),
    }
}

fn algorithm_from_value(label: &str, value: &Value) -> Result<Algorithm, String> {
    if let Some(s) = value.as_str() {
        return match s {
            "flat" => Ok(Algorithm::Flat),
            "multilevel" => Ok(Algorithm::Multilevel(MultilevelOptions::default())),
            other => Err(format!(
                "spec: stack '{label}' has unknown algorithm '{other}' \
                 (available: flat, multilevel)"
            )),
        };
    }
    let ml = value.get("multilevel").ok_or_else(|| {
        format!("spec: stack '{label}': 'algorithm' must be \"flat\", \"multilevel\" or {{\"multilevel\": {{...}}}}")
    })?;
    let field = |name: &str, default: usize| -> Result<usize, String> {
        match ml.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| {
                    format!(
                        "spec: stack '{label}': 'algorithm.multilevel.{name}' must be an integer"
                    )
                }),
        }
    };
    let defaults = MultilevelOptions::default();
    Ok(Algorithm::Multilevel(MultilevelOptions {
        coarsen_target: field("coarsen_target", defaults.coarsen_target)?,
        max_levels: field("max_levels", defaults.max_levels)?,
        matching_attempts: field("matching_attempts", defaults.matching_attempts)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_a_fixed_point_for_every_preset() {
        for preset in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(preset).unwrap();
            let encoded = sweep_spec_to_json(&spec);
            let decoded = sweep_spec_from_json(&encoded)
                .unwrap_or_else(|e| panic!("{preset}: {e}\n{encoded}"));
            assert_eq!(
                sweep_spec_to_json(&decoded),
                encoded,
                "{preset}: re-encoding changed bytes"
            );
            // The codec-covered axes survive the round trip exactly.
            assert_eq!(decoded.name, spec.name);
            assert_eq!(decoded.apps, spec.apps);
            assert_eq!(decoded.platforms, spec.platforms);
            assert_eq!(decoded.stacks, spec.stacks);
            assert_eq!(decoded.enhanced, spec.enhanced);
        }
    }

    #[test]
    fn named_platform_presets_and_synthetic_apps_decode() {
        let src = r#"{
            "name": "custom",
            "apps": [{"app": "SynthPipe", "n_values": [1000]},
                     {"app": "DES", "n_values": [4, 8]}],
            "platforms": ["paper", "nvlink8_m2090"],
            "stacks": [{"label": "ml", "partitioner": "proposed",
                        "algorithm": {"multilevel": {"coarsen_target": 64}},
                        "mapper": "ilp", "transfer": "p2p",
                        "gpu_counts": [4]}],
            "enhanced": [false, true]
        }"#;
        let spec = sweep_spec_from_json(src).unwrap();
        assert_eq!(spec.apps[0].app, App::SynthPipe);
        assert_eq!(spec.platforms[0], PlatformSpec::paper());
        assert_eq!(spec.platforms[1], PlatformSpec::nvlink8_m2090());
        assert_eq!(spec.enhanced, vec![false, true]);
        match &spec.stacks[0].algorithm {
            Algorithm::Multilevel(o) => {
                assert_eq!(o.coarsen_target, 64);
                // Unspecified knobs take their defaults.
                assert_eq!(o.max_levels, MultilevelOptions::default().max_levels);
            }
            other => panic!("expected multilevel, got {other:?}"),
        }
        assert_eq!(spec.stacks[0].gpu_counts, Some(vec![4]));
        // A bare string algorithm works too.
        let spec2 = sweep_spec_from_json(&src.replace(
            r#"{"multilevel": {"coarsen_target": 64}}"#,
            r#""multilevel""#,
        ))
        .unwrap();
        assert_eq!(
            spec2.stacks[0].algorithm,
            Algorithm::Multilevel(MultilevelOptions::default())
        );
        // The decoded spec expands like any hand-built one.
        assert!(!spec.expand().unwrap().is_empty());
    }

    #[test]
    fn unknown_names_are_reported_with_context() {
        let base = |apps: &str, platforms: &str| {
            format!(
                r#"{{"name": "t", "apps": [{apps}], "platforms": [{platforms}],
                    "stacks": [{{"label": "ours", "partitioner": "proposed",
                                 "mapper": "ilp", "transfer": "p2p"}}]}}"#
            )
        };
        let err = sweep_spec_from_json(&base(
            r#"{"app": "NoSuchApp", "n_values": [4]}"#,
            r#""paper""#,
        ))
        .unwrap_err();
        assert!(err.contains("unknown application 'NoSuchApp'"), "{err}");
        assert!(
            err.contains("SynthPipe"),
            "should list synthetic apps: {err}"
        );
        let err = sweep_spec_from_json(&base(
            r#"{"app": "DES", "n_values": [4]}"#,
            r#""warehouse""#,
        ))
        .unwrap_err();
        assert!(err.contains("unknown platform preset 'warehouse'"), "{err}");
        let err = sweep_spec_from_json(r#"{"name": "t", "apps": []}"#).unwrap_err();
        assert!(err.contains("missing array 'platforms'"), "{err}");
        let err = sweep_spec_from_json("{nope").unwrap_err();
        assert!(!err.is_empty());
        // An unknown algorithm name names the options.
        let with_algo = base(r#"{"app": "DES", "n_values": [4]}"#, r#""paper""#).replace(
            r#""mapper""#,
            r#""algorithm": "simulated-annealing", "mapper""#,
        );
        let err = sweep_spec_from_json(&with_algo).unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
    }

    #[test]
    fn missing_enhanced_axis_defaults_to_off() {
        let src = r#"{"name": "t",
                      "apps": [{"app": "DES", "n_values": [4]}],
                      "platforms": ["paper"],
                      "stacks": [{"label": "ours", "partitioner": "proposed",
                                  "mapper": "ilp", "transfer": "p2p"}]}"#;
        let spec = sweep_spec_from_json(src).unwrap();
        assert_eq!(spec.enhanced, vec![false]);
        assert_eq!(spec.stacks[0].algorithm, Algorithm::Flat);
        assert_eq!(
            spec.mapping_options.max_nodes,
            SweepSpec::deterministic_mapping_options().max_nodes
        );
    }
}
