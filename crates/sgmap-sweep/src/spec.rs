//! Declarative sweep specifications and their expansion into work lists.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use sgmap_apps::App;
use sgmap_codegen::PlanOptions;
use sgmap_gpusim::{GpuSpec, PlatformSpec, TransferMode};
use sgmap_mapping::{MappingMethod, MappingOptions};
use sgmap_partition::{Algorithm, MultilevelOptions, PartitionerKind};

/// Errors produced while validating or expanding a [`SweepSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// An axis of the grid is empty, so the cartesian product is empty.
    EmptyAxis(&'static str),
    /// An axis contains a degenerate value (zero N, a platform whose
    /// topology cannot be built, conflicting platform names).
    InvalidAxisValue(String),
    /// No preset with the requested name exists.
    UnknownPreset(String),
    /// The persistent estimate-cache file could not be read, parsed or
    /// written.
    CacheIo(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyAxis(axis) => write!(f, "sweep axis '{axis}' is empty"),
            SweepError::InvalidAxisValue(msg) => write!(f, "invalid axis value: {msg}"),
            SweepError::UnknownPreset(name) => write!(
                f,
                "unknown preset '{name}' (available: {})",
                SweepSpec::PRESETS.join(", ")
            ),
            SweepError::CacheIo(msg) => write!(f, "estimate-cache file: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// The GPU models a sweep can target (a serializable stand-in for
/// [`GpuSpec`] presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// The Tesla M2090 used by the paper's evaluation.
    M2090,
    /// The Tesla C2070 used by the prior work.
    C2070,
}

impl GpuModel {
    /// The full device specification.
    pub fn spec(&self) -> GpuSpec {
        match self {
            GpuModel::M2090 => GpuSpec::m2090(),
            GpuModel::C2070 => GpuSpec::c2070(),
        }
    }

    /// Short stable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            GpuModel::M2090 => "M2090",
            GpuModel::C2070 => "C2070",
        }
    }
}

/// One application together with the `N` values to sweep for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSweep {
    /// The benchmark application.
    pub app: App,
    /// The size parameters to run, in sweep order.
    pub n_values: Vec<u32>,
}

impl AppSweep {
    /// Sweeps `app` over its reduced quick-N list.
    pub fn quick(app: App) -> Self {
        AppSweep {
            app,
            n_values: app.quick_n_values(),
        }
    }

    /// Sweeps `app` over the paper's full N list.
    pub fn paper(app: App) -> Self {
        AppSweep {
            app,
            n_values: app.paper_n_values(),
        }
    }

    /// Sweeps `app` over an explicit N list.
    pub fn explicit(app: App, n_values: Vec<u32>) -> Self {
        AppSweep { app, n_values }
    }
}

/// A correlated (partitioner, mapper, transfer-mode) triple — one "stack" of
/// the comparison, optionally pinned to a subset of the GPU-count axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Stable label used in reports (e.g. `"ours"`).
    pub label: String,
    /// Which partitioner to run.
    pub partitioner: PartitionerKind,
    /// The proposed partitioner's algorithm (flat four-phase search or the
    /// multilevel scheme). Ignored by the baseline and SPSG partitioners.
    pub algorithm: Algorithm,
    /// Which mapper to run.
    pub mapper: MappingMethod,
    /// How inter-GPU transfers are routed.
    pub transfer_mode: TransferMode,
    /// When set, this stack only runs on these GPU counts (intersected with
    /// the spec's GPU-count axis); `None` means the whole axis.
    pub gpu_counts: Option<Vec<usize>>,
}

impl StackConfig {
    /// The paper's stack: proposed partitioner, communication-aware ILP,
    /// peer-to-peer transfers.
    pub fn ours() -> Self {
        StackConfig {
            label: "ours".to_string(),
            partitioner: PartitionerKind::Proposed,
            algorithm: Algorithm::Flat,
            mapper: MappingMethod::Ilp,
            transfer_mode: TransferMode::PeerToPeer,
            gpu_counts: None,
        }
    }

    /// The scaling stack: the proposed partitioner running its multilevel
    /// algorithm (default options), communication-aware ILP, peer-to-peer
    /// transfers. This is the stack the `synthetic` preset runs.
    pub fn multilevel() -> Self {
        StackConfig {
            label: "ml".to_string(),
            partitioner: PartitionerKind::Proposed,
            algorithm: Algorithm::Multilevel(MultilevelOptions::default()),
            mapper: MappingMethod::Ilp,
            transfer_mode: TransferMode::PeerToPeer,
            gpu_counts: None,
        }
    }

    /// The prior work's stack: SM-only partitioner, round-robin mapping,
    /// transfers staged through the host.
    pub fn previous() -> Self {
        StackConfig {
            label: "previous".to_string(),
            partitioner: PartitionerKind::Baseline,
            algorithm: Algorithm::Flat,
            mapper: MappingMethod::RoundRobin,
            transfer_mode: TransferMode::ViaHost,
            gpu_counts: None,
        }
    }

    /// The single-partition single-GPU reference stack (pinned to 1 GPU).
    pub fn spsg() -> Self {
        StackConfig {
            label: "spsg".to_string(),
            partitioner: PartitionerKind::Single,
            algorithm: Algorithm::Flat,
            mapper: MappingMethod::Greedy,
            transfer_mode: TransferMode::PeerToPeer,
            gpu_counts: Some(vec![1]),
        }
    }

    /// The full cartesian product of the given partitioner, mapper and
    /// transfer-mode axes, labelled `partitioner/mapper/transfer`.
    pub fn cartesian(
        partitioners: &[PartitionerKind],
        mappers: &[MappingMethod],
        transfer_modes: &[TransferMode],
    ) -> Vec<Self> {
        let mut stacks = Vec::new();
        for &partitioner in partitioners {
            for &mapper in mappers {
                for &transfer_mode in transfer_modes {
                    stacks.push(StackConfig {
                        label: format!(
                            "{}/{}/{}",
                            partitioner_name(partitioner),
                            mapper_name(mapper),
                            transfer_name(transfer_mode)
                        ),
                        partitioner,
                        algorithm: Algorithm::Flat,
                        mapper,
                        transfer_mode,
                        gpu_counts: None,
                    });
                }
            }
        }
        stacks
    }
}

/// Stable lower-case name of a partitioner, as used in reports.
pub fn partitioner_name(kind: PartitionerKind) -> &'static str {
    match kind {
        PartitionerKind::Proposed => "proposed",
        PartitionerKind::Baseline => "baseline",
        PartitionerKind::Single => "single",
    }
}

/// Stable lower-case name of a mapper, as used in reports.
pub fn mapper_name(method: MappingMethod) -> &'static str {
    match method {
        MappingMethod::Ilp => "ilp",
        MappingMethod::Greedy => "greedy",
        MappingMethod::RoundRobin => "round-robin",
    }
}

/// Stable lower-case name of a transfer mode, as used in reports.
pub fn transfer_name(mode: TransferMode) -> &'static str {
    match mode {
        TransferMode::PeerToPeer => "p2p",
        TransferMode::ViaHost => "via-host",
    }
}

/// Deliberate per-point fault injection, used by the robustness tests and
/// CI gates to prove failure isolation: an injected fault must produce one
/// structured error record (or a successful retry) and leave every other
/// point byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjectionSpec {
    /// Work-list indices that panic on every execution attempt. The panic is
    /// caught and recorded as a per-point error entry.
    pub panic_points: Vec<usize>,
    /// Work-list indices that fail with a transient-classified error on
    /// their first attempt only; the bounded retry then succeeds.
    pub transient_points: Vec<usize>,
}

impl FaultInjectionSpec {
    /// `true` if nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.panic_points.is_empty() && self.transient_points.is_empty()
    }
}

/// Per-axis filters applied during expansion. All fields default to
/// "accept everything"; set a field to narrow the grid without editing the
/// axis lists themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointFilter {
    /// Keep only these applications.
    pub apps: Option<Vec<App>>,
    /// Drop points with `N` below this value.
    pub min_n: Option<u32>,
    /// Drop points with `N` above this value.
    pub max_n: Option<u32>,
    /// Keep only points whose platform has one of these GPU counts.
    pub gpu_counts: Option<Vec<usize>>,
    /// Keep only platforms with these names.
    pub platforms: Option<Vec<String>>,
    /// Keep only stacks with these labels.
    pub stack_labels: Option<Vec<String>>,
    /// Truncate the expanded work list to its first `max_points` entries.
    pub max_points: Option<usize>,
}

impl PointFilter {
    fn accepts(&self, point: &SweepPoint) -> bool {
        if let Some(apps) = &self.apps {
            if !apps.contains(&point.app) {
                return false;
            }
        }
        if let Some(min) = self.min_n {
            if point.n < min {
                return false;
            }
        }
        if let Some(max) = self.max_n {
            if point.n > max {
                return false;
            }
        }
        if let Some(counts) = &self.gpu_counts {
            if !counts.contains(&point.platform.gpu_count()) {
                return false;
            }
        }
        if let Some(platforms) = &self.platforms {
            if !platforms.iter().any(|p| p == &point.platform.name) {
                return false;
            }
        }
        if let Some(labels) = &self.stack_labels {
            if !labels.iter().any(|l| l == &point.stack.label) {
                return false;
            }
        }
        true
    }
}

/// A declarative experiment grid: the cartesian product of applications ×
/// size parameters × platforms × stacks × enhancement flags, narrowed by a
/// [`PointFilter`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Name of the sweep, echoed in the report.
    pub name: String,
    /// The application axis, each with its own N values.
    pub apps: Vec<AppSweep>,
    /// The platform axis: named platform descriptions, swept in order.
    /// Reference-tree platforms that share a name (the [`SweepSpec::new`]
    /// expansion of a GPU model over several counts) report that name in the
    /// `gpu_model` record field and share compile groups.
    pub platforms: Vec<PlatformSpec>,
    /// The stack axis (correlated partitioner/mapper/transfer triples).
    pub stacks: Vec<StackConfig>,
    /// The Chapter-V enhancement axis.
    pub enhanced: Vec<bool>,
    /// Per-axis filters applied during expansion.
    pub filter: PointFilter,
    /// ILP budget shared by every point. The default uses a node budget with
    /// an effectively unlimited wall-clock budget so results do not depend on
    /// machine load or worker-thread count.
    pub mapping_options: MappingOptions,
    /// Plan-generation options shared by every point.
    pub plan: PlanOptions,
    /// Optional path of a persistent estimate-cache file: loaded (if it
    /// exists) before the sweep runs and saved back afterwards, so repeated
    /// sweeps warm-start. `None` (the default) keeps the cache in memory
    /// only.
    pub cache_file: Option<String>,
    /// When `true`, a corrupt or version-mismatched cache file aborts the
    /// sweep. The default (`false`) downgrades it to a structured
    /// `cache.load_failed` warning and a cold start.
    pub strict_cache: bool,
    /// When set, records carry a mapping signature and the report gains a
    /// mapping-stability section comparing every other platform against the
    /// named baseline platform (see
    /// [`StabilityReport`](crate::StabilityReport)).
    pub stability_baseline: Option<String>,
    /// Deliberate per-point fault injection (robustness tests and CI gates).
    pub inject: FaultInjectionSpec,
}

/// One expanded grid point, ready to run.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in the deterministic work list (also the report order).
    pub index: usize,
    /// The application.
    pub app: App,
    /// The size parameter.
    pub n: u32,
    /// The target platform.
    pub platform: PlatformSpec,
    /// The stack to run.
    pub stack: StackConfig,
    /// Whether the Chapter-V enhancement is applied.
    pub enhanced: bool,
}

impl SweepSpec {
    /// Names accepted by [`SweepSpec::preset`], in display order.
    pub const PRESETS: [&'static str; 8] = [
        "quick",
        "scaling",
        "compare",
        "enhancement",
        "paper",
        "hier",
        "synthetic",
        "robustness",
    ];

    /// A sweep with the given name and axes, deterministic ILP budget and
    /// default plan options; the enhancement axis defaults to `[false]`.
    ///
    /// The GPU-model × GPU-count product expands into reference-tree
    /// platforms named after the model (model outer, count inner), so grids
    /// written against the old `(models, counts)` axes keep their record
    /// shape and work-list order.
    pub fn new(
        name: impl Into<String>,
        apps: Vec<AppSweep>,
        gpu_models: Vec<GpuModel>,
        gpu_counts: Vec<usize>,
        stacks: Vec<StackConfig>,
    ) -> Self {
        let mut platforms = Vec::with_capacity(gpu_models.len() * gpu_counts.len());
        for model in &gpu_models {
            for &count in &gpu_counts {
                platforms.push(PlatformSpec::reference(model.spec(), count).named(model.name()));
            }
        }
        Self::on_platforms(name, apps, platforms, stacks)
    }

    /// A sweep over an explicit platform axis (hierarchical and mixed-model
    /// platforms included), deterministic ILP budget and default plan
    /// options; the enhancement axis defaults to `[false]`.
    pub fn on_platforms(
        name: impl Into<String>,
        apps: Vec<AppSweep>,
        platforms: Vec<PlatformSpec>,
        stacks: Vec<StackConfig>,
    ) -> Self {
        SweepSpec {
            name: name.into(),
            apps,
            platforms,
            stacks,
            enhanced: vec![false],
            filter: PointFilter::default(),
            mapping_options: Self::deterministic_mapping_options(),
            plan: PlanOptions::default(),
            cache_file: None,
            strict_cache: false,
            stability_baseline: None,
            inject: FaultInjectionSpec::default(),
        }
    }

    /// Attaches a persistent estimate-cache file: [`run_sweep`] loads it (if
    /// present) before running and saves the merged cache back afterwards.
    ///
    /// [`run_sweep`]: crate::run_sweep
    pub fn with_cache_file(mut self, path: impl Into<String>) -> Self {
        self.cache_file = Some(path.into());
        self
    }

    /// The ILP budget used by sweeps: bounded by the node count alone, so a
    /// loaded machine (or more worker threads) cannot change the mapping the
    /// solver returns. This is what makes multi-threaded sweep reports
    /// byte-identical to single-threaded ones. The default node budget is
    /// smaller than the interactive default because sweeps solve hundreds of
    /// warm-started instances and the greedy warm start already matches the
    /// ILP on most grid points; the figure-fidelity presets raise it to the
    /// historical 300 via [`SweepSpec::with_figure_fidelity_ilp_budget`].
    pub fn deterministic_mapping_options() -> MappingOptions {
        MappingOptions {
            time_limit: Duration::from_secs(86_400),
            max_nodes: 80,
            comm_aware: true,
            relative_gap: 0.0,
        }
    }

    /// Raises the ILP node budget to the 300 nodes the figure harness has
    /// always used, so the sweeps backing the paper's figures keep their
    /// historical mapping quality (still wall-clock-unbounded, hence still
    /// deterministic). Costs roughly 3x the solve time of the default
    /// budget.
    pub fn with_figure_fidelity_ilp_budget(mut self) -> Self {
        self.mapping_options.max_nodes = 300;
        self
    }

    /// Looks up a named preset.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::UnknownPreset`] for names not in
    /// [`SweepSpec::PRESETS`].
    pub fn preset(name: &str) -> Result<Self, SweepError> {
        match name {
            "quick" => Ok(Self::quick()),
            "scaling" => Ok(Self::scaling(false)),
            "compare" => Ok(Self::compare(false)),
            "enhancement" => Ok(Self::enhancement()),
            "paper" => Ok(Self::scaling(true).with_name("paper")),
            "hier" => Ok(Self::hier()),
            "synthetic" => Ok(Self::synthetic()),
            "robustness" => Ok(Self::robustness()),
            other => Err(SweepError::UnknownPreset(other.to_string())),
        }
    }

    /// A small smoke-test grid: all eight applications at their two smallest
    /// quick N values, 1/2/4 GPUs, the paper's stack (48 points).
    pub fn quick() -> Self {
        let apps = App::all()
            .into_iter()
            .map(|app| {
                let mut ns = app.quick_n_values();
                ns.truncate(2);
                AppSweep::explicit(app, ns)
            })
            .collect();
        SweepSpec::new(
            "quick",
            apps,
            vec![GpuModel::M2090],
            vec![1, 2, 4],
            vec![StackConfig::ours()],
        )
    }

    /// The Figure 4.2 grid: every application, quick (or paper, with `full`)
    /// N values, 1–4 GPUs, the paper's stack.
    pub fn scaling(full: bool) -> Self {
        let apps = App::all()
            .into_iter()
            .map(if full {
                AppSweep::paper
            } else {
                AppSweep::quick
            })
            .collect();
        SweepSpec::new(
            "scaling",
            apps,
            vec![GpuModel::M2090],
            vec![1, 2, 3, 4],
            vec![StackConfig::ours()],
        )
        .with_figure_fidelity_ilp_budget()
    }

    /// The Figure 4.3 grid: the prior work's five applications, ours vs
    /// previous on 1–4 GPUs, plus the 1-GPU SPSG reference.
    pub fn compare(full: bool) -> Self {
        let apps = App::figure_4_3_subset()
            .into_iter()
            .map(if full {
                AppSweep::paper
            } else {
                AppSweep::quick
            })
            .collect();
        SweepSpec::new(
            "compare",
            apps,
            vec![GpuModel::M2090],
            vec![1, 2, 3, 4],
            vec![
                StackConfig::ours(),
                StackConfig::previous(),
                StackConfig::spsg(),
            ],
        )
        .with_figure_fidelity_ilp_budget()
    }

    /// The Table 5.1 grid: FFT and Bitonic at their largest sizes, SPSG on
    /// one GPU, with and without the Chapter-V enhancement.
    pub fn enhancement() -> Self {
        let mut spec = SweepSpec::new(
            "enhancement",
            vec![
                AppSweep::explicit(App::Fft, vec![512, 256, 128]),
                AppSweep::explicit(App::Bitonic, vec![64, 32, 16]),
            ],
            vec![GpuModel::M2090],
            vec![1],
            vec![StackConfig::spsg()],
        );
        spec.enhanced = vec![false, true];
        spec
    }

    /// The hierarchical-platform smoke grid: FM-Radio and DES at N=8 on the
    /// paper's reference box, an 8-GPU NVLink-island box, a 2×4 two-node
    /// cluster and a mixed M2090/C2070 box, all under the paper's stack.
    /// This is the grid CI's hierarchical-platform gate runs.
    pub fn hier() -> Self {
        SweepSpec::on_platforms(
            "hier",
            vec![
                AppSweep::explicit(App::FmRadio, vec![8]),
                AppSweep::explicit(App::Des, vec![8]),
            ],
            vec![
                PlatformSpec::paper().named("M2090"),
                PlatformSpec::nvlink8_m2090(),
                PlatformSpec::cluster2x4_m2090(),
                PlatformSpec::mixed_m2090_c2070(),
            ],
            vec![StackConfig::ours()],
        )
    }

    /// The synthetic scaling grid: the three seeded synthetic families
    /// ([`App::synthetic`]) at 1k filters, 2 and 4 GPUs, under the multilevel
    /// stack. Deliberately separate from the paper presets so their golden
    /// reports never change; larger sizes run through the perf bench's
    /// `synthetic_scaling` target or an explicit `--spec` file.
    pub fn synthetic() -> Self {
        SweepSpec::new(
            "synthetic",
            App::synthetic()
                .into_iter()
                .map(|app| AppSweep::explicit(app, vec![1_000]))
                .collect(),
            vec![GpuModel::M2090],
            vec![2, 4],
            vec![StackConfig::multilevel()],
        )
    }

    /// The robustness grid: FM-Radio and DES at N=8 on the paper's reference
    /// box plus ±5/±10/±20 % perturbations of one model axis at a time —
    /// link bandwidth, link latency (via [`PlatformSpec::with_link_scales`])
    /// and device throughput (via [`GpuSpec::with_throughput_factor`]).
    /// Each point records its mapping signature and the report carries a
    /// [`StabilityReport`](crate::StabilityReport) comparing every perturbed
    /// mapping against the unperturbed `M2090` baseline.
    pub fn robustness() -> Self {
        let base_gpu = GpuSpec::m2090();
        let mut platforms = vec![PlatformSpec::paper().named("M2090")];
        for &pct in &[5i32, 10, 20] {
            for &sign in &[1i32, -1] {
                let scale = 1.0 + f64::from(sign * pct) / 100.0;
                platforms.push(
                    PlatformSpec::reference(base_gpu.clone(), 4)
                        .named(format!("M2090:bw{:+}%", sign * pct))
                        .with_link_scales(scale, 1.0),
                );
                platforms.push(
                    PlatformSpec::reference(base_gpu.clone(), 4)
                        .named(format!("M2090:lat{:+}%", sign * pct))
                        .with_link_scales(1.0, scale),
                );
                let tp = base_gpu.with_throughput_factor(scale, &format!("tp{:+}%", sign * pct));
                platforms.push(
                    PlatformSpec::reference(tp, 4).named(format!("M2090:tp{:+}%", sign * pct)),
                );
            }
        }
        let mut spec = SweepSpec::on_platforms(
            "robustness",
            vec![
                AppSweep::explicit(App::FmRadio, vec![8]),
                AppSweep::explicit(App::Des, vec![8]),
            ],
            platforms,
            vec![StackConfig::ours()],
        );
        spec.stability_baseline = Some("M2090".to_string());
        spec
    }

    /// Replaces the sweep's name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Makes a corrupt or version-mismatched estimate cache a hard error
    /// instead of a warn-and-cold-start.
    #[must_use]
    pub fn with_strict_cache(mut self, strict: bool) -> Self {
        self.strict_cache = strict;
        self
    }

    /// Injects a deterministic panic into the named point (by expanded point
    /// index) — a test/CI hook for exercising the sweep's failure isolation.
    #[must_use]
    pub fn with_injected_panic(mut self, point: usize) -> Self {
        self.inject.panic_points.push(point);
        self
    }

    /// Injects a transient (retryable) failure into the named point: the
    /// first attempt fails with a transient-classified error, the retry
    /// succeeds.
    #[must_use]
    pub fn with_injected_transient(mut self, point: usize) -> Self {
        self.inject.transient_points.push(point);
        self
    }

    /// Replaces the per-axis filter.
    pub fn with_filter(mut self, filter: PointFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Validates the axes.
    ///
    /// # Errors
    ///
    /// Returns an error for empty axes and degenerate axis values (zero `N`,
    /// platforms whose topology cannot be built, duplicate platform
    /// coordinates, one platform name used with different estimation
    /// devices, duplicate stack labels).
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.apps.is_empty() {
            return Err(SweepError::EmptyAxis("apps"));
        }
        if self.platforms.is_empty() {
            return Err(SweepError::EmptyAxis("platforms"));
        }
        if self.stacks.is_empty() {
            return Err(SweepError::EmptyAxis("stacks"));
        }
        if self.enhanced.is_empty() {
            return Err(SweepError::EmptyAxis("enhanced"));
        }
        for sweep in &self.apps {
            if sweep.n_values.is_empty() {
                return Err(SweepError::InvalidAxisValue(format!(
                    "application {} has no N values",
                    sweep.app
                )));
            }
            if let Some(&n) = sweep.n_values.iter().find(|&&n| n == 0) {
                return Err(SweepError::InvalidAxisValue(format!(
                    "application {} has degenerate N value {n}",
                    sweep.app
                )));
            }
        }
        let mut seen: Vec<&PlatformSpec> = Vec::new();
        for platform in &self.platforms {
            if let Err(e) = platform.build() {
                return Err(SweepError::InvalidAxisValue(format!(
                    "platform '{}': {e}",
                    platform.name
                )));
            }
            for earlier in &seen {
                if earlier.name == platform.name {
                    if earlier.gpu_count() == platform.gpu_count() {
                        return Err(SweepError::InvalidAxisValue(format!(
                            "duplicate platform '{}' with {} GPUs",
                            platform.name,
                            platform.gpu_count()
                        )));
                    }
                    // Compile groups key on the estimation device; one name
                    // must not smuggle in two different ones.
                    if earlier.primary_gpu() != platform.primary_gpu() {
                        return Err(SweepError::InvalidAxisValue(format!(
                            "platform name '{}' is used with different estimation devices \
                             ('{}' and '{}')",
                            platform.name,
                            earlier.primary_gpu().name,
                            platform.primary_gpu().name
                        )));
                    }
                }
            }
            seen.push(platform);
        }
        let mut labels: Vec<&str> = Vec::new();
        for stack in &self.stacks {
            if let Some(counts) = &stack.gpu_counts {
                if counts.is_empty() {
                    return Err(SweepError::InvalidAxisValue(format!(
                        "stack '{}' is pinned to an empty GPU-count list",
                        stack.label
                    )));
                }
            }
            if labels.contains(&stack.label.as_str()) {
                return Err(SweepError::InvalidAxisValue(format!(
                    "duplicate stack label '{}'",
                    stack.label
                )));
            }
            labels.push(&stack.label);
        }
        Ok(())
    }

    /// Expands the grid into its deterministic work list. The order is fixed
    /// by the axis order (apps, then N, then platform, then stack, then
    /// enhancement) and is independent of how the points are later scheduled
    /// across worker threads.
    ///
    /// # Errors
    ///
    /// Returns an error if [`SweepSpec::validate`] fails.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, SweepError> {
        self.validate()?;
        let mut points = Vec::new();
        for app_sweep in &self.apps {
            for &n in &app_sweep.n_values {
                for platform in &self.platforms {
                    for stack in &self.stacks {
                        if let Some(counts) = &stack.gpu_counts {
                            if !counts.contains(&platform.gpu_count()) {
                                continue;
                            }
                        }
                        for &enhanced in &self.enhanced {
                            let point = SweepPoint {
                                index: points.len(),
                                app: app_sweep.app,
                                n,
                                platform: platform.clone(),
                                stack: stack.clone(),
                                enhanced,
                            };
                            if self.filter.accepts(&point) {
                                points.push(point);
                            }
                        }
                    }
                }
            }
        }
        if let Some(max) = self.filter.max_points {
            points.truncate(max);
        }
        for (index, point) in points.iter_mut().enumerate() {
            point.index = index;
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_expands_to_a_stable_grid() {
        let points = SweepSpec::quick().expand().unwrap();
        assert_eq!(points.len(), 8 * 2 * 3);
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        // Expansion is deterministic.
        let again = SweepSpec::quick().expand().unwrap();
        assert_eq!(points.len(), again.len());
        assert!(points
            .iter()
            .zip(&again)
            .all(|(a, b)| (a.app, a.n, a.platform.gpu_count())
                == (b.app, b.n, b.platform.gpu_count())));
        // The reference expansion names every platform after the GPU model.
        assert!(points.iter().all(|p| p.platform.name == "M2090"));
    }

    #[test]
    fn degenerate_axis_values_are_rejected() {
        let apps = || vec![AppSweep::explicit(App::Des, vec![4])];
        let spec = SweepSpec::new(
            "t",
            apps(),
            vec![GpuModel::M2090],
            vec![1, 0],
            vec![StackConfig::ours()],
        );
        assert!(matches!(
            spec.expand(),
            Err(SweepError::InvalidAxisValue(_))
        ));
        let spec = SweepSpec::new(
            "t",
            apps(),
            vec![GpuModel::M2090],
            vec![5],
            vec![StackConfig::ours()],
        );
        assert!(spec.expand().is_err());
        let mut spec = SweepSpec::quick();
        spec.apps[0].n_values = vec![0];
        assert!(spec.expand().is_err());
        let mut spec = SweepSpec::quick();
        spec.stacks.clear();
        assert!(matches!(
            spec.expand(),
            Err(SweepError::EmptyAxis("stacks"))
        ));
        let mut spec = SweepSpec::quick();
        spec.stacks = vec![StackConfig::ours(), StackConfig::ours()];
        assert!(spec.expand().is_err());
        // Platform coordinates must be unambiguous: no duplicate
        // (name, count), no reused name with another estimation device.
        let mut spec = SweepSpec::quick();
        spec.platforms.push(spec.platforms[0].clone());
        assert!(spec.expand().is_err());
        let mut spec = SweepSpec::quick();
        spec.platforms
            .push(PlatformSpec::reference(GpuSpec::c2070(), 2).named("M2090"));
        assert!(spec.expand().is_err());
    }

    #[test]
    fn stack_gpu_count_pins_and_filters_narrow_the_grid() {
        let spec = SweepSpec::compare(false);
        let points = spec.expand().unwrap();
        // SPSG only runs at 1 GPU; ours/previous run at 1-4.
        assert!(points
            .iter()
            .filter(|p| p.stack.label == "spsg")
            .all(|p| p.platform.gpu_count() == 1));
        assert!(points
            .iter()
            .any(|p| p.stack.label == "ours" && p.platform.gpu_count() == 4));

        let filtered = spec
            .clone()
            .with_filter(PointFilter {
                apps: Some(vec![App::Des]),
                gpu_counts: Some(vec![1, 2]),
                stack_labels: Some(vec!["ours".to_string()]),
                max_points: Some(3),
                ..PointFilter::default()
            })
            .expand()
            .unwrap();
        assert_eq!(filtered.len(), 3);
        assert!(filtered
            .iter()
            .all(|p| p.app == App::Des && p.platform.gpu_count() <= 2 && p.stack.label == "ours"));
        assert!(filtered.iter().enumerate().all(|(i, p)| p.index == i));
    }

    #[test]
    fn every_preset_name_resolves() {
        for name in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(name).unwrap();
            assert!(!spec.expand().unwrap().is_empty(), "{name}");
        }
        assert!(matches!(
            SweepSpec::preset("nope"),
            Err(SweepError::UnknownPreset(_))
        ));
    }
}
