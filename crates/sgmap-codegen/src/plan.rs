//! Pipelined multi-GPU execution plans (Figure 3.5).

use sgmap_gpusim::{
    simulate_kernel, Endpoint, ExecutionPlan, KernelSpec, PlannedKernel, PlannedTransfer, Platform,
    TransferMode,
};
use sgmap_mapping::Mapping;
use sgmap_partition::{Partitioning, Pdg};
use sgmap_pee::Estimator;

use crate::kernel::generate_kernel;

/// Options controlling plan generation.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Number of input fragments pipelined through the graph (`N` in the
    /// paper's Figure 3.5).
    pub n_fragments: u32,
    /// Steady-state iterations batched into one fragment. Kernel launch
    /// overheads and transfer latencies amortise over this batch.
    pub iterations_per_fragment: u64,
    /// How inter-GPU transfers are routed.
    pub transfer_mode: TransferMode,
    /// When `true`, kernel times in the plan come from the cycle-approximate
    /// kernel simulation ("measured"); when `false`, from the PEE's analytic
    /// estimate. The paper's evaluation uses real measurements, so `true` is
    /// the default.
    pub use_measured_kernel_times: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            n_fragments: 8,
            iterations_per_fragment: 2048,
            transfer_mode: TransferMode::PeerToPeer,
            use_measured_kernel_times: true,
        }
    }
}

/// Builds the pipelined execution plan for a mapped partitioning and returns
/// it together with the generated kernels (in the same order as the plan's
/// kernel list).
///
/// # Panics
///
/// Panics if the mapping's assignment length does not match the partitioning.
pub fn build_execution_plan(
    est: &Estimator<'_>,
    partitioning: &Partitioning,
    pdg: &Pdg,
    mapping: &Mapping,
    platform: &Platform,
    options: &PlanOptions,
) -> (ExecutionPlan, Vec<KernelSpec>) {
    build_execution_plan_traced(est, partitioning, pdg, mapping, platform, options, None)
}

/// [`build_execution_plan`] with an optional trace collector: plan
/// construction runs under a `codegen` span and the emitted kernel /
/// transfer counts are recorded as `codegen.kernels` / `codegen.transfers`
/// counters. The collector is write-only, so the plan is identical with and
/// without it.
#[allow(clippy::too_many_arguments)]
pub fn build_execution_plan_traced(
    est: &Estimator<'_>,
    partitioning: &Partitioning,
    pdg: &Pdg,
    mapping: &Mapping,
    platform: &Platform,
    options: &PlanOptions,
    trace: sgmap_trace::TraceRef<'_>,
) -> (ExecutionPlan, Vec<KernelSpec>) {
    let mut span = sgmap_trace::span(trace, "codegen");
    let (plan, kernels) =
        build_execution_plan_inner(est, partitioning, pdg, mapping, platform, options);
    span.arg("kernels", plan.kernels.len());
    span.arg("transfers", plan.transfers.len());
    sgmap_trace::add(trace, "codegen.kernels", plan.kernels.len() as u64);
    sgmap_trace::add(trace, "codegen.transfers", plan.transfers.len() as u64);
    (plan, kernels)
}

fn build_execution_plan_inner(
    est: &Estimator<'_>,
    partitioning: &Partitioning,
    pdg: &Pdg,
    mapping: &Mapping,
    platform: &Platform,
    options: &PlanOptions,
) -> (ExecutionPlan, Vec<KernelSpec>) {
    assert_eq!(
        mapping.assignment.len(),
        partitioning.len(),
        "mapping does not match partitioning"
    );
    let order = pdg.topological_order();
    // Position of each partition in the plan's kernel list.
    let mut position = vec![0usize; partitioning.len()];
    for (pos, &p) in order.iter().enumerate() {
        position[p] = pos;
    }

    let iters = options.iterations_per_fragment as f64;
    let mut kernels = Vec::with_capacity(order.len());
    let mut specs = Vec::with_capacity(order.len());
    for &p in &order {
        let partition = &partitioning.partitions()[p];
        let name = format!("partition_{p}");
        let spec = generate_kernel(est, partition, &name);
        let per_iteration_us = if options.use_measured_kernel_times {
            // Simulate the kernel on the device that will actually run it, so
            // mixed-model platforms get per-device kernel times.
            let device = platform.device(mapping.assignment[p]);
            let measurement = simulate_kernel(&spec, device, p as u64 + 1);
            measurement.time_us / f64::from(spec.params.w.max(1))
        } else {
            partition.estimate.normalized_us
        };
        kernels.push(PlannedKernel {
            name,
            gpu: mapping.assignment[p],
            time_per_fragment_us: per_iteration_us * iters,
        });
        specs.push(spec);
    }

    let mut transfers = Vec::new();
    // Primary input from the host into every partition that contains a source.
    for (p, &bytes) in pdg.primary_input_bytes.iter().enumerate() {
        if bytes > 0 {
            transfers.push(PlannedTransfer {
                from: Endpoint::Host,
                to: Endpoint::Gpu(mapping.assignment[p]),
                bytes_per_fragment: bytes * options.iterations_per_fragment,
                after_kernel: None,
                before_kernel: Some(position[p]),
            });
        }
    }
    // Inter-partition traffic. Edges between partitions on the same GPU stay
    // in device memory (the executor charges no link time when source and
    // destination coincide) but are still recorded so the dependency is
    // enforced.
    for e in &pdg.edges {
        let (src, dst) = (mapping.assignment[e.from], mapping.assignment[e.to]);
        transfers.push(PlannedTransfer {
            from: Endpoint::Gpu(src),
            to: Endpoint::Gpu(dst),
            bytes_per_fragment: e.bytes_per_iteration * options.iterations_per_fragment,
            after_kernel: Some(position[e.from]),
            before_kernel: Some(position[e.to]),
        });
    }
    // Primary output back to the host.
    for (p, &bytes) in pdg.primary_output_bytes.iter().enumerate() {
        if bytes > 0 {
            transfers.push(PlannedTransfer {
                from: Endpoint::Gpu(mapping.assignment[p]),
                to: Endpoint::Host,
                bytes_per_fragment: bytes * options.iterations_per_fragment,
                after_kernel: Some(position[p]),
                before_kernel: None,
            });
        }
    }

    (
        ExecutionPlan {
            kernels,
            transfers,
            n_fragments: options.n_fragments,
            transfer_mode: options.transfer_mode,
        },
        specs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::{simulate_plan, GpuSpec};
    use sgmap_mapping::{map_greedy, map_round_robin};
    use sgmap_partition::{build_pdg, PartitionRequest};

    fn setup(app: App, n: u32, gpus: usize) -> (sgmap_graph::StreamGraph, Platform) {
        (
            app.build(n).unwrap(),
            Platform::quad_m2090().with_gpu_count(gpus),
        )
    }

    #[test]
    fn plan_respects_topological_dependencies_and_runs() {
        let (graph, platform) = setup(App::Des, 8, 2);
        let est = Estimator::new(&graph, platform.primary_gpu().clone()).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let partitioning = PartitionRequest::new(&est).run().unwrap();
        let pdg = build_pdg(&graph, &reps, &partitioning);
        let mapping = map_greedy(&pdg, &platform);
        let (plan, specs) = build_execution_plan(
            &est,
            &partitioning,
            &pdg,
            &mapping,
            &platform,
            &PlanOptions::default(),
        );
        assert_eq!(plan.kernels.len(), partitioning.len());
        assert_eq!(specs.len(), partitioning.len());
        // Every transfer's producer precedes its consumer in the kernel list.
        for t in &plan.transfers {
            if let (Some(a), Some(b)) = (t.after_kernel, t.before_kernel) {
                assert!(a < b, "transfer violates plan order: {a} -> {b}");
            }
        }
        let stats = simulate_plan(&plan, &platform);
        assert!(stats.makespan_us > 0.0);
        assert_eq!(stats.n_fragments, plan.n_fragments);
    }

    #[test]
    fn balanced_mappings_beat_round_robin_on_the_simulator() {
        let (graph, platform) = setup(App::Dct, 10, 4);
        let est = Estimator::new(&graph, platform.primary_gpu().clone()).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let partitioning = PartitionRequest::new(&est).run().unwrap();
        let pdg = build_pdg(&graph, &reps, &partitioning);
        let good = map_greedy(&pdg, &platform);
        let naive = map_round_robin(&pdg, &platform);
        let opts = PlanOptions::default();
        let (gp, _) = build_execution_plan(&est, &partitioning, &pdg, &good, &platform, &opts);
        let (np, _) = build_execution_plan(&est, &partitioning, &pdg, &naive, &platform, &opts);
        let g_stats = simulate_plan(&gp, &platform);
        let n_stats = simulate_plan(&np, &platform);
        assert!(
            g_stats.makespan_us <= n_stats.makespan_us * 1.05,
            "greedy {} vs round-robin {}",
            g_stats.makespan_us,
            n_stats.makespan_us
        );
    }

    #[test]
    fn estimated_and_measured_plans_are_close() {
        let (graph, platform) = setup(App::FmRadio, 8, 1);
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let reps = graph.repetition_vector().unwrap();
        let partitioning = PartitionRequest::new(&est).run().unwrap();
        let pdg = build_pdg(&graph, &reps, &partitioning);
        let mapping = map_greedy(&pdg, &platform);
        let measured_opts = PlanOptions::default();
        let estimated_opts = PlanOptions {
            use_measured_kernel_times: false,
            ..PlanOptions::default()
        };
        let (mp, _) = build_execution_plan(
            &est,
            &partitioning,
            &pdg,
            &mapping,
            &platform,
            &measured_opts,
        );
        let (ep, _) = build_execution_plan(
            &est,
            &partitioning,
            &pdg,
            &mapping,
            &platform,
            &estimated_opts,
        );
        let m = simulate_plan(&mp, &platform).makespan_us;
        let e = simulate_plan(&ep, &platform).makespan_us;
        let ratio = m / e;
        assert!(ratio > 0.5 && ratio < 2.0, "measured/estimated = {ratio}");
    }
}
