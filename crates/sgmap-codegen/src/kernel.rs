//! Partition → kernel lowering.

use sgmap_gpusim::{KernelFilter, KernelSpec};
use sgmap_partition::Partition;
use sgmap_pee::Estimator;

/// Lowers a partition into the kernel description the simulator executes.
///
/// The kernel uses the launch parameters stored in the partition's estimate,
/// which are the parameters the PEE's search selected — keeping the generated
/// code and the estimation consistent ("static discrepancy" minimisation).
pub fn generate_kernel(est: &Estimator<'_>, partition: &Partition, name: &str) -> KernelSpec {
    let graph = est.graph();
    let reps = est.repetition_vector();
    let profile = est.profile();
    let mut filters = Vec::with_capacity(partition.nodes.len());
    for id in partition.nodes.iter() {
        if est.enhanced() && graph.filter(id).is_reorder_only() {
            // Chapter V: splitters and joiners are eliminated; consumers
            // re-index into the producer's buffer instead.
            continue;
        }
        filters.push(KernelFilter {
            firing_time_us: profile.time_per_firing_us(id),
            firings: reps[id.index()],
        });
    }
    let chars = est.characteristics(&partition.nodes);
    KernelSpec {
        name: name.to_string(),
        filters,
        io_bytes_per_exec: chars.io_bytes_per_exec,
        sm_bytes_per_exec: chars.sm_bytes_per_exec,
        params: partition.estimate.params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgmap_apps::App;
    use sgmap_gpusim::GpuSpec;
    use sgmap_partition::single_partition;

    #[test]
    fn kernel_mirrors_the_partition_estimate() {
        let graph = App::Des.build(4).unwrap();
        let est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let p = single_partition(&est);
        let k = generate_kernel(&est, &p, "des_all");
        assert_eq!(k.params, p.estimate.params);
        assert_eq!(k.filters.len(), graph.filter_count());
        assert_eq!(k.io_bytes_per_exec, p.estimate.io_bytes_per_exec);
        assert!(k.serial_compute_time_us() > 0.0);
    }

    #[test]
    fn enhancement_drops_reorder_filters_from_the_kernel() {
        let graph = App::Bitonic.build(8).unwrap();
        let plain_est = Estimator::new(&graph, GpuSpec::m2090()).unwrap();
        let plain = generate_kernel(&plain_est, &single_partition(&plain_est), "plain");
        let enh_est = Estimator::new(&graph, GpuSpec::m2090())
            .unwrap()
            .with_enhancement(true);
        let enhanced = generate_kernel(&enh_est, &single_partition(&enh_est), "enhanced");
        assert!(enhanced.filters.len() < plain.filters.len());
        assert!(enhanced.serial_compute_time_us() < plain.serial_compute_time_us());
    }
}
