//! GPU code generation for the simulated platform.
//!
//! The real system emits CUDA; this reproduction emits the two artefacts the
//! simulator consumes, plus human-readable pseudo-CUDA for inspection:
//!
//! * [`generate_kernel`] turns a partition into a
//!   [`KernelSpec`](sgmap_gpusim::KernelSpec) using the parameters the PEE
//!   selected (the "minimal static discrepancy" requirement of Section 3.3:
//!   the generated kernel uses exactly the `W`, `S`, `F` the estimator
//!   assumed),
//! * [`build_execution_plan`] lays the mapped partitions out as the
//!   N-fragment pipelined schedule of Figure 3.5, with peer-to-peer or
//!   host-staged transfers for every partition boundary that crosses GPUs,
//! * [`emit_pseudo_cuda`] renders a kernel as pseudo-CUDA source text.
//!
//! The splitter/joiner elimination of Chapter V is applied through the
//! estimator's `enhanced` flag: when it is on, splitters and joiners
//! contribute neither compute threads nor shared-memory buffers to the
//! generated kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod kernel;
mod plan;

pub use emit::emit_pseudo_cuda;
pub use kernel::generate_kernel;
pub use plan::{build_execution_plan, build_execution_plan_traced, PlanOptions};
